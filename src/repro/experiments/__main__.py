"""Legacy command-line entry point: ``python -m repro.experiments [id ...]``.

Superseded by the unified ``python -m repro`` CLI (subcommands ``run``,
``experiments``, ``list``, ``report``); kept for compatibility.  Without
arguments every registered experiment runs (the full reproduction of the
paper's tables and figures); with arguments only the named experiments run.
Use ``--list`` to see the available experiment ids.
"""

from __future__ import annotations

import argparse
import sys

from .registry import build_registry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Run the paper-reproduction experiments")
    parser.add_argument("experiments", nargs="*", help="experiment ids to run (default: all)")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    args = parser.parse_args(argv)

    registry = build_registry()
    if args.list:
        for experiment_id, experiment in registry.items():
            print(f"{experiment_id:<22} {experiment.paper_artifact:<22} {experiment.description}")
        return 0

    selected = args.experiments or list(registry)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    for experiment_id in selected:
        experiment = registry[experiment_id]
        print(f"=== {experiment.experiment_id} ({experiment.paper_artifact}) ===")
        print(experiment.run())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI glue
    sys.exit(main())
