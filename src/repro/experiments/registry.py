"""Experiment registry: one entry per table/figure of the paper.

Each experiment knows which paper artifact it regenerates, how to run it and
how to render its result as text.  The heavyweight case-study pipeline (which
backs Table 2, Table 3, the Amdahl bounds and the parallel validation) is
owned by a process-wide :class:`~repro.engine.AnalysisPipeline`, which caches
results per requested workload set, shares parsed ASTs across stages and
fans out across workloads — so the individual experiments and benchmarks all
reuse one batch run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..analysis import CaseStudyRunner
from ..ceres.report import render_summary_table
from ..engine import AnalysisPipeline
from ..engine.pipeline import PipelineResult as CaseStudyResults
from ..parallel import model_application_speedup
from ..survey import (
    all_figures,
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    generate_population,
    render_figure,
)
from ..workloads import all_workloads, table1

#: Process-wide pipeline backing ``run_case_study`` (replaces the former
#: ``_CASE_STUDY_CACHE`` module-global dict).
_DEFAULT_PIPELINE: Optional[AnalysisPipeline] = None


def get_default_pipeline() -> AnalysisPipeline:
    """The shared pipeline used by the registered experiments."""
    global _DEFAULT_PIPELINE
    if _DEFAULT_PIPELINE is None:
        _DEFAULT_PIPELINE = AnalysisPipeline()
    return _DEFAULT_PIPELINE


def run_case_study(
    workload_names: Optional[List[str]] = None,
    force: bool = False,
    runner: Optional[CaseStudyRunner] = None,
) -> CaseStudyResults:
    """Run (or reuse) the case-study pipeline over the given workloads."""
    return get_default_pipeline().run(workload_names, force=force, runner=runner)


@dataclass
class Experiment:
    """One reproducible experiment, mapped to a paper artifact."""

    experiment_id: str
    paper_artifact: str
    description: str
    runner: Callable[[], str]

    def run(self) -> str:
        """Run the experiment and return the rendered result."""
        return self.runner()


def _figure_runner(builder) -> Callable[[], str]:
    def run() -> str:
        population = generate_population()
        return render_figure(builder(population))

    return run


def _table1_runner() -> str:
    return render_summary_table(table1(), ["Name/URL", "Category/Description"], title="Table 1. Case study - web applications")


def _table2_runner() -> str:
    return run_case_study().tables.render_table2()


def _table3_runner() -> str:
    return run_case_study().tables.render_table3()


def _amdahl_runner() -> str:
    results = run_case_study()
    tables = results.tables
    summary = [
        tables.render_speedups(),
        "",
        f"applications with Amdahl bound > 3x : {tables.applications_exceeding_3x()} of {len(tables.table2)}",
        f"applications hard/very hard         : {tables.applications_hard_to_speed_up()} of {len(tables.table2)}",
        f"nests with intrinsic parallelism    : {tables.nests_with_intrinsic_parallelism()} of {len(tables.table3)}",
        f"nests accessing the DOM/Canvas      : {tables.nests_accessing_dom()} of {len(tables.table3)}",
    ]
    return "\n".join(summary)


def _parallel_validation_runner() -> str:
    results = run_case_study()
    rows = [model_application_speedup(analysis).as_row() for analysis in results.analyses]
    return render_summary_table(
        rows,
        ["application", "busy (s)", "modelled (s)", "speedup", "Amdahl bound"],
        title="Modelled parallel execution vs Amdahl bound",
    )


def _nbody_runner() -> str:
    from ..ceres import JSCeres
    from ..workloads.nbody import STEP_FOR_LINE, make_nbody_workload

    tool = JSCeres()
    run = tool.run_dependence(make_nbody_workload(), focus_line=STEP_FOR_LINE)
    return run.report_text


def _overhead_runner() -> str:
    from ..ceres import JSCeres
    from ..workloads import get_workload

    tool = JSCeres()
    rows = []
    for name in ("fluidSim", "Normal Mapping"):
        workload_factory = lambda: get_workload(name)  # noqa: E731 - tiny local helper
        baseline = tool.run_uninstrumented(workload_factory())
        lightweight = tool.run_lightweight(workload_factory(), with_gecko=False)
        loops = tool.run_loop_profile(workload_factory())
        rows.append(
            {
                "workload": name,
                "uninstrumented (s)": round(baseline, 2),
                "mode 1 (s)": round(lightweight.total_seconds, 2),
                "mode 2 loop time (s)": round(loops.total_loop_time_ms / 1000.0, 2),
            }
        )
    return render_summary_table(
        rows,
        ["workload", "uninstrumented (s)", "mode 1 (s)", "mode 2 loop time (s)"],
        title="Instrumentation overhead on the virtual clock (Sections 3.1-3.2)",
    )


def build_registry() -> Dict[str, Experiment]:
    """All experiments, keyed by experiment id (see DESIGN.md)."""
    return {
        "fig1-categories": Experiment(
            "fig1-categories", "Figure 1", "Future web application categories (thematic coding)",
            _figure_runner(figure1_data)),
        "fig2-bottlenecks": Experiment(
            "fig2-bottlenecks", "Figure 2", "Perceived performance bottlenecks",
            _figure_runner(figure2_data)),
        "fig3-style": Experiment(
            "fig3-style", "Figure 3", "Functional vs imperative style preference",
            _figure_runner(figure3_data)),
        "fig4-polymorphism": Experiment(
            "fig4-polymorphism", "Figure 4", "Monomorphic vs polymorphic variable usage",
            _figure_runner(figure4_data)),
        "fig6-nbody": Experiment(
            "fig6-nbody", "Figure 6 / Section 3.3", "N-body dependence-analysis walkthrough",
            _nbody_runner),
        "table1-workloads": Experiment(
            "table1-workloads", "Table 1", "The twelve case-study applications",
            _table1_runner),
        "table2-runtime": Experiment(
            "table2-runtime", "Table 2", "Total / active / in-loop running time",
            _table2_runner),
        "table3-loopnests": Experiment(
            "table3-loopnests", "Table 3", "Detailed inspection of hot loop nests",
            _table3_runner),
        "amdahl-bounds": Experiment(
            "amdahl-bounds", "Section 4.2 / 5", "Amdahl speedup upper bounds and headline counts",
            _amdahl_runner),
        "parallel-validation": Experiment(
            "parallel-validation", "Section 1 / 4", "Modelled parallel execution of easy nests",
            _parallel_validation_runner),
        "ceres-overhead": Experiment(
            "ceres-overhead", "Sections 3.1-3.2", "Instrumentation overhead of modes 1 and 2",
            _overhead_runner),
    }


def run_experiment(experiment_id: str) -> str:
    """Run one experiment by id and return its rendered output."""
    registry = build_registry()
    if experiment_id not in registry:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {sorted(registry)}")
    return registry[experiment_id].run()


def run_all_experiments() -> Dict[str, str]:
    """Run every registered experiment (the full reproduction)."""
    return {experiment_id: experiment.run() for experiment_id, experiment in build_registry().items()}
