"""Experiment registry: one entry per table/figure of the paper.

Each experiment knows which paper artifact it regenerates, how to run it and
how to render its result as text.  Experiments are bound to an
:class:`~repro.api.session.AnalysisSession`, which owns the heavyweight
case-study pipeline (caching, AST sharing, fan-out across workloads):
:func:`build_registry` takes the session explicitly; when none is given, a
process-wide default session is created lazily behind a lock.

The seed-era ``run_case_study`` shim was removed after its two-PR
compatibility window (use :meth:`repro.api.AnalysisSession.case_study`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict

from ..ceres.report import render_summary_table
from ..engine.pipeline import PipelineResult as CaseStudyResults
from ..parallel import model_application_speedup
from ..survey import (
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    generate_population,
    render_figure,
)

#: Process-wide fallback session for callers that do not manage their own
#: (``build_registry()`` with no argument).  Creation is guarded by a lock:
#: the seed's lazy module global had a check-then-set race under threads.
_DEFAULT_SESSION = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def default_session():
    """The shared fallback :class:`~repro.api.session.AnalysisSession`."""
    global _DEFAULT_SESSION
    session = _DEFAULT_SESSION
    if session is None:
        with _DEFAULT_SESSION_LOCK:
            session = _DEFAULT_SESSION
            if session is None:
                from ..api.session import AnalysisSession

                session = _DEFAULT_SESSION = AnalysisSession()
    return session


def get_default_pipeline():
    """The shared pipeline behind the fallback session (thread-safe)."""
    return default_session().pipeline


@dataclass
class Experiment:
    """One reproducible experiment, mapped to a paper artifact."""

    experiment_id: str
    paper_artifact: str
    description: str
    runner: Callable[[], str]

    def run(self) -> str:
        """Run the experiment and return the rendered result."""
        return self.runner()


def _figure_runner(builder) -> Callable[[], str]:
    def run() -> str:
        population = generate_population()
        return render_figure(builder(population))

    return run


def _table1_runner() -> str:
    from ..workloads import table1

    return render_summary_table(table1(), ["Name/URL", "Category/Description"], title="Table 1. Case study - web applications")


def _table2_runner(session) -> str:
    return session.case_study().tables.render_table2()


def _table3_runner(session) -> str:
    return session.case_study().tables.render_table3()


def _amdahl_runner(session) -> str:
    results = session.case_study()
    tables = results.tables
    summary = [
        tables.render_speedups(),
        "",
        f"applications with Amdahl bound > 3x : {tables.applications_exceeding_3x()} of {len(tables.table2)}",
        f"applications hard/very hard         : {tables.applications_hard_to_speed_up()} of {len(tables.table2)}",
        f"nests with intrinsic parallelism    : {tables.nests_with_intrinsic_parallelism()} of {len(tables.table3)}",
        f"nests accessing the DOM/Canvas      : {tables.nests_accessing_dom()} of {len(tables.table3)}",
    ]
    return "\n".join(summary)


def _parallel_validation_runner(session) -> str:
    results = session.case_study()
    rows = [model_application_speedup(analysis).as_row() for analysis in results.analyses]
    return render_summary_table(
        rows,
        ["application", "busy (s)", "modelled (s)", "speedup", "Amdahl bound"],
        title="Modelled parallel execution vs Amdahl bound",
    )


def _nbody_runner(session) -> str:
    from ..api.spec import RunSpec
    from ..workloads.nbody import STEP_FOR_LINE, make_nbody_workload

    run = session.run(make_nbody_workload(), RunSpec.dependence(focus_line=STEP_FOR_LINE))
    return run.report_text


def _overhead_runner(session) -> str:
    from ..api.spec import RunSpec
    from ..workloads import get_workload

    rows = []
    for name in ("fluidSim", "Normal Mapping"):
        baseline = session.run(get_workload(name), RunSpec.uninstrumented())
        lightweight = session.run(get_workload(name), RunSpec.lightweight(with_gecko=False))
        loops = session.run(get_workload(name), RunSpec.loop_profile())
        rows.append(
            {
                "workload": name,
                "uninstrumented (s)": round(baseline.clock_seconds, 2),
                "mode 1 (s)": round(lightweight.total_seconds, 2),
                "mode 2 loop time (s)": round(
                    loops.payloads["loop_profile"]["total_loop_time_ms"] / 1000.0, 2
                ),
            }
        )
    return render_summary_table(
        rows,
        ["workload", "uninstrumented (s)", "mode 1 (s)", "mode 2 loop time (s)"],
        title="Instrumentation overhead on the virtual clock (Sections 3.1-3.2)",
    )


def build_registry(session=None) -> Dict[str, Experiment]:
    """All experiments, keyed by experiment id (see DESIGN.md).

    ``session`` is the :class:`~repro.api.session.AnalysisSession` the
    case-study experiments run through; the shared fallback session is used
    when omitted, so seed-era ``build_registry()`` callers keep working.
    """
    if session is None:
        session = default_session()
    return {
        "fig1-categories": Experiment(
            "fig1-categories", "Figure 1", "Future web application categories (thematic coding)",
            _figure_runner(figure1_data)),
        "fig2-bottlenecks": Experiment(
            "fig2-bottlenecks", "Figure 2", "Perceived performance bottlenecks",
            _figure_runner(figure2_data)),
        "fig3-style": Experiment(
            "fig3-style", "Figure 3", "Functional vs imperative style preference",
            _figure_runner(figure3_data)),
        "fig4-polymorphism": Experiment(
            "fig4-polymorphism", "Figure 4", "Monomorphic vs polymorphic variable usage",
            _figure_runner(figure4_data)),
        "fig6-nbody": Experiment(
            "fig6-nbody", "Figure 6 / Section 3.3", "N-body dependence-analysis walkthrough",
            lambda: _nbody_runner(session)),
        "table1-workloads": Experiment(
            "table1-workloads", "Table 1", "The twelve case-study applications",
            _table1_runner),
        "table2-runtime": Experiment(
            "table2-runtime", "Table 2", "Total / active / in-loop running time",
            lambda: _table2_runner(session)),
        "table3-loopnests": Experiment(
            "table3-loopnests", "Table 3", "Detailed inspection of hot loop nests",
            lambda: _table3_runner(session)),
        "amdahl-bounds": Experiment(
            "amdahl-bounds", "Section 4.2 / 5", "Amdahl speedup upper bounds and headline counts",
            lambda: _amdahl_runner(session)),
        "parallel-validation": Experiment(
            "parallel-validation", "Section 1 / 4", "Modelled parallel execution of easy nests",
            lambda: _parallel_validation_runner(session)),
        "ceres-overhead": Experiment(
            "ceres-overhead", "Sections 3.1-3.2", "Instrumentation overhead of modes 1 and 2",
            lambda: _overhead_runner(session)),
    }


def run_experiment(experiment_id: str) -> str:
    """Run one experiment by id and return its rendered output."""
    registry = build_registry()
    if experiment_id not in registry:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {sorted(registry)}")
    return registry[experiment_id].run()


def run_all_experiments() -> Dict[str, str]:
    """Run every registered experiment (the full reproduction)."""
    return {experiment_id: experiment.run() for experiment_id, experiment in build_registry().items()}
