"""Experiment registry mapping paper tables/figures to runnable code."""

from .registry import (
    CaseStudyResults,
    Experiment,
    build_registry,
    run_all_experiments,
    run_case_study,
    run_experiment,
)

__all__ = [
    "CaseStudyResults",
    "Experiment",
    "build_registry",
    "run_all_experiments",
    "run_case_study",
    "run_experiment",
]
