"""Experiment registry mapping paper tables/figures to runnable code.

The deprecated ``run_case_study`` shim was removed after its promised two-PR
compatibility window: use :meth:`repro.api.AnalysisSession.case_study` (the
shared fallback session remains available via :func:`default_session`).
"""

from .registry import (
    CaseStudyResults,
    Experiment,
    build_registry,
    default_session,
    run_all_experiments,
    run_experiment,
)

__all__ = [
    "CaseStudyResults",
    "Experiment",
    "build_registry",
    "default_session",
    "run_all_experiments",
    "run_experiment",
]
