"""Browser-environment substrate: DOM, Canvas, events, clock, sampling profiler."""

from .canvas import CanvasElement, HostCanvas, attach_canvas_support, make_context2d
from .clock_adapter import VirtualClock
from .dom import Document, DOMAccessLog, DOMElement
from .events import EventLoop
from .gecko_profiler import GeckoProfile, GeckoProfiler
from .window import BrowserSession

__all__ = [
    "CanvasElement",
    "HostCanvas",
    "attach_canvas_support",
    "make_context2d",
    "VirtualClock",
    "Document",
    "DOMAccessLog",
    "DOMElement",
    "EventLoop",
    "GeckoProfile",
    "GeckoProfiler",
    "BrowserSession",
]
