"""Assembles a browser-like global environment around an interpreter.

:class:`BrowserSession` is the unit the case-study drivers and JS-CERES work
with: one interpreter, one document (with Canvas support), one event loop and
the guest globals (``window``, ``document``, ``performance``,
``requestAnimationFrame``, ``setTimeout``...).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..jsvm.hooks import HookBus
from ..jsvm.interpreter import Interpreter
from ..jsvm.values import UNDEFINED, JSObject, NativeFunction, to_number, to_string
from .canvas import attach_canvas_support
from .clock_adapter import VirtualClock
from .dom import Document
from .events import EventLoop


class BrowserSession:
    """A simulated browser tab: interpreter + DOM + event loop + globals."""

    def __init__(
        self,
        hooks: Optional[HookBus] = None,
        clock: Optional[VirtualClock] = None,
        rng_seed: int = 20150207,
        title: str = "page",
        tier: Optional[str] = None,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.interp = Interpreter(hooks=hooks, clock=self.clock, rng_seed=rng_seed, tier=tier)
        self.document = Document(clock=self.clock, title=title)
        attach_canvas_support(self.interp, self.document)
        self.event_loop = EventLoop(self.interp)
        self.scripts_run: List[str] = []
        self._install_globals()

    # ------------------------------------------------------------------ setup
    def _install_globals(self) -> None:
        interp = self.interp
        env = interp.global_env

        guest_document = self.document.make_guest_document(interp)
        env.declare_var("document", guest_document)

        window = JSObject(prototype=interp.object_prototype, class_name="Window")
        window.set("document", guest_document)
        window.set("innerWidth", 1280.0)
        window.set("innerHeight", 800.0)
        window.set("devicePixelRatio", 1.0)
        env.declare_var("window", window)
        env.declare_var("self", window)

        navigator = JSObject(prototype=interp.object_prototype, class_name="Navigator")
        navigator.set("userAgent", "repro-browser/1.0 (simulated)")
        navigator.set("hardwareConcurrency", 4.0)
        env.declare_var("navigator", navigator)
        window.set("navigator", navigator)

        performance = JSObject(prototype=interp.object_prototype, class_name="Performance")

        def performance_now(interpreter, this, args):
            interpreter.notify_host_access("timer", "performance.now")
            return interpreter.clock.now()

        performance.set("now", NativeFunction("now", performance_now))
        env.declare_var("performance", performance)
        window.set("performance", performance)

        def request_animation_frame(interpreter, this, args):
            interpreter.notify_host_access("timer", "requestAnimationFrame")
            callback = args[0] if args else UNDEFINED
            return float(self.event_loop.request_animation_frame(callback))

        def set_timeout(interpreter, this, args):
            interpreter.notify_host_access("timer", "setTimeout")
            callback = args[0] if args else UNDEFINED
            delay = to_number(args[1]) if len(args) > 1 else 0.0
            return float(self.event_loop.set_timeout(callback, delay))

        def set_interval(interpreter, this, args):
            interpreter.notify_host_access("timer", "setInterval")
            callback = args[0] if args else UNDEFINED
            delay = to_number(args[1]) if len(args) > 1 else 0.0
            return float(self.event_loop.set_timeout(callback, delay, repeat=True))

        def clear_timer(interpreter, this, args):
            if args:
                self.event_loop.clear_timeout(int(to_number(args[0])))
            return UNDEFINED

        def alert(interpreter, this, args):
            interpreter.console_output.append("[alert] " + " ".join(to_string(a) for a in args))
            return UNDEFINED

        for name, func in [
            ("requestAnimationFrame", request_animation_frame),
            ("setTimeout", set_timeout),
            ("setInterval", set_interval),
            ("clearTimeout", clear_timer),
            ("clearInterval", clear_timer),
            ("alert", alert),
        ]:
            native = NativeFunction(name, func)
            env.declare_var(name, native)
            window.set(name, native)

    # ------------------------------------------------------------------ usage
    def run_script(self, source: str, name: str = "<script>") -> Any:
        """Execute a script in the page's global scope."""
        self.scripts_run.append(name)
        return self.interp.run_source(source, name=name)

    def run_program(self, program, name: Optional[str] = None) -> Any:
        """Execute an already-parsed program in the page's global scope.

        Parsing is deterministic, so running a cached AST is observationally
        identical to :meth:`run_script` on its source — minus the parse.
        """
        self.scripts_run.append(name if name is not None else program.name)
        return self.interp.run(program)

    def run_document(self, instrumented) -> Any:
        """Execute a proxy response (an ``InstrumentedDocument``).

        Prefers the proxy's parsed AST when it has one (instrumented
        JavaScript); plain documents fall back to source execution.
        """
        document = instrumented.document
        program = getattr(instrumented, "program", None)
        if program is not None:
            return self.run_program(program, name=document.path)
        return self.run_script(document.content, name=document.path)

    def run_frames(self, count: int) -> int:
        """Drive the event loop for ``count`` animation frames."""
        return self.event_loop.run_frames(count)

    def idle(self, ms: float) -> None:
        """Simulate user idle time (no script execution)."""
        self.event_loop.idle(ms)

    def create_canvas(self, element_id: str, width: int, height: int):
        """Host helper: add a canvas of the given size to ``document.body``."""
        canvas = self.document.create_element("canvas")
        canvas.set("id", element_id)
        canvas.set("width", float(width))
        canvas.set("height", float(height))
        self.document.body.append_child(canvas)
        return canvas

    @property
    def total_seconds(self) -> float:
        return self.clock.now() / 1000.0

    @property
    def dom_access_count(self) -> int:
        return self.document.access_log.count()
