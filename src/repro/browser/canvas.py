"""Canvas 2D simulation.

Several case-study workloads (CamanJS, Harmony, fluidSim, Raytracing, Normal
Mapping, processing.js) are Canvas-centric: they read and write ``ImageData``
pixel buffers or issue large numbers of drawing commands.  The paper flags
Canvas interaction as a potential bottleneck (Figure 2) and as a
parallelization obstacle (non-concurrent Canvas, Section 4.1).

The simulation keeps a real pixel buffer (numpy ``uint8`` array) so image
workloads compute meaningful results, records every drawing command in a
command log, and reports all guest interaction through
``interp.notify_host_access("canvas", ...)`` so the analysis layer can
attribute Canvas traffic to loop nests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

import numpy as np

from ..jsvm.values import UNDEFINED, JSArray, JSObject, NativeFunction, to_number, to_string
from .dom import Document, DOMElement


@dataclass
class CanvasCommand:
    """One drawing command issued against a 2D context."""

    name: str
    args: tuple
    time_ms: float


@dataclass
class CanvasLog:
    commands: List[CanvasCommand] = field(default_factory=list)
    pixels_read: int = 0
    pixels_written: int = 0

    def record(self, name: str, args: tuple, time_ms: float) -> None:
        self.commands.append(CanvasCommand(name, args, time_ms))

    def count(self) -> int:
        return len(self.commands)


class HostCanvas:
    """Host-side pixel buffer shared by a canvas element and its 2D context."""

    def __init__(self, width: int = 300, height: int = 150, clock=None) -> None:
        self.width = int(width)
        self.height = int(height)
        self.clock = clock
        self.buffer = np.zeros((self.height, self.width, 4), dtype=np.uint8)
        self.buffer[:, :, 3] = 255
        self.log = CanvasLog()

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def record(self, name: str, *args) -> None:
        self.log.record(name, args, self._now())

    def resize(self, width: int, height: int) -> None:
        self.width, self.height = int(width), int(height)
        self.buffer = np.zeros((self.height, self.width, 4), dtype=np.uint8)
        self.buffer[:, :, 3] = 255

    def fill_rect(self, x: float, y: float, w: float, h: float, rgba=(0, 0, 0, 255)) -> None:
        x0, y0 = max(int(x), 0), max(int(y), 0)
        x1, y1 = min(int(x + w), self.width), min(int(y + h), self.height)
        if x1 > x0 and y1 > y0:
            self.buffer[y0:y1, x0:x1] = rgba
            self.log.pixels_written += (x1 - x0) * (y1 - y0)
        self.record("fillRect", x, y, w, h)

    def clear_rect(self, x: float, y: float, w: float, h: float) -> None:
        self.fill_rect(x, y, w, h, rgba=(0, 0, 0, 0))
        self.record("clearRect", x, y, w, h)

    def get_image_data(self, x: int, y: int, w: int, h: int) -> np.ndarray:
        x0, y0 = max(int(x), 0), max(int(y), 0)
        x1, y1 = min(int(x + w), self.width), min(int(y + h), self.height)
        self.log.pixels_read += max(0, x1 - x0) * max(0, y1 - y0)
        self.record("getImageData", x, y, w, h)
        return self.buffer[y0:y1, x0:x1].copy()

    def put_image_data(self, data: np.ndarray, x: int, y: int) -> None:
        h, w = data.shape[:2]
        x0, y0 = max(int(x), 0), max(int(y), 0)
        x1, y1 = min(x0 + w, self.width), min(y0 + h, self.height)
        if x1 > x0 and y1 > y0:
            self.buffer[y0:y1, x0:x1] = data[: y1 - y0, : x1 - x0]
            self.log.pixels_written += (x1 - x0) * (y1 - y0)
        self.record("putImageData", x, y)


def _dimension(value: float) -> int:
    """Convert a guest width/height value to a non-negative int (NaN -> 0)."""
    if value != value:  # NaN
        return 0
    return max(int(value), 0)


class CanvasElement(DOMElement):
    """A ``<canvas>`` element backed by a :class:`HostCanvas`."""

    __slots__ = ("host_canvas",)

    def __init__(self, document: Document, width: int = 300, height: int = 150) -> None:
        super().__init__("canvas", document, prototype=document.element_prototype)
        self.host_canvas = HostCanvas(width, height, clock=document.clock)
        self.set("width", float(width))
        self.set("height", float(height))

    def set(self, name: str, value: Any) -> None:  # keep buffer in sync with size
        super().set(name, value)
        if name in ("width", "height") and hasattr(self, "host_canvas"):
            width = _dimension(to_number(self.get("width")))
            height = _dimension(to_number(self.get("height")))
            if width > 0 and height > 0 and (width != self.host_canvas.width or height != self.host_canvas.height):
                self.host_canvas.resize(width, height)


def make_image_data(interp, pixels: np.ndarray) -> JSObject:
    """Wrap a ``(h, w, 4)`` uint8 array as a guest ImageData object."""
    height, width = pixels.shape[:2]
    image_data = interp.make_object()
    image_data.set("width", float(width))
    image_data.set("height", float(height))
    flat = pixels.astype(np.float64).reshape(-1)
    data = interp.make_array(list(flat))
    image_data.set("data", data)
    image_data.extra["is_image_data"] = True
    return image_data


def image_data_to_array(image_data: JSObject) -> np.ndarray:
    width = int(to_number(image_data.get("width")))
    height = int(to_number(image_data.get("height")))
    data = image_data.get("data")
    if not isinstance(data, JSArray):
        return np.zeros((height, width, 4), dtype=np.uint8)
    values = np.asarray([to_number(v) for v in data.elements], dtype=np.float64)
    values = np.clip(values, 0, 255).astype(np.uint8)
    if values.size != width * height * 4:
        values = np.resize(values, width * height * 4)
    return values.reshape((height, width, 4))


def make_context2d(interp, canvas: CanvasElement) -> JSObject:
    """Build the guest-visible ``CanvasRenderingContext2D`` for ``canvas``."""
    host = canvas.host_canvas
    host.clock = interp.clock
    ctx = JSObject(prototype=interp.object_prototype, class_name="CanvasRenderingContext2D")
    ctx.set("canvas", canvas)
    ctx.set("fillStyle", "#000000")
    ctx.set("strokeStyle", "#000000")
    ctx.set("lineWidth", 1.0)
    ctx.set("globalAlpha", 1.0)
    ctx.extra["host_canvas"] = host

    def _rgba_from_style(style: Any) -> tuple:
        text = to_string(style)
        if text.startswith("#") and len(text) == 7:
            return (int(text[1:3], 16), int(text[3:5], 16), int(text[5:7], 16), 255)
        if text.startswith("rgba(") or text.startswith("rgb("):
            inner = text[text.index("(") + 1 : text.rindex(")")]
            parts = [float(p.strip()) for p in inner.split(",")]
            if len(parts) == 3:
                parts.append(1.0)
            return (int(parts[0]), int(parts[1]), int(parts[2]), int(parts[3] * 255))
        return (0, 0, 0, 255)

    def simple_command(name):
        def impl(interpreter, this, args):
            interpreter.notify_host_access("canvas", name)
            host.record(name, *[to_number(a) if isinstance(a, (int, float)) else to_string(a) for a in args])
            return UNDEFINED

        return NativeFunction(name, impl)

    def fill_rect(interpreter, this, args):
        interpreter.notify_host_access("canvas", "fillRect")
        rgba = _rgba_from_style(ctx.get("fillStyle"))
        host.fill_rect(
            to_number(args[0]) if len(args) > 0 else 0.0,
            to_number(args[1]) if len(args) > 1 else 0.0,
            to_number(args[2]) if len(args) > 2 else 0.0,
            to_number(args[3]) if len(args) > 3 else 0.0,
            rgba=rgba,
        )
        return UNDEFINED

    def clear_rect(interpreter, this, args):
        interpreter.notify_host_access("canvas", "clearRect")
        host.clear_rect(
            to_number(args[0]) if len(args) > 0 else 0.0,
            to_number(args[1]) if len(args) > 1 else 0.0,
            to_number(args[2]) if len(args) > 2 else 0.0,
            to_number(args[3]) if len(args) > 3 else 0.0,
        )
        return UNDEFINED

    def get_image_data(interpreter, this, args):
        interpreter.notify_host_access("canvas", "getImageData")
        pixels = host.get_image_data(
            int(to_number(args[0])) if len(args) > 0 else 0,
            int(to_number(args[1])) if len(args) > 1 else 0,
            int(to_number(args[2])) if len(args) > 2 else host.width,
            int(to_number(args[3])) if len(args) > 3 else host.height,
        )
        return make_image_data(interpreter, pixels)

    def put_image_data(interpreter, this, args):
        interpreter.notify_host_access("canvas", "putImageData")
        if args and isinstance(args[0], JSObject):
            pixels = image_data_to_array(args[0])
            host.put_image_data(
                pixels,
                int(to_number(args[1])) if len(args) > 1 else 0,
                int(to_number(args[2])) if len(args) > 2 else 0,
            )
        return UNDEFINED

    def create_image_data(interpreter, this, args):
        interpreter.notify_host_access("canvas", "createImageData")
        width = int(to_number(args[0])) if len(args) > 0 else host.width
        height = int(to_number(args[1])) if len(args) > 1 else host.height
        return make_image_data(interpreter, np.zeros((height, width, 4), dtype=np.uint8))

    ctx.set("fillRect", NativeFunction("fillRect", fill_rect))
    ctx.set("clearRect", NativeFunction("clearRect", clear_rect))
    ctx.set("getImageData", NativeFunction("getImageData", get_image_data))
    ctx.set("putImageData", NativeFunction("putImageData", put_image_data))
    ctx.set("createImageData", NativeFunction("createImageData", create_image_data))
    for name in (
        "beginPath",
        "closePath",
        "moveTo",
        "lineTo",
        "stroke",
        "fill",
        "arc",
        "rect",
        "save",
        "restore",
        "translate",
        "rotate",
        "scale",
        "drawImage",
        "strokeRect",
        "quadraticCurveTo",
        "bezierCurveTo",
        "fillText",
        "setTransform",
    ):
        ctx.set(name, simple_command(name))
    return ctx


def attach_canvas_support(interp, document: Document) -> None:
    """Make ``document.createElement('canvas')`` return canvas elements with
    a working ``getContext('2d')``."""
    proto = document.element_prototype

    def get_context(interpreter, this, args):
        interpreter.notify_host_access("canvas", "getContext")
        if isinstance(this, CanvasElement):
            cached = this.extra.get("context2d")
            if cached is None:
                cached = make_context2d(interpreter, this)
                this.extra["context2d"] = cached
            return cached
        return UNDEFINED

    proto.set("getContext", NativeFunction("getContext", get_context))

    original_create_element = document.create_element

    def create_element(tag_name: str) -> DOMElement:
        if tag_name.lower() == "canvas":
            element = CanvasElement(document)
            document.log_access("createElement", "canvas")
            return element
        return original_create_element(tag_name)

    document.create_element = create_element  # type: ignore[method-assign]
