"""A small, non-concurrent DOM implementation.

The paper repeatedly points out that "no major browser currently supports
concurrent accesses to the DOM" and that half of the inspected loop nests
touch the DOM, which caps how much of the latent parallelism is exploitable.
To reproduce that analysis we need (1) a DOM that guest code can read and
mutate, and (2) an access log that records *when* (virtual time) and *from
where* (guest call stack) each access happened so the dependence/DOM analysis
can attribute accesses to loop nests.

DOM elements are guest-visible :class:`~repro.jsvm.values.JSObject` instances
(class :class:`DOMElement`), so ordinary property reads/writes on them flow
through the interpreter's instrumentation hooks like any other object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..jsvm.values import UNDEFINED, JSObject, NativeFunction, to_number, to_string


@dataclass
class DOMAccess:
    """One logged host access to the DOM."""

    operation: str  # e.g. "createElement", "appendChild", "setAttribute", "read"
    detail: str
    time_ms: float
    function: str = ""


@dataclass
class DOMAccessLog:
    """Chronological log of DOM operations performed by guest code."""

    accesses: List[DOMAccess] = field(default_factory=list)

    def record(self, operation: str, detail: str, time_ms: float, function: str = "") -> None:
        self.accesses.append(DOMAccess(operation, detail, time_ms, function))

    def count(self) -> int:
        return len(self.accesses)

    def operations(self) -> List[str]:
        return [access.operation for access in self.accesses]

    def clear(self) -> None:
        self.accesses.clear()


class DOMElement(JSObject):
    """A DOM element, visible to guest code as a normal object."""

    __slots__ = ("tag_name", "children", "parent", "document")

    def __init__(self, tag_name: str, document: "Document", prototype: Optional[JSObject] = None) -> None:
        super().__init__(prototype=prototype, class_name="HTMLElement")
        self.tag_name = tag_name.lower()
        self.children: List["DOMElement"] = []
        self.parent: Optional["DOMElement"] = None
        self.document = document
        self.set("tagName", tag_name.upper())
        self.set("id", "")
        self.set("className", "")
        self.set("textContent", "")
        self.set("innerHTML", "")
        style = JSObject(class_name="CSSStyleDeclaration")
        self.set("style", style)
        attributes = JSObject(class_name="NamedNodeMap")
        self.set("attributes", attributes)

    # The DOM log is fed from the Document so that elements detached from the
    # tree still account against the same log.
    def _log(self, operation: str, detail: str) -> None:
        self.document.log_access(operation, f"<{self.tag_name}> {detail}".strip())

    def append_child(self, child: "DOMElement") -> "DOMElement":
        if child.parent is not None:
            child.parent.children.remove(child)
        child.parent = self
        self.children.append(child)
        self._log("appendChild", child.tag_name)
        return child

    def remove_child(self, child: "DOMElement") -> "DOMElement":
        if child in self.children:
            self.children.remove(child)
            child.parent = None
        self._log("removeChild", child.tag_name)
        return child

    def set_attribute(self, name: str, value: str) -> None:
        attributes = self.get("attributes")
        if isinstance(attributes, JSObject):
            attributes.set(name, value)
        if name == "id":
            self.set("id", value)
        if name == "class":
            self.set("className", value)
        self._log("setAttribute", name)

    def get_attribute(self, name: str) -> Any:
        attributes = self.get("attributes")
        value = attributes.get(name) if isinstance(attributes, JSObject) else UNDEFINED
        self._log("getAttribute", name)
        return value

    def descendants(self):
        for child in self.children:
            yield child
            yield from child.descendants()


class Document:
    """The host-side document object owning the element tree and access log."""

    def __init__(self, clock=None, title: str = "document") -> None:
        self.clock = clock
        self.title = title
        self.access_log = DOMAccessLog()
        self.element_prototype = JSObject(class_name="HTMLElement.prototype")
        self._install_element_methods()
        self.root = DOMElement("html", self, prototype=self.element_prototype)
        self.body = DOMElement("body", self, prototype=self.element_prototype)
        self.head = DOMElement("head", self, prototype=self.element_prototype)
        self.root.children = [self.head, self.body]
        self.head.parent = self.root
        self.body.parent = self.root
        self._current_function = lambda: ""

    # ------------------------------------------------------------------ host
    def bind_interpreter(self, interp) -> None:
        """Attach the interpreter so the log can record guest stack context."""
        self.clock = interp.clock
        self._current_function = interp.current_function_name

    def log_access(self, operation: str, detail: str) -> None:
        time_ms = self.clock.now() if self.clock is not None else 0.0
        self.access_log.record(operation, detail, time_ms, self._current_function())

    def create_element(self, tag_name: str) -> DOMElement:
        element = DOMElement(tag_name, self, prototype=self.element_prototype)
        self.log_access("createElement", tag_name)
        return element

    def get_element_by_id(self, element_id: str) -> Optional[DOMElement]:
        self.log_access("getElementById", element_id)
        for element in self.root.descendants():
            if element.get("id") == element_id:
                return element
        return None

    def query_selector_all(self, selector: str) -> List[DOMElement]:
        """Very small selector engine: ``#id``, ``.class`` and tag selectors."""
        self.log_access("querySelectorAll", selector)
        matches: List[DOMElement] = []
        for element in self.root.descendants():
            if selector.startswith("#"):
                if element.get("id") == selector[1:]:
                    matches.append(element)
            elif selector.startswith("."):
                classes = to_string(element.get("className")).split()
                if selector[1:] in classes:
                    matches.append(element)
            elif element.tag_name == selector.lower():
                matches.append(element)
        return matches

    def element_count(self) -> int:
        return sum(1 for _ in self.root.descendants())

    # ----------------------------------------------------------- guest shims
    def _install_element_methods(self) -> None:
        proto = self.element_prototype

        def append_child(interp, this, args):
            if isinstance(this, DOMElement) and args and isinstance(args[0], DOMElement):
                interp.notify_host_access("dom", "appendChild")
                return this.append_child(args[0])
            return UNDEFINED

        def remove_child(interp, this, args):
            if isinstance(this, DOMElement) and args and isinstance(args[0], DOMElement):
                interp.notify_host_access("dom", "removeChild")
                return this.remove_child(args[0])
            return UNDEFINED

        def set_attribute(interp, this, args):
            if isinstance(this, DOMElement) and len(args) >= 2:
                interp.notify_host_access("dom", "setAttribute")
                this.set_attribute(to_string(args[0]), to_string(args[1]))
            return UNDEFINED

        def get_attribute(interp, this, args):
            if isinstance(this, DOMElement) and args:
                interp.notify_host_access("dom", "getAttribute")
                return this.get_attribute(to_string(args[0]))
            return UNDEFINED

        def get_bounding_client_rect(interp, this, args):
            interp.notify_host_access("dom", "getBoundingClientRect")
            rect = interp.make_object()
            width = to_number(this.get("width")) if isinstance(this, DOMElement) else 0.0
            height = to_number(this.get("height")) if isinstance(this, DOMElement) else 0.0
            rect.set("left", 0.0)
            rect.set("top", 0.0)
            rect.set("width", width if width == width else 0.0)
            rect.set("height", height if height == height else 0.0)
            return rect

        def add_event_listener(interp, this, args):
            interp.notify_host_access("dom", "addEventListener")
            if isinstance(this, DOMElement) and len(args) >= 2:
                listeners = this.get("__listeners")
                if not isinstance(listeners, JSObject):
                    listeners = interp.make_object()
                    this.set("__listeners", listeners)
                listeners.set(to_string(args[0]), args[1])
            return UNDEFINED

        proto.set("appendChild", NativeFunction("appendChild", append_child))
        proto.set("removeChild", NativeFunction("removeChild", remove_child))
        proto.set("setAttribute", NativeFunction("setAttribute", set_attribute))
        proto.set("getAttribute", NativeFunction("getAttribute", get_attribute))
        proto.set("getBoundingClientRect", NativeFunction("getBoundingClientRect", get_bounding_client_rect))
        proto.set("addEventListener", NativeFunction("addEventListener", add_event_listener))

    def make_guest_document(self, interp) -> JSObject:
        """Build the guest-visible ``document`` object for an interpreter."""
        self.bind_interpreter(interp)
        doc_obj = JSObject(prototype=interp.object_prototype, class_name="Document")
        doc_obj.extra["host_document"] = self
        doc_obj.set("body", self.body)
        doc_obj.set("head", self.head)
        doc_obj.set("documentElement", self.root)
        doc_obj.set("title", self.title)

        def create_element(interpreter, this, args):
            interpreter.notify_host_access("dom", "createElement")
            tag = to_string(args[0]) if args else "div"
            return self.create_element(tag)

        def get_element_by_id(interpreter, this, args):
            interpreter.notify_host_access("dom", "getElementById")
            element = self.get_element_by_id(to_string(args[0]) if args else "")
            from ..jsvm.values import NULL

            return element if element is not None else NULL

        def query_selector(interpreter, this, args):
            interpreter.notify_host_access("dom", "querySelector")
            matches = self.query_selector_all(to_string(args[0]) if args else "*")
            from ..jsvm.values import NULL

            return matches[0] if matches else NULL

        def query_selector_all(interpreter, this, args):
            interpreter.notify_host_access("dom", "querySelectorAll")
            matches = self.query_selector_all(to_string(args[0]) if args else "*")
            return interpreter.make_array(list(matches))

        doc_obj.set("createElement", NativeFunction("createElement", create_element))
        doc_obj.set("getElementById", NativeFunction("getElementById", get_element_by_id))
        doc_obj.set("querySelector", NativeFunction("querySelector", query_selector))
        doc_obj.set("querySelectorAll", NativeFunction("querySelectorAll", query_selector_all))
        return doc_obj
