"""A Gecko-style sampling profiler.

Section 3.1 of the paper cross-checks the JS-CERES in-loop time against the
Mozilla Gecko profiler and observes an anomaly: the *active* CPU time
reported by Gecko is sometimes **lower** than the time JS-CERES measures
inside loops.  The paper attributes this to Gecko sampling at *function*
granularity: "a long running computation within a single function may be seen
as inactive time".

This module reproduces that methodology artifact.  The profiler samples the
guest call stack at a fixed virtual-time interval, but — when
``function_granularity`` is enabled (the default, matching Gecko) — a sample
only counts as *active* if a function-call boundary (enter or exit) occurred
since the previous sample.  Tight loops that stay inside one function for a
long time therefore under-report, exactly as in the paper; loops that call
out frequently are attributed correctly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..jsvm.hooks import EV_FUNCTION, EV_STATEMENT, Tracer


@dataclass
class ProfileSample:
    """One stack sample."""

    time_ms: float
    top_function: str
    stack_depth: int
    active: bool


@dataclass
class GeckoProfile:
    """Aggregated output of a profiling run.

    ``sample_count`` / ``active_count`` are running counters maintained by
    :class:`GeckoProfiler` alongside the sample list, so the aggregate
    numbers survive a profiler that drops the per-sample records
    (``retain_samples=False`` — the streaming-replay memory bound).  For
    directly constructed profiles (tests, external data) the counters fall
    back to deriving from ``samples``.
    """

    samples: List[ProfileSample] = field(default_factory=list)
    sample_interval_ms: float = 1.0
    sample_count: int = 0
    active_count: int = 0

    def counts(self) -> tuple:
        """``(sample_count, active_count)`` regardless of how the profile
        was built — counters when maintained, derived from ``samples``
        otherwise."""
        if self.sample_count == 0 and self.samples:
            return (len(self.samples), sum(1 for s in self.samples if s.active))
        return (self.sample_count, self.active_count)

    @property
    def active_ms(self) -> float:
        return self.counts()[1] * self.sample_interval_ms

    @property
    def total_sampled_ms(self) -> float:
        return self.counts()[0] * self.sample_interval_ms

    def self_time_by_function(self) -> Dict[str, float]:
        counter: Counter = Counter(s.top_function for s in self.samples if s.active)
        return {name: count * self.sample_interval_ms for name, count in counter.items()}

    def hottest_functions(self, count: int = 10) -> List[tuple]:
        ranked = sorted(self.self_time_by_function().items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:count]


class GeckoProfiler(Tracer):
    """Sampling profiler attached to the interpreter hook bus.

    Parameters
    ----------
    sample_interval_ms:
        Virtual time between samples (Gecko's default is ~1ms).
    function_granularity:
        When True (default) reproduce Gecko's function-level sampling bias:
        a sample is marked active only if guest function call activity was
        observed since the previous sample.  When False every sample taken
        while guest code is on the stack counts as active (an idealized
        statement-level sampler).
    retain_samples:
        When False, per-sample records are not kept — only the running
        counters (sample/active counts) — so memory stays O(1) in the run
        length.  Every aggregate the analysis pipeline consumes comes from
        the counters; only per-sample inspection needs the records.
    """

    EVENTS = EV_FUNCTION | EV_STATEMENT

    def __init__(
        self,
        sample_interval_ms: float = 1.0,
        function_granularity: bool = True,
        retain_samples: bool = True,
    ) -> None:
        self.sample_interval_ms = sample_interval_ms
        self.function_granularity = function_granularity
        self.retain_samples = retain_samples
        self.profile = GeckoProfile(sample_interval_ms=sample_interval_ms)
        self._last_sample_ms: Optional[float] = None
        self._call_activity_since_sample = False
        self._statements_since_sample = 0

    # -- hook events ---------------------------------------------------------
    def on_function_enter(self, interp, func, call_node) -> None:
        self._call_activity_since_sample = True

    def on_function_exit(self, interp, func) -> None:
        self._call_activity_since_sample = True

    def on_statement(self, interp, node) -> None:
        self._statements_since_sample += 1
        now = interp.clock.now()
        if self._last_sample_ms is None:
            self._last_sample_ms = now
            return
        while now - self._last_sample_ms >= self.sample_interval_ms:
            self._last_sample_ms += self.sample_interval_ms
            self._take_sample(interp, self._last_sample_ms)

    # -- internals -------------------------------------------------------------
    def _take_sample(self, interp, time_ms: float) -> None:
        if self.function_granularity:
            active = self._call_activity_since_sample
        else:
            active = self._statements_since_sample > 0
        self.profile.sample_count += 1
        if active:
            self.profile.active_count += 1
        if self.retain_samples:
            self.profile.samples.append(
                ProfileSample(
                    time_ms=time_ms,
                    top_function=interp.current_function_name(),
                    stack_depth=len(interp.call_stack),
                    active=active,
                )
            )
        self._call_activity_since_sample = False
        self._statements_since_sample = 0

    # -- results ---------------------------------------------------------------
    def active_seconds(self) -> float:
        return self.profile.active_ms / 1000.0

    def reset(self) -> None:
        self.profile = GeckoProfile(sample_interval_ms=self.sample_interval_ms)
        self._last_sample_ms = None
        self._call_activity_since_sample = False
        self._statements_since_sample = 0
