"""Re-export of the virtual clock under the browser namespace.

The clock lives in :mod:`repro.jsvm.clock` because the interpreter charges
operation costs against it, but conceptually it is the browser's
high-resolution timer (``performance.now()``), so the browser package exposes
it too.
"""

from ..jsvm.clock import VirtualClock

__all__ = ["VirtualClock"]
