"""Event loop for the simulated browser.

JavaScript's execution model is event based: rendering loops are driven by
``requestAnimationFrame`` callbacks and timers.  The drivers of the
case-study workloads register frame callbacks exactly like the original web
applications do, and the event loop dispatches them while advancing the
virtual clock — including *idle* time between frames, which is what makes
Table 2's "Total" column larger than its "Active" column for interactive
applications (Harmony, Ace, MyScript ...).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..jsvm.values import UNDEFINED, is_callable
from .clock_adapter import VirtualClock


@dataclass(order=True)
class _ScheduledTask:
    due_ms: float
    sequence: int
    callback: Any = field(compare=False)
    repeat_ms: Optional[float] = field(compare=False, default=None)
    task_id: int = field(compare=False, default=0)


class EventLoop:
    """Single-threaded task queue driven by the virtual clock."""

    def __init__(self, interp, frame_interval_ms: float = 16.67) -> None:
        self.interp = interp
        self.clock: VirtualClock = interp.clock
        self.frame_interval_ms = frame_interval_ms
        self._timer_queue: List[_ScheduledTask] = []
        self._frame_callbacks: List[Any] = []
        self._sequence = 0
        self._next_task_id = 1
        self._cancelled: set = set()
        self.frames_run = 0
        self.idle_ms = 0.0

    # ----------------------------------------------------------------- timers
    def set_timeout(self, callback: Any, delay_ms: float, repeat: bool = False) -> int:
        task_id = self._next_task_id
        self._next_task_id += 1
        self._sequence += 1
        task = _ScheduledTask(
            due_ms=self.clock.now() + max(delay_ms, 0.0),
            sequence=self._sequence,
            callback=callback,
            repeat_ms=delay_ms if repeat else None,
            task_id=task_id,
        )
        heapq.heappush(self._timer_queue, task)
        return task_id

    def clear_timeout(self, task_id: int) -> None:
        self._cancelled.add(task_id)

    def request_animation_frame(self, callback: Any) -> int:
        self._frame_callbacks.append(callback)
        return len(self._frame_callbacks)

    # ------------------------------------------------------------------ frames
    def run_frame(self) -> int:
        """Run one animation frame: due timers, then frame callbacks.

        Returns the number of callbacks dispatched.  If nothing was runnable
        the loop records idle time (the clock still advances by one frame).
        """
        frame_start = self.clock.now()
        dispatched = 0

        while self._timer_queue and self._timer_queue[0].due_ms <= frame_start:
            task = heapq.heappop(self._timer_queue)
            if task.task_id in self._cancelled:
                continue
            dispatched += 1
            self._invoke(task.callback)
            if task.repeat_ms is not None:
                self.set_timeout(task.callback, task.repeat_ms, repeat=True)

        callbacks, self._frame_callbacks = self._frame_callbacks, []
        for callback in callbacks:
            dispatched += 1
            self._invoke(callback)

        self.frames_run += 1
        elapsed = self.clock.now() - frame_start
        if elapsed < self.frame_interval_ms:
            # The browser waits for the next vsync; this is idle time.
            self.idle_ms += self.frame_interval_ms - elapsed
            self.clock.advance(self.frame_interval_ms - elapsed)
        return dispatched

    def run_frames(self, count: int) -> int:
        """Run ``count`` frames; returns the total number of dispatched callbacks."""
        total = 0
        for _ in range(count):
            total += self.run_frame()
        return total

    def run_until_idle(self, max_frames: int = 10_000) -> int:
        """Run frames until no timers or frame callbacks remain."""
        total = 0
        for _ in range(max_frames):
            if not self._timer_queue and not self._frame_callbacks:
                break
            total += self.run_frame()
        return total

    def idle(self, ms: float) -> None:
        """Simulate the user doing nothing for ``ms`` milliseconds."""
        self.idle_ms += ms
        self.clock.advance(ms)

    # ---------------------------------------------------------------- internal
    def _invoke(self, callback: Any) -> Any:
        if is_callable(callback):
            return self.interp.call_function(callback, UNDEFINED, [self.clock.now()])
        if callable(callback):
            return callback()
        return UNDEFINED
