"""Wire protocol of the serving daemon: requests, envelopes, error codes.

Everything on the wire is JSON.  A *submission* names either a registered
workload or carries ad-hoc script sources, plus the tracer modes to run; the
daemon answers with a *response envelope* wrapping the uniform
:meth:`~repro.api.results.RunResult.to_dict` payload::

    {
      "protocol": 1,
      "server": {"cache": "warm", "coalesced": false,
                 "queued_ms": 0.1, "run_ms": 12.5},
      "result": { ... RunResult.to_dict() ... }
    }

Errors use one shape everywhere (``{"error": {"code", "message", ...}}``)
with the HTTP status carrying the class: 400 ``bad_request``, 404
``unknown_workload``/``not_found``, 405 ``method_not_allowed``, 413
``payload_too_large``, 429 ``queue_full`` (plus a ``Retry-After`` header),
500 ``internal``.

**Byte-identity guarantee.**  Served runs are ``RunSpec`` replay runs with
``publish=False`` (a shared daemon never mutates a results repository, so
``commit_id`` is always ``null``).  Recording and replay are deterministic —
virtual clock, content-addressed traces — so the ``result`` object is
byte-identical to ``AnalysisSession.run(workload, spec)`` for the same spec
in any process, and identical requests served cold (record) and warm
(replay-from-store) return the same bytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..api.spec import ALL_TRACERS, DEPENDENCE, LIGHTWEIGHT, RunSpec
from ..jsvm.tiers import ALL_TIERS

#: Version of the request/response shapes; bump on breaking changes.
PROTOCOL_VERSION = 1

#: Largest accepted request body, in bytes (scripts included).
MAX_BODY_BYTES = 1 << 20

#: error code → HTTP status.
ERROR_STATUS = {
    "bad_request": 400,
    "unknown_workload": 404,
    "not_found": 404,
    "method_not_allowed": 405,
    "payload_too_large": 413,
    "queue_full": 429,
    "internal": 500,
}


class ProtocolError(Exception):
    """A request the daemon refuses, with its wire error code."""

    def __init__(self, code: str, message: str, retry_after: Optional[int] = None):
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after = retry_after

    @property
    def status(self) -> int:
        return ERROR_STATUS[self.code]

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "error": {"code": self.code, "message": self.message}
        }
        if self.retry_after is not None:
            payload["error"]["retry_after_seconds"] = self.retry_after
        return payload


def encode_json(payload: Any) -> bytes:
    """Canonical response encoding (sorted keys, compact separators).

    Canonical bytes are what makes "byte-identical" testable at the HTTP
    layer, not just after parsing.
    """
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


@dataclass
class SubmitRequest:
    """One parsed analysis submission.

    Exactly one of ``workload`` (registry name) and ``script`` (ad-hoc
    sources) is set.  ``modes`` is a non-empty subset of the bus tracers —
    served runs replay traces, and replay needs at least one subscriber.
    """

    workload: Optional[str] = None
    #: Ad-hoc submission: ``(name, ((path, source), ...))``.
    script: Optional[Tuple[str, Tuple[Tuple[str, str], ...]]] = None
    modes: Tuple[str, ...] = (LIGHTWEIGHT,)
    tier: Optional[str] = None
    focus_line: Optional[int] = None

    def spec(self) -> RunSpec:
        """The replaying, non-publishing RunSpec this submission maps to."""
        spec = RunSpec.composed(*self.modes, focus_line=self.focus_line, publish=False)
        if self.tier is not None:
            spec = spec.with_tier(self.tier)
        return spec.replay()

    def resolve_workload(self):
        """The workload object to run (imports the registry module lazily)."""
        if self.script is not None:
            from ..workloads.base import Workload

            name, sources = self.script
            return Workload(
                name=name,
                category="Submitted",
                description="ad-hoc script submission",
                url="serve://submitted",
                scripts=[list(pair) for pair in sources],
            )
        from ..workloads.base import get_workload

        try:
            return get_workload(self.workload)
        except KeyError:
            from ..workloads.base import workload_names

            raise ProtocolError(
                "unknown_workload",
                f"unknown workload {self.workload!r}; known: {workload_names()}",
            ) from None

    def key(self, fingerprint: str) -> Tuple:
        """Single-flight identity: content fingerprint × spec knobs."""
        return (
            fingerprint,
            self.modes,
            self.tier or "",
            -1 if self.focus_line is None else self.focus_line,
        )


def _parse_modes(raw: Any) -> Tuple[str, ...]:
    if raw is None:
        return (LIGHTWEIGHT,)
    if isinstance(raw, str):
        raw = [part for part in raw.split(",") if part]
    if not isinstance(raw, list) or not all(isinstance(mode, str) for mode in raw):
        raise ProtocolError("bad_request", "'modes' must be a list of tracer names")
    unknown = [mode for mode in raw if mode not in ALL_TRACERS]
    if unknown:
        raise ProtocolError(
            "bad_request",
            f"unknown modes {unknown}; served modes: {list(ALL_TRACERS)}",
        )
    if not raw:
        raise ProtocolError(
            "bad_request",
            "'modes' must name at least one tracer (served runs replay traces, "
            "and replay needs a subscriber)",
        )
    # Canonical order, duplicates dropped: identical mode *sets* must share a
    # single-flight key regardless of how the client spelled them.
    return tuple(mode for mode in ALL_TRACERS if mode in raw)


def _parse_script(raw: Any) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    if not isinstance(raw, dict):
        raise ProtocolError("bad_request", "'script' must be an object")
    sources = raw.get("sources")
    if not isinstance(sources, list) or not sources:
        raise ProtocolError(
            "bad_request",
            "'script.sources' must be a non-empty list of {path, source} objects",
        )
    pairs: List[Tuple[str, str]] = []
    for entry in sources:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("path"), str)
            or not isinstance(entry.get("source"), str)
        ):
            raise ProtocolError(
                "bad_request",
                "each 'script.sources' entry must be a {path, source} object",
            )
        pairs.append((entry["path"], entry["source"]))
    name = raw.get("name")
    if name is None:
        digest = hashlib.sha256()
        for path, source in pairs:
            digest.update(path.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(source.encode("utf-8"))
            digest.update(b"\x00")
        name = f"submitted-{digest.hexdigest()[:12]}"
    elif not isinstance(name, str) or not name:
        raise ProtocolError("bad_request", "'script.name' must be a non-empty string")
    return name, tuple(pairs)


def parse_submit(data: Any) -> SubmitRequest:
    """Validate one analyze-request object into a :class:`SubmitRequest`."""
    if not isinstance(data, dict):
        raise ProtocolError("bad_request", "request body must be a JSON object")
    workload = data.get("workload")
    script_raw = data.get("script")
    if (workload is None) == (script_raw is None):
        raise ProtocolError(
            "bad_request",
            "exactly one of 'workload' (registry name) or 'script' "
            "({name, sources}) is required",
        )
    if workload is not None and not isinstance(workload, str):
        raise ProtocolError("bad_request", "'workload' must be a string")
    modes = _parse_modes(data.get("modes"))
    tier = data.get("tier")
    if tier is not None and tier not in ALL_TIERS:
        raise ProtocolError(
            "bad_request", f"unknown tier {tier!r}; known: {list(ALL_TIERS)}"
        )
    focus_line = data.get("focus_line")
    if focus_line is not None:
        if not isinstance(focus_line, int) or isinstance(focus_line, bool):
            raise ProtocolError("bad_request", "'focus_line' must be an integer")
        if DEPENDENCE not in modes:
            raise ProtocolError(
                "bad_request", "'focus_line' requires the 'dependence' mode"
            )
    script = _parse_script(script_raw) if script_raw is not None else None
    return SubmitRequest(
        workload=workload,
        script=script,
        modes=modes,
        tier=tier,
        focus_line=focus_line,
    )


def parse_body(body: bytes) -> Any:
    """Decode a request body, mapping JSON errors onto the wire error shape."""
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(
            "payload_too_large",
            f"request body exceeds {MAX_BODY_BYTES} bytes",
        )
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad_request", f"request body is not valid JSON: {exc}")
