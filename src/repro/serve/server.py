"""The serving daemon: stdlib HTTP in front of one shared analysis session.

``ServeDaemon`` owns an :class:`~repro.api.session.AnalysisSession` whose
trace store is (optionally) a :class:`~repro.serve.store.DiskTraceStore`, a
:class:`~repro.serve.dedup.SingleFlightExecutor`, and a
``ThreadingHTTPServer``.  Handler threads only parse/validate and wait;
analyses run on the executor's bounded worker pool.

Endpoints (all JSON; see :mod:`repro.serve.protocol` for shapes):

* ``GET  /healthz`` — liveness + listen address;
* ``GET  /v1/workloads`` — registered workloads with content fingerprints,
  so clients can key submissions and cache lookups without running anything;
* ``GET  /v1/stats`` — request/queue/store counters (``recordings`` is the
  number of guest executions — the single-flight proof);
* ``POST /v1/analyze`` — one submission object → one response envelope, or
  ``{"requests": [...]}`` → an NDJSON stream of envelopes, each line
  written as its analysis completes.

Every submission maps to a replaying, non-publishing
:class:`~repro.api.spec.RunSpec` (see the protocol module's byte-identity
notes): a cold key records the workload's union-mask trace once into the
shared store, every later (or coalesced concurrent) request replays it.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from ..api.session import AnalysisSession
from ..engine.cache import TraceStore, workload_fingerprint
from .dedup import Job, QueueFullError, SingleFlightExecutor
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    SubmitRequest,
    encode_json,
    parse_body,
    parse_submit,
)
from .store import DiskTraceStore


class ServeDaemon:
    """One serving process: session + store + single-flight pool + HTTP."""

    def __init__(
        self,
        store_dir: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        queue_depth: int = 64,
        default_tier: Optional[str] = None,
        request_log: bool = False,
        use_pool: Optional[bool] = None,
    ) -> None:
        self.store: TraceStore = (
            DiskTraceStore(store_dir) if store_dir is not None else TraceStore()
        )
        self.session = AnalysisSession(
            trace_store=self.store, default_tier=default_tier, use_pool=use_pool
        )
        self.executor = SingleFlightExecutor(workers=workers, queue_depth=queue_depth)
        self.request_log = request_log
        self.started_at = time.monotonic()
        self.requests = 0
        self.responses_by_status: Dict[int, int] = {}
        self._stats_lock = threading.Lock()
        self._fingerprints: Dict[str, str] = {}
        self._closed = False
        self.httpd = _ServeHTTPServer((host, port), _Handler, daemon=self)
        self.host, self.port = self.httpd.server_address[:2]

    # ------------------------------------------------------------- lifecycle
    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or an interrupt)."""
        self.httpd.serve_forever(poll_interval=0.2)

    def shutdown(self) -> None:
        """Stop the HTTP loop from another thread (idempotent)."""
        self.httpd.shutdown()

    def close(self) -> None:
        """Release everything: HTTP socket, worker pool, session, store.

        Closing the session closes its trace store, which flushes the disk
        index — the shutdown guarantee ``python -m repro serve`` relies on.
        """
        if self._closed:
            return
        self._closed = True
        self.httpd.server_close()
        self.executor.shutdown()
        self.session.close()

    def __enter__(self) -> "ServeDaemon":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------------- serving
    def workload_rows(self) -> List[Dict[str, str]]:
        """Registered workloads with content fingerprints (cached per name)."""
        from ..workloads.base import get_workload, workload_names

        rows = []
        for name in workload_names():
            fingerprint = self._fingerprints.get(name)
            if fingerprint is None:
                fingerprint = workload_fingerprint(get_workload(name))
                self._fingerprints[name] = fingerprint
            rows.append({"name": name, "fingerprint": fingerprint})
        return rows

    def stats(self) -> Dict[str, Any]:
        store = self.store
        store_stats: Dict[str, Any] = {
            "kind": type(store).__name__,
            "hits": store.hits,
            "misses": store.misses,
            "traces_in_memory": len(store),
        }
        if isinstance(store, DiskTraceStore):
            store_stats.update(
                root=str(store.root),
                segments=store.segment_count(),
                segments_written=store.segments_written,
                disk_hits=store.disk_hits,
                corrupt_segments=store.corrupt_segments,
            )
        with self._stats_lock:
            responses = dict(sorted(self.responses_by_status.items()))
            requests = self.requests
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.monotonic() - self.started_at,
            "requests": requests,
            "responses_by_status": responses,
            #: Guest executions since startup — concurrent identical
            #: submissions must move this by exactly one.
            "recordings": store.puts,
            "queue": self.executor.stats(),
            "store": store_stats,
        }

    def submit(self, request: SubmitRequest) -> Job:
        """Map a submission onto the single-flight executor.

        The job's result is the complete, canonical response body — every
        coalesced waiter receives byte-identical bytes.
        """
        workload = request.resolve_workload()
        fingerprint = workload_fingerprint(workload)
        spec = request.spec()
        key = request.key(fingerprint)

        def execute(job: Job) -> bytes:
            cache_state = "warm" if self.store.has(fingerprint, spec.combined_mask()) else "cold"
            started = time.perf_counter()
            result = self.session.run(workload, spec)
            run_seconds = time.perf_counter() - started
            envelope = {
                "protocol": PROTOCOL_VERSION,
                "server": {
                    "cache": cache_state,
                    "coalesced_waiters": job.waiters,
                    "queued_ms": round(job.queued_seconds * 1000.0, 3),
                    "run_ms": round(run_seconds * 1000.0, 3),
                },
                "result": result.to_dict(),
            }
            return encode_json(envelope)

        return self.executor.submit(key, execute)

    # ------------------------------------------------------------ accounting
    def count_response(self, status: int) -> None:
        with self._stats_lock:
            self.requests += 1
            self.responses_by_status[status] = self.responses_by_status.get(status, 0) + 1


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, daemon: ServeDaemon) -> None:
        self.serve_daemon = daemon
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    #: Hard ceiling on one analysis, queueing included.
    JOB_TIMEOUT_SECONDS = 600.0

    @property
    def daemon(self) -> ServeDaemon:
        return self.server.serve_daemon

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.daemon.request_log:
            super().log_message(format, *args)

    # ------------------------------------------------------------ responses
    def _respond(self, status: int, body: bytes, headers: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self.daemon.count_response(status)

    def _respond_json(self, status: int, payload: Any, headers: Optional[Dict[str, str]] = None) -> None:
        self._respond(status, encode_json(payload), headers)

    def _respond_error(self, error: ProtocolError) -> None:
        headers = {}
        if error.retry_after is not None:
            headers["Retry-After"] = str(error.retry_after)
        self._respond_json(error.status, error.to_payload(), headers)

    # --------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/healthz":
                self._respond_json(
                    200,
                    {
                        "status": "ok",
                        "protocol": PROTOCOL_VERSION,
                        "address": f"{self.daemon.host}:{self.daemon.port}",
                    },
                )
            elif self.path == "/v1/workloads":
                self._respond_json(200, {"workloads": self.daemon.workload_rows()})
            elif self.path == "/v1/stats":
                self._respond_json(200, self.daemon.stats())
            elif self.path == "/":
                self._respond_json(
                    200,
                    {
                        "service": "repro-serve",
                        "protocol": PROTOCOL_VERSION,
                        "endpoints": [
                            "GET /healthz",
                            "GET /v1/workloads",
                            "GET /v1/stats",
                            "POST /v1/analyze",
                        ],
                    },
                )
            else:
                self._respond_error(ProtocolError("not_found", f"no route for {self.path}"))
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path != "/v1/analyze":
                self._respond_error(ProtocolError("not_found", f"no route for {self.path}"))
                return
            try:
                data = parse_body(self._read_body())
                if isinstance(data, dict) and "requests" in data:
                    self._analyze_batch(data)
                else:
                    self._analyze_one(data)
            except ProtocolError as error:
                self._respond_error(error)
            except Exception as exc:  # pragma: no cover - defensive surface
                self._respond_error(ProtocolError("internal", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_PUT(self) -> None:  # noqa: N802
        self._respond_error(ProtocolError("method_not_allowed", "use GET or POST"))

    do_DELETE = do_PUT

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ProtocolError("bad_request", "invalid Content-Length header")
        from .protocol import MAX_BODY_BYTES

        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                "payload_too_large", f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        return self.rfile.read(length) if length else b""

    def _submit(self, data: Any) -> Job:
        request = parse_submit(data)
        try:
            return self.daemon.submit(request)
        except QueueFullError as full:
            raise ProtocolError(
                "queue_full", str(full), retry_after=full.retry_after
            ) from None

    def _await_body(self, job: Job) -> bytes:
        try:
            return job.wait(timeout=self.JOB_TIMEOUT_SECONDS)
        except ProtocolError:
            raise
        except TimeoutError as exc:
            raise ProtocolError("internal", str(exc)) from None
        except Exception as exc:
            raise ProtocolError("internal", f"{type(exc).__name__}: {exc}") from None

    def _analyze_one(self, data: Any) -> None:
        body = self._await_body(self._submit(data))
        self._respond(200, body)

    def _analyze_batch(self, data: Dict[str, Any]) -> None:
        """Stream one envelope per submission as NDJSON, in request order.

        Jobs are all submitted up front (so they pipeline through the worker
        pool) and each line is flushed as its analysis completes.  The
        response has no Content-Length; ``Connection: close`` delimits it.
        """
        requests = data.get("requests")
        if not isinstance(requests, list) or not requests:
            raise ProtocolError("bad_request", "'requests' must be a non-empty list")
        jobs: List[Any] = []
        for entry in requests:
            try:
                jobs.append(self._submit(entry))
            except ProtocolError as error:
                jobs.append(error)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        for job in jobs:
            if isinstance(job, ProtocolError):
                self.wfile.write(encode_json(job.to_payload()))
            else:
                try:
                    self.wfile.write(self._await_body(job))
                except ProtocolError as error:
                    self.wfile.write(encode_json(error.to_payload()))
            self.wfile.flush()
        self.daemon.count_response(200)


def run_daemon(
    store_dir: Optional[str],
    host: str,
    port: int,
    workers: int,
    queue_depth: int,
    default_tier: Optional[str] = None,
    request_log: bool = False,
    port_file: Optional[str] = None,
    announce=print,
    use_pool: Optional[bool] = None,
) -> int:
    """CLI body of ``python -m repro serve``: build, announce, serve, flush."""
    daemon = ServeDaemon(
        store_dir=store_dir,
        host=host,
        port=port,
        workers=workers,
        queue_depth=queue_depth,
        default_tier=default_tier,
        request_log=request_log,
        use_pool=use_pool,
    )
    try:
        if port_file is not None:
            with open(port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{daemon.port}\n")
        store_desc = store_dir if store_dir is not None else "in-memory (no --store-dir)"
        announce(
            f"repro-serve listening on http://{daemon.host}:{daemon.port} "
            f"(store: {store_desc}, workers={workers}, queue={queue_depth})"
        )
        daemon.serve_forever()
        return 0
    finally:
        # Runs on normal shutdown *and* on SIGINT/SIGTERM (KeyboardInterrupt):
        # stops the pool and flushes the disk store index via session.close().
        daemon.close()
