"""Analysis-as-a-service: the multi-tenant serving tier.

The batch tool runs one analysis per process; this package puts a long-lived
HTTP+JSON daemon in front of one shared
:class:`~repro.api.session.AnalysisSession` so many clients can submit
workloads (by registry name or as ad-hoc script sources) and receive
:class:`~repro.api.results.RunResult` envelopes.  Three layers make it more
than a wrapper:

* :mod:`repro.serve.store` — a :class:`DiskTraceStore` with the in-memory
  :class:`~repro.engine.cache.TraceStore`'s fingerprint × mask-superset
  contract, persisting gzip trace segments plus a JSON index so recordings
  survive restarts and are shared across every client;
* :mod:`repro.serve.dedup` — single-flight deduplication (concurrent
  identical requests coalesce onto one in-flight computation) over a bounded
  worker pool with a FIFO admission queue (overflow → HTTP 429);
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — the stdlib
  ``ThreadingHTTPServer`` daemon behind ``python -m repro serve`` and the
  ``urllib``-based client behind ``python -m repro submit`` plus the
  load-generator benchmark.

No dependency beyond the standard library is involved anywhere in this
package.
"""

from .client import ServeClient, ServeError
from .dedup import QueueFullError, SingleFlightExecutor
from .protocol import PROTOCOL_VERSION, ProtocolError, SubmitRequest
from .server import ServeDaemon
from .store import DiskTraceStore

__all__ = [
    "PROTOCOL_VERSION",
    "DiskTraceStore",
    "ProtocolError",
    "QueueFullError",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "SingleFlightExecutor",
    "SubmitRequest",
]
