"""Disk-backed trace store: the daemon's cache that survives restarts.

A :class:`DiskTraceStore` is a :class:`~repro.engine.cache.TraceStore` (same
fingerprint × mask-superset lookup, same covered-trace eviction) whose
recordings additionally persist under a root directory::

    <root>/
      index.json                          # {version, entries: [...]}
      <fp16>-<digest16>.trace.bin         # binary columnar segment (default)
      <fp16>-<digest16>.trace.json.gz     # legacy gzip segment (reads forever)

Segments reuse the exact ``python -m repro trace record`` file formats —
binary columnar (schema v2, mmap-able and random-access by chunk) by
default, the v1 JSON/NDJSON gzip format when ``REPRO_TRACE_ENCODING=json``
— so any on-disk segment can also be inspected/replayed with the trace CLI,
and stores written by either encoding keep serving.  The JSON index carries
one row per segment (fingerprint, mask, digest, event count, file name); on
startup only the index is read — segments load lazily on the first covering
``find`` and are then served from memory, and :meth:`segment_ref` hands
pooled fan-out a ``(path, digest)`` reference workers open themselves.

Durability and corruption policy:

* segments and the index are written atomically (temp file + ``os.replace``),
  and the index is additionally re-written by :meth:`flush` /
  :meth:`close` — the serve daemon calls ``close()`` on shutdown;
* a corrupt, truncated or fingerprint-mismatched segment is a clean *miss*:
  the entry is dropped from the index (and the file best-effort unlinked),
  never an exception out of ``find`` — the caller simply re-records.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Dict, List, Optional

from ..engine.cache import TraceStore
from ..jsvm.hooks import (
    Trace,
    TraceError,
    TraceWriter,
    open_trace_source,
    trace_encoding,
)

#: On-disk index schema version.
INDEX_VERSION = 1
INDEX_NAME = "index.json"


class DiskTraceStore(TraceStore):
    """A trace store whose contents persist under ``root`` across restarts."""

    def __init__(
        self,
        root,
        chunk_events: Optional[int] = None,
        encoding: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Events per segment chunk (None → the REPRO_TRACE_CHUNK_EVENTS /
        #: built-in default at write time).  Traces that fit in one chunk are
        #: written in the legacy single-document format, so small stores stay
        #: byte-compatible with ``Trace.save``.
        self.chunk_events = chunk_events
        #: Segment encoding for *new* writes (None → the REPRO_TRACE_ENCODING /
        #: binary default at write time).  Existing segments of either format
        #: keep serving — the index ``file`` column names them.
        self.encoding = encoding
        self._io_lock = threading.RLock()
        #: fingerprint → index rows ({digest, mask, workload, events, file}).
        self._index: Dict[str, List[dict]] = {}
        self._dirty = False
        self.disk_hits = 0
        self.segments_written = 0
        self.corrupt_segments = 0
        self.index_writes = 0
        self._load_index()

    # ---------------------------------------------------------------- index
    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    def _load_index(self) -> None:
        try:
            data = json.loads(self.index_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # An unreadable index means an empty store, not a dead daemon;
            # surviving segments are re-indexed as they are re-recorded.
            self.corrupt_segments += 1
            return
        if not isinstance(data, dict) or data.get("version") != INDEX_VERSION:
            self.corrupt_segments += 1
            return
        for row in data.get("entries", ()):
            if not isinstance(row, dict):
                continue
            try:
                entry = {
                    "fingerprint": str(row["fingerprint"]),
                    "digest": str(row["digest"]),
                    "mask": int(row["mask"]),
                    "workload": str(row.get("workload", "")),
                    "events": int(row.get("events", 0)),
                    "file": str(row["file"]),
                }
            except (KeyError, TypeError, ValueError):
                continue
            self._index.setdefault(entry["fingerprint"], []).append(entry)

    def _write_index_locked(self) -> None:
        entries = [entry for rows in self._index.values() for entry in rows]
        entries.sort(key=lambda entry: (entry["fingerprint"], entry["digest"]))
        payload = {"version": INDEX_VERSION, "entries": entries}
        tmp = self.index_path.with_name(INDEX_NAME + ".tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.index_path)
        self.index_writes += 1
        self._dirty = False

    def flush(self) -> None:
        """Write the index if any entry changed since the last write."""
        with self._io_lock:
            if self._dirty:
                self._write_index_locked()

    def close(self) -> None:
        self.flush()

    # ------------------------------------------------------------- segments
    @staticmethod
    def _segment_name(fingerprint: str, digest: str, encoding: str = "binary") -> str:
        """Segment file name; binary segments stay uncompressed-on-disk so
        readers (this process and forked pool workers alike) can mmap them."""
        if encoding == "binary":
            return f"{fingerprint[:16]}-{digest[:16]}.trace.bin"
        return f"{fingerprint[:16]}-{digest[:16]}.trace.json.gz"

    def _segment_path(self, entry: dict) -> Path:
        return self.root / entry["file"]

    def _drop_entry_locked(self, entry: dict) -> None:
        rows = self._index.get(entry["fingerprint"], [])
        if entry in rows:
            rows.remove(entry)
            if not rows:
                del self._index[entry["fingerprint"]]
            self._dirty = True
        try:
            self._segment_path(entry).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------- contract
    def _write_segment_tmp(self, trace: Trace, target: Path, encoding: str) -> Path:
        """Write ``trace`` to a unique temp sibling of ``target`` and return it.

        Called **outside** ``_io_lock``: segment serialization is the
        expensive part of a put (gzip / columnar encode of the whole event
        list), and holding the lock across it would serialize every
        concurrent tenant.  The pid+tid-unique name keeps racing writers of
        the same digest from clobbering each other's temp file; the ``.gz``
        suffix is preserved where present so the JSON writer compresses.
        """
        suffix = f".{os.getpid()}-{threading.get_ident()}.tmp"
        if target.name.endswith(".gz"):
            suffix += ".gz"
        tmp = target.with_name(target.name + suffix)
        TraceWriter.write_trace(
            trace, str(tmp), chunk_events=self.chunk_events, encoding=encoding
        )
        return tmp

    def put(self, trace: Trace) -> Trace:
        """Store and persist ``trace``, evicting covered segments on disk too.

        The segment write happens *outside* ``_io_lock`` (temp file, unique
        name); the lock guards only the index mutation and the atomic
        ``os.replace`` publish, so concurrent puts from different tenants
        overlap their serialization work.
        """
        super().put(trace)
        digest = trace.digest()
        encoding = self.encoding if self.encoding is not None else trace_encoding()
        entry = {
            "fingerprint": trace.fingerprint,
            "digest": digest,
            "mask": trace.mask,
            "workload": trace.workload,
            "events": len(trace.events),
            "file": self._segment_name(trace.fingerprint, digest, encoding),
        }
        target = self._segment_path(entry)
        with self._io_lock:
            known = any(
                row["digest"] == digest
                for row in self._index.get(trace.fingerprint, ())
            )
        tmp = None
        if not known:
            tmp = self._write_segment_tmp(trace, target, encoding)
        published = False
        with self._io_lock:
            rows = self._index.get(trace.fingerprint, [])
            for existing in [row for row in rows if trace.covers(row["mask"])]:
                if existing["digest"] != digest:
                    self._drop_entry_locked(existing)
            rows = self._index.setdefault(trace.fingerprint, [])
            if not any(row["digest"] == digest for row in rows):
                if tmp is None:
                    # Rare race: the pre-check saw our digest, but a covering
                    # concurrent put evicted it before we re-took the lock.
                    tmp = self._write_segment_tmp(trace, target, encoding)
                os.replace(tmp, target)
                published = True
                rows.append(entry)
                self.segments_written += 1
                self._dirty = True
            if self._dirty:
                # A re-put of a known digest changes nothing: skip the
                # full index rewrite (it is O(store size) JSON on disk).
                self._write_index_locked()
        if tmp is not None and not published:
            # Lost the publish race to an identical concurrent put.
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - defensive
                pass
        return trace

    def segment_ref(self, fingerprint: str, required_mask: int) -> Optional[dict]:
        """A ``(path, digest)`` reference to a covering on-disk segment.

        Pooled fan-out hands this to workers instead of a pickled trace:
        the worker opens the path itself (binary segments via mmap), checks
        the digest, and replays from the shared page cache — zero trace
        bytes cross the pipe.  Returns ``None`` when no covering segment
        file exists; the caller falls back to shipping the trace by value.
        """
        with self._io_lock:
            candidates = [
                entry
                for entry in self._index.get(fingerprint, ())
                if not (required_mask & ~entry["mask"])
            ]
            candidates.sort(key=lambda entry: bin(entry["mask"]).count("1"))
            for entry in candidates:
                path = self._segment_path(entry)
                if path.is_file():
                    return {
                        "path": str(path),
                        "digest": entry["digest"],
                        "fingerprint": fingerprint,
                        "mask": entry["mask"],
                    }
        return None

    def has(self, fingerprint: str, required_mask: int) -> bool:
        if super().has(fingerprint, required_mask):
            return True
        with self._io_lock:
            return any(
                not (required_mask & ~entry["mask"])
                for entry in self._index.get(fingerprint, ())
            )

    def _find_fallback(self, fingerprint: str, required_mask: int) -> Optional[Trace]:
        """Load the cheapest covering segment from disk; corruption = miss."""
        with self._io_lock:
            candidates = [
                entry
                for entry in self._index.get(fingerprint, ())
                if not (required_mask & ~entry["mask"])
            ]
            candidates.sort(key=lambda entry: bin(entry["mask"]).count("1"))
            for entry in candidates:
                try:
                    trace = Trace.load(str(self._segment_path(entry)))
                except (TraceError, OSError, EOFError, zlib.error, ValueError):
                    # gzip surfaces truncation as EOFError and stream damage
                    # as zlib.error — neither is an OSError.
                    self.corrupt_segments += 1
                    self._drop_entry_locked(entry)
                    continue
                if trace.fingerprint != fingerprint or not trace.covers(required_mask):
                    # The file does not hold what the index promised.
                    self.corrupt_segments += 1
                    self._drop_entry_locked(entry)
                    continue
                self.disk_hits += 1
                return trace
            if self._dirty:
                self._write_index_locked()
        return None

    def find_source(self, fingerprint: str, required_mask: int):
        """Like :meth:`find`, but disk segments are served as *streaming*
        sources: a chunked segment yields a
        :class:`~repro.jsvm.hooks.TraceFileSource` handle replayed
        chunk-at-a-time, never materializing the event list in this process.

        Memory-tier traces are served directly (they are already resident).
        Streamed handles are deliberately **not** memorized — memorizing one
        would defeat the bound the caller asked for.  Corruption policy
        matches :meth:`_find_fallback`: a bad segment is dropped and counted,
        never raised.
        """
        with self._lock:
            resident = [
                trace
                for trace in self._traces.get(fingerprint, ())
                if trace.covers(required_mask)
            ]
            if resident:
                self.hits += 1
                return min(resident, key=lambda trace: bin(trace.mask).count("1"))
        with self._io_lock:
            candidates = [
                entry
                for entry in self._index.get(fingerprint, ())
                if not (required_mask & ~entry["mask"])
            ]
            candidates.sort(key=lambda entry: bin(entry["mask"]).count("1"))
            for entry in candidates:
                try:
                    source = open_trace_source(str(self._segment_path(entry)))
                    if not isinstance(source, Trace):
                        # One bounded-memory scan up front, so a truncated
                        # segment is a miss *here* rather than a mid-replay
                        # TraceFormatError in the analysis stage.
                        source.verify()
                except (TraceError, OSError, EOFError, zlib.error, ValueError):
                    self.corrupt_segments += 1
                    self._drop_entry_locked(entry)
                    continue
                if source.fingerprint != fingerprint or not source.covers(required_mask):
                    self.corrupt_segments += 1
                    self._drop_entry_locked(entry)
                    continue
                self.disk_hits += 1
                if isinstance(source, Trace):
                    # Legacy single-document segments decode whole anyway;
                    # keep them resident exactly as ``find`` would.
                    self._remember(source)
                with self._lock:
                    self.hits += 1
                return source
            if self._dirty:
                self._write_index_locked()
        with self._lock:
            self.misses += 1
        return None

    def fingerprints(self) -> List[str]:
        known = set(super().fingerprints())
        with self._io_lock:
            known.update(key for key, rows in self._index.items() if rows)
        return sorted(known)

    def segment_count(self) -> int:
        with self._io_lock:
            return sum(len(rows) for rows in self._index.values())

    def clear(self) -> None:
        super().clear()
        with self._io_lock:
            for rows in list(self._index.values()):
                for entry in list(rows):
                    self._drop_entry_locked(entry)
            self._index.clear()
            self._write_index_locked()
