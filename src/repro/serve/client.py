"""Client for the serving daemon (stdlib ``urllib`` only) + load generator.

:class:`ServeClient` is what ``python -m repro submit`` and the serving
benchmark use; it speaks the :mod:`repro.serve.protocol` shapes, surfaces
daemon errors as :class:`ServeError` (with the wire code and status), and
can transparently honour ``Retry-After`` on 429 when asked to retry.

:func:`run_load` is the load generator: N concurrent clients issuing R
requests each against a live daemon, returning per-request latencies plus
p50/p99 and req/s — the numbers ``BENCH_serve_*.json`` carries.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Sequence

from .protocol import PROTOCOL_VERSION  # noqa: F401  (re-exported for callers)


class ServeError(Exception):
    """An error response (or transport failure) from the daemon."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        code: Optional[str] = None,
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after


def _parse_retry_after(raw: str) -> Optional[int]:
    """Seconds to wait per a ``Retry-After`` header, clamped to ``>= 0``.

    RFC 9110 §10.2.3 allows either delta-seconds or an HTTP-date; a negative
    delta or a date in the past means "retry now", never a negative sleep.
    Unparseable values are ignored (the caller falls back to its default).
    """
    try:
        return max(0, int(raw))
    except ValueError:
        pass
    import datetime
    import email.utils

    try:
        when = email.utils.parsedate_to_datetime(raw)
    except (TypeError, ValueError):
        return None
    if when is None:
        return None
    if when.tzinfo is None:
        when = when.replace(tzinfo=datetime.timezone.utc)
    now = datetime.datetime.now(datetime.timezone.utc)
    delta = (when - now).total_seconds()
    return max(0, int(delta + 0.999))  # round partial seconds up


def _decode_error(status: int, body: bytes, headers) -> ServeError:
    code = message = None
    try:
        payload = json.loads(body.decode("utf-8"))
        error = payload.get("error", {})
        code = error.get("code")
        message = error.get("message")
    except (ValueError, AttributeError, UnicodeDecodeError):
        pass
    retry_after: Optional[int] = None
    raw_retry = headers.get("Retry-After") if headers is not None else None
    if raw_retry is not None:
        retry_after = _parse_retry_after(raw_retry)
    return ServeError(
        message or f"server returned HTTP {status}",
        status=status,
        code=code,
        retry_after=retry_after,
    )


class ServeClient:
    """A thin, thread-safe HTTP client for one daemon base URL."""

    def __init__(self, base_url: str, timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------- transport
    def _request_raw(self, method: str, path: str, body: Optional[bytes] = None):
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body is not None else {},
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raise _decode_error(exc.code, exc.read(), exc.headers) from None
        except urllib.error.URLError as exc:
            raise ServeError(f"cannot reach {self.base_url}: {exc.reason}") from None

    def _request(self, method: str, path: str, payload: Any = None) -> bytes:
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        with self._request_raw(method, path, body) as response:
            return response.read()

    @staticmethod
    def _parse(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServeError(f"malformed response body: {exc}") from None

    # -------------------------------------------------------------- queries
    def health(self) -> Dict[str, Any]:
        return self._parse(self._request("GET", "/healthz"))

    def workloads(self) -> List[Dict[str, str]]:
        return self._parse(self._request("GET", "/v1/workloads"))["workloads"]

    def stats(self) -> Dict[str, Any]:
        return self._parse(self._request("GET", "/v1/stats"))

    # ------------------------------------------------------------ submissions
    @staticmethod
    def _submission(
        workload: Optional[str],
        modes: Sequence[str],
        tier: Optional[str],
        focus_line: Optional[int],
        script: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"modes": list(modes)}
        if (workload is None) == (script is None):
            raise ValueError("exactly one of workload/script is required")
        if workload is not None:
            payload["workload"] = workload
        if script is not None:
            payload["script"] = script
        if tier is not None:
            payload["tier"] = tier
        if focus_line is not None:
            payload["focus_line"] = focus_line
        return payload

    def analyze_raw(
        self,
        workload: Optional[str] = None,
        modes: Sequence[str] = ("lightweight",),
        tier: Optional[str] = None,
        focus_line: Optional[int] = None,
        script: Optional[Dict[str, Any]] = None,
        retries: int = 0,
    ) -> bytes:
        """One submission → the exact response body bytes (byte-identity tests).

        With ``retries > 0``, 429 responses are retried after the daemon's
        ``Retry-After`` hint, up to that many times.
        """
        payload = self._submission(workload, modes, tier, focus_line, script)
        attempts = 0
        while True:
            try:
                return self._request("POST", "/v1/analyze", payload)
            except ServeError as error:
                if error.status != 429 or attempts >= retries:
                    raise
                attempts += 1
                time.sleep(error.retry_after if error.retry_after is not None else 1)

    def analyze(self, **kwargs) -> Dict[str, Any]:
        """One submission → the parsed response envelope."""
        return self._parse(self.analyze_raw(**kwargs))

    def analyze_many(
        self,
        workloads: Sequence[str],
        modes: Sequence[str] = ("lightweight",),
        tier: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Batch submission → envelopes streamed (NDJSON) as they complete."""
        requests = [
            self._submission(name, modes, tier, None, None) for name in workloads
        ]
        body = json.dumps({"requests": requests}).encode("utf-8")
        with self._request_raw("POST", "/v1/analyze", body) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield self._parse(line)


# ---------------------------------------------------------------- load gen
def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation; 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def run_load(
    base_url: str,
    workloads: Sequence[str],
    modes: Sequence[str] = ("lightweight",),
    clients: int = 4,
    requests_per_client: int = 10,
    retries: int = 8,
) -> Dict[str, Any]:
    """Drive N concurrent clients round-robin over ``workloads``.

    Returns latencies (ms, per request, arrival order per client), p50/p99,
    req/s over the whole run, and any error strings (which the benchmark
    treats as failures).
    """
    latencies_ms: List[float] = []
    errors: List[str] = []
    lock = threading.Lock()

    def one_client(client_index: int) -> None:
        client = ServeClient(base_url)
        for request_index in range(requests_per_client):
            name = workloads[(client_index + request_index) % len(workloads)]
            started = time.perf_counter()
            try:
                client.analyze_raw(workload=name, modes=modes, retries=retries)
            except ServeError as error:
                with lock:
                    errors.append(f"{name}: {error}")
                continue
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            with lock:
                latencies_ms.append(elapsed_ms)

    threads = [
        threading.Thread(target=one_client, args=(index,), daemon=True)
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    completed = len(latencies_ms)
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "completed": completed,
        "errors": errors,
        "elapsed_seconds": elapsed,
        "req_per_sec": completed / elapsed if elapsed > 0 else 0.0,
        "latencies_ms": latencies_ms,
        "p50_ms": percentile(latencies_ms, 0.50),
        "p99_ms": percentile(latencies_ms, 0.99),
    }
