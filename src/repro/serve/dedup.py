"""Single-flight deduplication + bounded admission for the serving daemon.

``ThreadingHTTPServer`` gives every connection its own handler thread, so
with no layer in between a burst of N requests would run N concurrent
analyses — N identical bursts being the worst (and, for a cache-shaped
service, the most common) case.  The :class:`SingleFlightExecutor` puts two
controls between the handler threads and the shared
:class:`~repro.api.session.AnalysisSession`:

* **single-flight**: submissions carry a key (workload fingerprint × mode
  set × tier × focus); a submission whose key is already in flight — queued
  or executing — attaches to the existing job instead of enqueueing a new
  one, and every attached waiter receives the *same* response bytes;
* **admission**: fresh jobs enter a FIFO queue of bounded depth drained by a
  fixed worker pool; when the queue is full the submission is rejected with
  :class:`QueueFullError` (HTTP 429 + ``Retry-After``) instead of piling
  unbounded work onto the daemon.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, Hashable, List, Optional


class QueueFullError(RuntimeError):
    """The admission queue is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, depth: int, retry_after: int) -> None:
        super().__init__(
            f"admission queue is full ({depth} queued); retry in ~{retry_after}s"
        )
        self.depth = depth
        self.retry_after = retry_after


class Job:
    """One keyed unit of work; completed exactly once, awaited by many."""

    __slots__ = (
        "key",
        "fn",
        "done",
        "result",
        "error",
        "waiters",
        "submitted_at",
        "started_at",
        "finished_at",
    )

    def __init__(self, key: Hashable, fn: Callable[["Job"], object]) -> None:
        self.key = key
        self.fn = fn
        self.done = threading.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None
        self.waiters = 1
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def queued_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    def wait(self, timeout: Optional[float] = None) -> object:
        """Block until the job completes; re-raise its error in the waiter."""
        if not self.done.wait(timeout):
            raise TimeoutError(f"job {self.key!r} did not complete in {timeout}s")
        if self.error is not None:
            raise self.error
        return self.result


class SingleFlightExecutor:
    """A bounded FIFO worker pool with in-flight keyed deduplication."""

    def __init__(self, workers: int = 4, queue_depth: int = 64) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.worker_count = workers
        self.queue_depth = queue_depth
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(maxsize=queue_depth)
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, Job] = {}
        self._closed = False
        # Stats (read without the lock for /v1/stats; plain counters).
        self.accepted = 0
        self.coalesced = 0
        self.rejected = 0
        self.executed = 0
        self.failed = 0
        self._run_seconds_total = 0.0
        self._threads: List[threading.Thread] = [
            threading.Thread(target=self._worker, name=f"serve-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------ submission
    def submit(self, key: Hashable, fn: Callable[[Job], object]) -> Job:
        """Enqueue ``fn`` under ``key``, or attach to the in-flight job for it.

        ``fn`` receives the job itself (so the computation can embed queueing
        metadata in the shared response).  Raises :class:`QueueFullError`
        when the key is fresh and the admission queue is at capacity.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is shut down")
            job = self._inflight.get(key)
            if job is not None:
                job.waiters += 1
                self.coalesced += 1
                return job
            job = Job(key, fn)
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self.rejected += 1
                raise QueueFullError(
                    depth=self._queue.qsize(), retry_after=self.retry_after_estimate()
                ) from None
            self._inflight[key] = job
            self.accepted += 1
            return job

    def retry_after_estimate(self) -> int:
        """Seconds until a full queue plausibly has room (for ``Retry-After``)."""
        if self.executed:
            mean = self._run_seconds_total / self.executed
        else:
            mean = 1.0
        backlog = self._queue.qsize() + len(self._inflight)
        estimate = mean * max(1, backlog) / self.worker_count
        return max(1, min(60, int(estimate + 0.999)))

    @property
    def depth(self) -> int:
        """Jobs currently queued (excluding executing ones)."""
        return self._queue.qsize()

    @property
    def inflight(self) -> int:
        """Jobs queued or executing."""
        with self._lock:
            return len(self._inflight)

    # -------------------------------------------------------------- workers
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.started_at = time.monotonic()
            try:
                job.result = job.fn(job)
            except BaseException as exc:  # delivered to every waiter
                job.error = exc
                self.failed += 1
            finally:
                job.finished_at = time.monotonic()
                with self._lock:
                    self._inflight.pop(job.key, None)
                    self.executed += 1
                    self._run_seconds_total += job.finished_at - job.started_at
                job.done.set()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work, then stop the workers (draining the queue)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=30)

    def stats(self) -> Dict[str, object]:
        return {
            "workers": self.worker_count,
            "queue_capacity": self.queue_depth,
            "queue_depth": self.depth,
            "inflight": self.inflight,
            "accepted": self.accepted,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "executed": self.executed,
            "failed": self.failed,
        }
