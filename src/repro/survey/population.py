"""Synthetic respondent population calibrated to the paper's marginals.

The paper collected 174 distinct responses but never published the raw
per-respondent data, only aggregate distributions (Figures 1-4 and scattered
percentages in the text).  To exercise the full questionnaire → coding →
aggregation pipeline we synthesize a population whose *marginal*
distributions match the published aggregates; within those quotas the
assignment of answers to respondents is randomized by a seeded RNG.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from .coding import (
    CATEGORY_AR_RECOGNITION,
    CATEGORY_AUDIO_VIDEO,
    CATEGORY_DATA,
    CATEGORY_DESKTOP_LIKE,
    CATEGORY_GAMES,
    CATEGORY_P2P_SOCIAL,
    CATEGORY_VISUALIZATION,
)
from .model import Response, ResponseSet
from .questionnaire import (
    BOTTLENECK_LEVELS,
    Q_ARRAY_OPERATORS,
    Q_BOTTLENECKS,
    Q_FUTURE_TRENDS,
    Q_GLOBALS,
    Q_POLYMORPHISM,
    Q_STYLE,
    Q_STYLE_WHY,
    build_questionnaire,
)

#: Total number of survey respondents (Section 2).
TOTAL_RESPONDENTS = 174

#: Figure 1 calibration — respondents per category, plus answers that could
#: not be categorized and respondents who skipped the question entirely.
TREND_CATEGORY_COUNTS: Dict[str, int] = {
    CATEGORY_GAMES: 26,
    CATEGORY_P2P_SOCIAL: 17,
    CATEGORY_DESKTOP_LIKE: 15,
    CATEGORY_DATA: 7,
    CATEGORY_AUDIO_VIDEO: 8,
    CATEGORY_VISUALIZATION: 7,
    CATEGORY_AR_RECOGNITION: 5,
}
TREND_UNCATEGORIZED = 44
TREND_SKIPPED = TOTAL_RESPONDENTS - sum(TREND_CATEGORY_COUNTS.values()) - TREND_UNCATEGORIZED

#: Template free-text answers per category (keyword-bearing, as real answers are).
_TREND_PHRASES: Dict[str, List[str]] = {
    CATEGORY_GAMES: [
        "Full 3D games using WebGL, with real physics",
        "Commercial quality games in the browser",
        "Multiplayer gaming with a proper engine",
    ],
    CATEGORY_P2P_SOCIAL: [
        "More social applications and peer to peer collaboration",
        "Realtime chat and collaborative editing with WebRTC",
    ],
    CATEGORY_DESKTOP_LIKE: [
        "Everything that today runs on the desktop",
        "Office suites and IDE-like desktop applications in the browser",
    ],
    CATEGORY_DATA: [
        "Data analysis and productivity tools, spreadsheets",
        "In-browser analytics and data processing",
    ],
    CATEGORY_AUDIO_VIDEO: [
        "Audio and video editing, music applications",
        "Photo and image editing, video streaming tools",
    ],
    CATEGORY_VISUALIZATION: [
        "Interactive visualization dashboards and charts",
        "Rich maps and graphs visualization",
    ],
    CATEGORY_AR_RECOGNITION: [
        "Augmented reality, voice and gesture recognition",
        "Speech recognition and camera based interaction",
    ],
}
_TREND_UNCATEGORIZED_PHRASES = [
    "More of the same, just faster",
    "Hard to tell, the web changes every year",
    "Better frameworks",
    "Everything will be responsive",
]

#: Figure 2 calibration — per component: (not an issue, so-so, is a bottleneck).
BOTTLENECK_COUNTS: Dict[str, Sequence[int]] = {
    "resource loading": (13, 64, 85),
    "DOM manipulation": (23, 65, 83),
    "Canvas (read/write images)": (37, 72, 46),
    "WebGL interaction": (37, 72, 41),
    "number crunching": (65, 65, 35),
    "styling (CSS)": (62, 77, 25),
}

#: Figure 3 calibration — functional (1) ... imperative (5), 166 answers.
STYLE_COUNTS: Sequence[int] = (52, 50, 41, 15, 8)

#: Figure 4 calibration — monomorphic (1) ... polymorphic (5), 168 answers.
POLYMORPHISM_COUNTS: Sequence[int] = (98, 47, 12, 9, 2)

#: Section 2.3 — 74% of those who answered prefer the built-in operators.
ARRAY_OPERATOR_PREFERENCE = {"built-in operators": 118, "explicit loops": 42}

#: Section 2.4 — 105 answers to the global-variables question, 33 of which
#: mention namespacing/module emulation.
GLOBALS_ANSWERS = 105
GLOBALS_NAMESPACE_ANSWERS = 33

_STYLE_WHY_FUNCTIONAL = [
    "Functional code is more concise and readable",
    "Easier to understand and to test",
]
_STYLE_WHY_IMPERATIVE = [
    "Imperative code performs better",
    "That is the style I learned first",
]
_GLOBALS_NAMESPACE = [
    "Emulating a namespace or module system",
    "A single global object acting as a module namespace",
]
_GLOBALS_OTHER = [
    "Sharing values between scripts on the same page",
    "Passing configuration from the server to the client on page load",
    "A global singleton holding important data structures",
]


def _quota_list(counts: Dict[str, int] | Sequence, rng: random.Random) -> List:
    """Expand a {value: count} mapping (or per-index counts) into a shuffled list."""
    expanded: List = []
    if isinstance(counts, dict):
        for value, count in counts.items():
            expanded.extend([value] * count)
    else:
        for index, count in enumerate(counts):
            expanded.extend([index + 1] * count)
    rng.shuffle(expanded)
    return expanded


def generate_population(seed: int = 2015, size: int = TOTAL_RESPONDENTS) -> ResponseSet:
    """Generate the synthetic respondent population.

    ``size`` other than 174 scales every quota proportionally (useful for
    property tests); the default reproduces the paper's population.
    """
    rng = random.Random(seed)
    questionnaire = build_questionnaire()
    responses = [Response(respondent_id=index) for index in range(size)]
    scale = size / TOTAL_RESPONDENTS

    def scaled(count: int) -> int:
        return max(0, round(count * scale))

    # -- Figure 1: future trends ---------------------------------------------
    trend_answers: List[Optional[str]] = []
    for category, count in TREND_CATEGORY_COUNTS.items():
        for _ in range(scaled(count)):
            trend_answers.append(rng.choice(_TREND_PHRASES[category]))
    for _ in range(scaled(TREND_UNCATEGORIZED)):
        trend_answers.append(rng.choice(_TREND_UNCATEGORIZED_PHRASES))
    while len(trend_answers) < size:
        trend_answers.append(None)  # skipped the question
    trend_answers = trend_answers[:size]
    rng.shuffle(trend_answers)
    for response, answer in zip(responses, trend_answers):
        if answer is not None:
            response.answers[Q_FUTURE_TRENDS] = answer

    # -- Figure 2: bottleneck ratings -----------------------------------------
    for component, counts in BOTTLENECK_COUNTS.items():
        ratings: List[Optional[str]] = []
        for level, count in zip(BOTTLENECK_LEVELS, counts):
            ratings.extend([level] * scaled(count))
        while len(ratings) < size:
            ratings.append(None)
        ratings = ratings[:size]
        rng.shuffle(ratings)
        for response, rating in zip(responses, ratings):
            if rating is None:
                continue
            component_ratings = response.answers.setdefault(Q_BOTTLENECKS, {})
            component_ratings[component] = rating

    # -- Figure 3: style scale --------------------------------------------------
    style_values = _quota_list([scaled(c) for c in STYLE_COUNTS], rng)
    while len(style_values) < size:
        style_values.append(None)
    style_values = style_values[:size]
    rng.shuffle(style_values)
    for response, value in zip(responses, style_values):
        if value is None:
            continue
        response.answers[Q_STYLE] = value
        if rng.random() < 0.52:  # 52% answered the "Why" follow-up
            pool = _STYLE_WHY_FUNCTIONAL if value <= 2 else _STYLE_WHY_IMPERATIVE
            response.answers[Q_STYLE_WHY] = rng.choice(pool)

    # -- Figure 4: polymorphism scale -------------------------------------------
    poly_values = _quota_list([scaled(c) for c in POLYMORPHISM_COUNTS], rng)
    while len(poly_values) < size:
        poly_values.append(None)
    poly_values = poly_values[:size]
    rng.shuffle(poly_values)
    for response, value in zip(responses, poly_values):
        if value is not None:
            response.answers[Q_POLYMORPHISM] = value

    # -- array operators preference ----------------------------------------------
    operator_answers: List[Optional[str]] = []
    for choice, count in ARRAY_OPERATOR_PREFERENCE.items():
        operator_answers.extend([choice] * scaled(count))
    while len(operator_answers) < size:
        operator_answers.append(None)
    operator_answers = operator_answers[:size]
    rng.shuffle(operator_answers)
    for response, choice in zip(responses, operator_answers):
        if choice is not None:
            response.answers[Q_ARRAY_OPERATORS] = choice

    # -- global variables scenario -------------------------------------------------
    globals_answers: List[Optional[str]] = []
    for _ in range(scaled(GLOBALS_NAMESPACE_ANSWERS)):
        globals_answers.append(rng.choice(_GLOBALS_NAMESPACE))
    for _ in range(scaled(GLOBALS_ANSWERS - GLOBALS_NAMESPACE_ANSWERS)):
        globals_answers.append(rng.choice(_GLOBALS_OTHER))
    while len(globals_answers) < size:
        globals_answers.append(None)
    globals_answers = globals_answers[:size]
    rng.shuffle(globals_answers)
    for response, answer in zip(responses, globals_answers):
        if answer is not None:
            response.answers[Q_GLOBALS] = answer

    # -- filler questions (demographics, tools, parallelism) ------------------------
    for response in responses:
        for question in questionnaire.questions:
            if question.question_id in response.answers:
                continue
            if question.kind.name == "SINGLE_CHOICE" and question.options and rng.random() < 0.9:
                response.answers[question.question_id] = rng.choice(list(question.options))
            elif question.kind.name == "SCALE" and rng.random() < 0.85:
                response.answers[question.question_id] = rng.randint(1, question.scale_points)

    return ResponseSet(questionnaire=questionnaire, responses=responses)
