"""Qualitative thematic coding of open-ended answers (Section 2.1).

The paper: "We hand-coded their answers using qualitative thematic coding.
We developed a set of codes that we validated by achieving an inter-rater
agreement of over 80% for 20% of the data.  Two coders [...] developed the
categories which were not known a-priori.  For measuring the agreement we
used the Jaccard coefficient."

Here the two human coders are replaced by two keyword-based raters with
slightly different vocabularies; the pipeline (code book → two raters → 20%
agreement sample → Jaccard → final categorization) is the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

# The Figure 1 categories, in the paper's order.
CATEGORY_GAMES = "Games"
CATEGORY_P2P_SOCIAL = "Peer-to-Peer and Social"
CATEGORY_DESKTOP_LIKE = "Desktop like"
CATEGORY_DATA = "Data processing, analysis; productivity"
CATEGORY_AUDIO_VIDEO = "Audio and Video"
CATEGORY_VISUALIZATION = "Visualization"
CATEGORY_AR_RECOGNITION = "Augmented reality; voice, gesture, user recognition"

FIGURE1_CATEGORIES = (
    CATEGORY_GAMES,
    CATEGORY_P2P_SOCIAL,
    CATEGORY_DESKTOP_LIKE,
    CATEGORY_DATA,
    CATEGORY_AUDIO_VIDEO,
    CATEGORY_VISUALIZATION,
    CATEGORY_AR_RECOGNITION,
)


@dataclass
class CodeBook:
    """Maps category names to the keyword vocabulary that indicates them."""

    keywords: Dict[str, Set[str]] = field(default_factory=dict)

    def categories(self) -> List[str]:
        return list(self.keywords.keys())

    def merged_with(self, extra: Dict[str, Set[str]]) -> "CodeBook":
        merged = {category: set(words) for category, words in self.keywords.items()}
        for category, words in extra.items():
            merged.setdefault(category, set()).update(words)
        return CodeBook(keywords=merged)


def default_codebook() -> CodeBook:
    """The code book both raters start from."""
    return CodeBook(
        keywords={
            CATEGORY_GAMES: {"game", "games", "gaming", "3d", "webgl", "physics", "engine"},
            CATEGORY_P2P_SOCIAL: {"social", "peer", "p2p", "chat", "collaboration", "collaborative", "webrtc"},
            CATEGORY_DESKTOP_LIKE: {"desktop", "office", "native-like", "ide", "editors", "applications like desktop"},
            CATEGORY_DATA: {"data", "analysis", "analytics", "productivity", "spreadsheets", "crunching", "processing"},
            CATEGORY_AUDIO_VIDEO: {"audio", "video", "music", "streaming", "image", "photo"},
            CATEGORY_VISUALIZATION: {"visualization", "visualisation", "charts", "dashboards", "maps", "graphs"},
            CATEGORY_AR_RECOGNITION: {"augmented", "reality", "voice", "gesture", "recognition", "speech", "camera"},
        }
    )


@dataclass
class Rater:
    """A coder: assigns a set of category codes to a free-text answer."""

    name: str
    codebook: CodeBook

    def code(self, answer: str) -> Set[str]:
        text = answer.lower()
        tokens = set("".join(ch if ch.isalnum() else " " for ch in text).split())
        assigned: Set[str] = set()
        for category, keywords in self.codebook.keywords.items():
            for keyword in keywords:
                # Single-word keywords must match whole words ("ide" must not
                # match "video"); multi-word keywords match as phrases.
                if (" " in keyword and keyword in text) or keyword in tokens:
                    assigned.add(category)
                    break
        return assigned


def make_raters() -> Tuple[Rater, Rater]:
    """The two coders.  The second has a slightly richer vocabulary, which is
    what keeps the inter-rater agreement below 100% but above the paper's 80%
    threshold."""
    base = default_codebook()
    second = base.merged_with(
        {
            CATEGORY_GAMES: {"multiplayer", "unity"},
            CATEGORY_DATA: {"big data", "machine learning"},
            CATEGORY_AR_RECOGNITION: {"kinect", "face"},
            CATEGORY_AUDIO_VIDEO: {"editing"},
        }
    )
    return Rater("coder-1", base), Rater("coder-2", second)


def jaccard(a: Set[str], b: Set[str]) -> float:
    """Jaccard coefficient of two code sets (1.0 when both are empty)."""
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union)


@dataclass
class CodingResult:
    """Outcome of coding one batch of answers."""

    assignments: List[Set[str]]
    agreement: float
    agreement_sample_size: int

    def category_counts(self, categories: Sequence[str]) -> Dict[str, int]:
        counts = {category: 0 for category in categories}
        for codes in self.assignments:
            for category in codes:
                if category in counts:
                    counts[category] += 1
        return counts

    def uncategorized(self) -> int:
        return sum(1 for codes in self.assignments if not codes)


def code_answers(
    answers: Iterable[str],
    raters: Optional[Tuple[Rater, Rater]] = None,
    agreement_fraction: float = 0.2,
) -> CodingResult:
    """Run the paper's coding process over a batch of free-text answers.

    Both raters code an ``agreement_fraction`` sample to measure inter-rater
    agreement (mean Jaccard coefficient); the first rater's codes are then
    used for the full data set (the paper reconciled disagreements by
    discussion, which a deterministic rater does not need).
    """
    raters = raters or make_raters()
    first, second = raters
    answer_list = list(answers)
    assignments = [first.code(answer) for answer in answer_list]

    sample_size = max(1, int(len(answer_list) * agreement_fraction)) if answer_list else 0
    agreements = []
    for answer in answer_list[:sample_size]:
        agreements.append(jaccard(first.code(answer), second.code(answer)))
    agreement = sum(agreements) / len(agreements) if agreements else 1.0
    return CodingResult(assignments=assignments, agreement=agreement, agreement_sample_size=sample_size)
