"""Aggregation helpers turning a ResponseSet into per-question distributions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .model import QuestionKind, ResponseSet


@dataclass
class Distribution:
    """A categorical distribution of answers to one question."""

    question_id: str
    counts: Dict[str, int]
    total: int

    def percentage(self, key: str) -> float:
        if self.total == 0:
            return 0.0
        return 100.0 * self.counts.get(key, 0) / self.total

    def as_rows(self) -> List[dict]:
        return [
            {"answer": key, "count": count, "percent": round(self.percentage(key), 1)}
            for key, count in self.counts.items()
        ]


def scale_distribution(responses: ResponseSet, question_id: str) -> Distribution:
    """Distribution of a 1..N scale question, keyed by the scale value."""
    question = responses.questionnaire.question(question_id)
    if question.kind is not QuestionKind.SCALE:
        raise ValueError(f"{question_id!r} is not a scale question")
    counts = {str(value): 0 for value in range(1, question.scale_points + 1)}
    answers = responses.answers_to(question_id)
    for answer in answers:
        key = str(int(answer))
        if key in counts:
            counts[key] += 1
    return Distribution(question_id=question_id, counts=counts, total=len(answers))


def choice_distribution(responses: ResponseSet, question_id: str) -> Distribution:
    """Distribution of a single-choice question, keyed by the option label."""
    question = responses.questionnaire.question(question_id)
    counts = {option: 0 for option in question.options}
    answers = responses.answers_to(question_id)
    for answer in answers:
        counts[answer] = counts.get(answer, 0) + 1
    return Distribution(question_id=question_id, counts=counts, total=len(answers))


def component_rating_distribution(
    responses: ResponseSet, question_id: str, levels: Sequence[str]
) -> Dict[str, Distribution]:
    """Per-component distributions of a component-rating question."""
    question = responses.questionnaire.question(question_id)
    per_component: Dict[str, Dict[str, int]] = {
        component: {level: 0 for level in levels} for component in question.options
    }
    totals: Dict[str, int] = {component: 0 for component in question.options}
    for answer in responses.answers_to(question_id):
        for component, rating in answer.items():
            if component in per_component and rating in per_component[component]:
                per_component[component][rating] += 1
                totals[component] += 1
    return {
        component: Distribution(question_id=f"{question_id}:{component}", counts=counts, total=totals[component])
        for component, counts in per_component.items()
    }
