"""Regeneration of the paper's Figures 1-4 from a response set.

Each ``figureN_data`` function returns the data series behind the figure
(category/level → count and percentage) plus the values the paper reports, so
tests and the benchmark harness can compare the reproduced shape against the
published one.  ``render_*`` functions produce ASCII bar charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .aggregate import component_rating_distribution, scale_distribution
from .coding import FIGURE1_CATEGORIES, CodingResult, code_answers
from .model import ResponseSet
from .questionnaire import (
    BOTTLENECK_COMPONENTS,
    BOTTLENECK_LEVELS,
    Q_BOTTLENECKS,
    Q_FUTURE_TRENDS,
    Q_POLYMORPHISM,
    Q_STYLE,
)

#: Percentages reported in the paper (used for shape comparison, not fitting).
PAPER_FIGURE1_PERCENT = {
    "Games": 31.0,
    "Peer-to-Peer and Social": 20.0,
    "Desktop like": 18.0,
    "Data processing, analysis; productivity": 8.0,
    "Audio and Video": 9.0,
    "Visualization": 8.0,
    "Augmented reality; voice, gesture, user recognition": 6.0,
}

PAPER_FIGURE2_BOTTLENECK_PERCENT = {
    "resource loading": 52.0,
    "DOM manipulation": 49.0,
    "Canvas (read/write images)": 30.0,
    "WebGL interaction": 27.0,
    "number crunching": 21.0,
    "styling (CSS)": 15.0,
}

PAPER_FIGURE3_PERCENT = {1: 31.3, 2: 30.1, 3: 24.7, 4: 9.0, 5: 4.8}
PAPER_FIGURE4_PERCENT = {1: 58.0, 2: 29.0, 3: 7.0, 4: 5.0, 5: 1.0}


@dataclass
class FigureSeries:
    """One data series (label → count/percent) behind a figure."""

    figure: str
    labels: List[str]
    counts: List[int]
    percents: List[float]
    paper_percents: List[Optional[float]] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    def as_rows(self) -> List[dict]:
        rows = []
        for index, label in enumerate(self.labels):
            row = {
                "label": label,
                "count": self.counts[index],
                "percent": round(self.percents[index], 1),
            }
            if index < len(self.paper_percents) and self.paper_percents[index] is not None:
                row["paper percent"] = self.paper_percents[index]
            rows.append(row)
        return rows

    def percent_by_label(self) -> Dict[str, float]:
        return dict(zip(self.labels, self.percents))

    def rank_order(self) -> List[str]:
        return [label for _, label in sorted(zip(self.percents, self.labels), reverse=True)]


def figure1_data(responses: ResponseSet, coding: Optional[CodingResult] = None) -> FigureSeries:
    """Figure 1: future web-application categories from thematic coding."""
    answers = [a for a in responses.answers_to(Q_FUTURE_TRENDS) if isinstance(a, str)]
    result = coding if coding is not None else code_answers(answers)
    counts = result.category_counts(FIGURE1_CATEGORIES)
    categorized_total = sum(counts.values())
    labels = list(FIGURE1_CATEGORIES)
    count_list = [counts[label] for label in labels]
    percents = [100.0 * c / categorized_total if categorized_total else 0.0 for c in count_list]
    return FigureSeries(
        figure="Figure 1",
        labels=labels,
        counts=count_list,
        percents=percents,
        paper_percents=[PAPER_FIGURE1_PERCENT[label] for label in labels],
        extra={
            "answers": len(answers),
            "uncategorized": result.uncategorized(),
            "inter_rater_agreement": result.agreement,
        },
    )


def figure2_data(responses: ResponseSet) -> FigureSeries:
    """Figure 2: % of respondents rating each component "is a bottleneck"."""
    distributions = component_rating_distribution(responses, Q_BOTTLENECKS, BOTTLENECK_LEVELS)
    labels = list(BOTTLENECK_COMPONENTS)
    counts = [distributions[label].counts["is a bottleneck"] for label in labels]
    percents = [distributions[label].percentage("is a bottleneck") for label in labels]
    return FigureSeries(
        figure="Figure 2",
        labels=labels,
        counts=counts,
        percents=percents,
        paper_percents=[PAPER_FIGURE2_BOTTLENECK_PERCENT[label] for label in labels],
        extra={"levels": {label: distributions[label].counts for label in labels}},
    )


def _scale_figure(responses: ResponseSet, question_id: str, figure: str, paper: Dict[int, float]) -> FigureSeries:
    distribution = scale_distribution(responses, question_id)
    labels = [str(point) for point in range(1, 6)]
    counts = [distribution.counts[label] for label in labels]
    total = distribution.total or 1
    percents = [100.0 * count / total for count in counts]
    return FigureSeries(
        figure=figure,
        labels=labels,
        counts=counts,
        percents=percents,
        paper_percents=[paper[int(label)] for label in labels],
        extra={"answers": distribution.total},
    )


def figure3_data(responses: ResponseSet) -> FigureSeries:
    """Figure 3: functional (1) vs imperative (5) style preference."""
    return _scale_figure(responses, Q_STYLE, "Figure 3", PAPER_FIGURE3_PERCENT)


def figure4_data(responses: ResponseSet) -> FigureSeries:
    """Figure 4: monomorphic (1) vs polymorphic (5) variable usage."""
    return _scale_figure(responses, Q_POLYMORPHISM, "Figure 4", PAPER_FIGURE4_PERCENT)


def render_figure(series: FigureSeries, width: int = 40) -> str:
    """ASCII bar chart of a figure series."""
    lines = [series.figure]
    label_width = max(len(label) for label in series.labels) if series.labels else 0
    max_percent = max(series.percents) if series.percents else 1.0
    for label, count, percent in zip(series.labels, series.counts, series.percents):
        bar_length = int(round(width * percent / max_percent)) if max_percent else 0
        lines.append(f"{label:<{label_width}} | {'#' * bar_length} {percent:5.1f}%  (n={count})")
    return "\n".join(lines)


def all_figures(responses: ResponseSet) -> Dict[str, FigureSeries]:
    """All four survey figures for one response set."""
    return {
        "figure1": figure1_data(responses),
        "figure2": figure2_data(responses),
        "figure3": figure3_data(responses),
        "figure4": figure4_data(responses),
    }
