"""The paper's 20-question survey instrument.

Only a handful of questions feed the published figures; the remaining ones
(demographics, tools, open-ended follow-ups) are included so the instrument
has the same shape and so the population generator produces a realistic
response set.
"""

from __future__ import annotations

from .model import Question, QuestionKind, Questionnaire

# Question ids used throughout the package.
Q_FUTURE_TRENDS = "future-trends"
Q_BOTTLENECKS = "bottlenecks"
Q_STYLE = "functional-vs-imperative"
Q_STYLE_WHY = "functional-vs-imperative-why"
Q_POLYMORPHISM = "monomorphic-vs-polymorphic"
Q_ARRAY_OPERATORS = "array-operators-vs-loops"
Q_ARRAY_OPERATORS_WHY = "array-operators-why"
Q_GLOBALS = "global-variables-scenario"

#: The six components rated in Figure 2, in the paper's order.
BOTTLENECK_COMPONENTS = (
    "resource loading",
    "DOM manipulation",
    "Canvas (read/write images)",
    "WebGL interaction",
    "number crunching",
    "styling (CSS)",
)

#: The three-point rating used in Figure 2.
BOTTLENECK_LEVELS = ("not an issue", "so, so...", "is a bottleneck")


def build_questionnaire() -> Questionnaire:
    """Build the 20-question instrument described in Section 2."""
    questions = [
        # -- demographics / tools ------------------------------------------------
        Question("years-experience", "How many years have you been developing for the web?",
                 QuestionKind.SINGLE_CHOICE, "demographics",
                 options=("<1", "1-3", "3-5", "5-10", ">10")),
        Question("role", "What best describes your current role?",
                 QuestionKind.SINGLE_CHOICE, "demographics",
                 options=("front-end developer", "full-stack developer", "back-end developer",
                          "designer", "student", "other")),
        Question("primary-libraries", "Which JavaScript libraries or frameworks do you use most?",
                 QuestionKind.FREE_TEXT, "tools"),
        Question("ide", "Which editor or IDE do you mainly use?",
                 QuestionKind.SINGLE_CHOICE, "tools",
                 options=("Sublime Text", "Vim", "Emacs", "WebStorm", "Visual Studio", "Eclipse", "other")),
        Question("compile-to-js", "Do you use compile-to-JavaScript languages (CoffeeScript, TypeScript, Dart...)?",
                 QuestionKind.SINGLE_CHOICE, "tools", options=("never", "sometimes", "often")),
        # -- trends ---------------------------------------------------------------
        Question(Q_FUTURE_TRENDS,
                 "In your opinion, what new kinds of applications will trend on the web over the next 5 years?",
                 QuestionKind.FREE_TEXT, "trends"),
        Question("native-vs-web", "Will web applications replace native desktop applications?",
                 QuestionKind.SCALE, "trends", scale_low="never", scale_high="completely"),
        # -- performance ----------------------------------------------------------
        Question(Q_BOTTLENECKS,
                 "For each of the following components, tell us whether it is a performance "
                 "bottleneck in the web applications you write.",
                 QuestionKind.COMPONENT_RATING, "performance", options=BOTTLENECK_COMPONENTS),
        Question("bottlenecks-other", "Any other performance bottleneck we missed?",
                 QuestionKind.FREE_TEXT, "performance"),
        Question("perf-tools", "Which tools do you use to diagnose performance problems?",
                 QuestionKind.FREE_TEXT, "performance"),
        # -- programming style ----------------------------------------------------
        Question(Q_STYLE, "Rate your preferred programming style.",
                 QuestionKind.SCALE, "style",
                 scale_low="strongly functional", scale_high="strongly imperative"),
        Question(Q_STYLE_WHY, "Why?", QuestionKind.FREE_TEXT, "style"),
        Question(Q_ARRAY_OPERATORS,
                 "Do you prefer the built-in Array operators (map, forEach, every...) or explicit loops?",
                 QuestionKind.SINGLE_CHOICE, "style",
                 options=("built-in operators", "explicit loops")),
        Question(Q_ARRAY_OPERATORS_WHY, "Why?", QuestionKind.FREE_TEXT, "style"),
        Question(Q_POLYMORPHISM, "Rate the variables in the programs you write.",
                 QuestionKind.SCALE, "style",
                 scale_low="purely monomorphic", scale_high="extensively polymorphic"),
        Question(Q_GLOBALS, "What would be a scenario where using global variables helps?",
                 QuestionKind.FREE_TEXT, "style"),
        Question("closures", "How often do you use closures?",
                 QuestionKind.SINGLE_CHOICE, "style", options=("rarely", "sometimes", "all the time")),
        Question("eval-usage", "How often do you use eval or Function constructors?",
                 QuestionKind.SINGLE_CHOICE, "style", options=("never", "rarely", "sometimes", "often")),
        # -- parallelism ----------------------------------------------------------
        Question("web-workers", "Have you used Web Workers?",
                 QuestionKind.SINGLE_CHOICE, "parallelism",
                 options=("never heard of them", "heard of them, never used", "experimented", "use them in production")),
        Question("parallel-apis", "Would you use a data-parallel JavaScript API (map/reduce style) if it were available?",
                 QuestionKind.SINGLE_CHOICE, "parallelism",
                 options=("yes", "maybe", "no")),
    ]
    questionnaire = Questionnaire(title="JavaScript in practice", questions=questions)
    assert len(questionnaire) == 20, "the paper's instrument has 20 questions"
    return questionnaire
