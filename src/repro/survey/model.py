"""Data model for the developer survey (Section 2 of the paper).

The survey instrument had 20 questions in four categories — trends in web
applications, programming style, preferred tools and frameworks, and
perceived performance bottlenecks — mixing multiple choice, rating scales and
open-ended follow-ups.  The model below captures exactly the structure needed
to regenerate Figures 1-4 plus the open-ended questions the paper discusses
qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Sequence


class QuestionKind(Enum):
    FREE_TEXT = "free text"
    SINGLE_CHOICE = "single choice"
    SCALE = "scale"  # 1..5 rating
    COMPONENT_RATING = "component rating"  # rate each component on a small scale


@dataclass(frozen=True)
class Question:
    """One survey question."""

    question_id: str
    text: str
    kind: QuestionKind
    category: str
    #: For SINGLE_CHOICE: the options; for COMPONENT_RATING: the components.
    options: Sequence[str] = ()
    #: For SCALE questions: the labels of the scale endpoints.
    scale_low: str = ""
    scale_high: str = ""
    scale_points: int = 5


@dataclass
class Questionnaire:
    """An ordered set of questions."""

    title: str
    questions: List[Question] = field(default_factory=list)

    def question(self, question_id: str) -> Question:
        for question in self.questions:
            if question.question_id == question_id:
                return question
        raise KeyError(f"no question with id {question_id!r}")

    def ids(self) -> List[str]:
        return [question.question_id for question in self.questions]

    def by_category(self, category: str) -> List[Question]:
        return [question for question in self.questions if question.category == category]

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self.questions)


@dataclass
class Response:
    """One respondent's answers, keyed by question id.

    Answer types by question kind:

    * FREE_TEXT → ``str``
    * SINGLE_CHOICE → ``str`` (one of the options)
    * SCALE → ``int`` (1..scale_points)
    * COMPONENT_RATING → ``Dict[str, str]`` (component → rating label)

    A missing key means the respondent skipped the question (the paper's
    per-question response counts differ from the 174 total).
    """

    respondent_id: int
    answers: Dict[str, object] = field(default_factory=dict)

    def answer(self, question_id: str, default=None):
        return self.answers.get(question_id, default)

    def answered(self, question_id: str) -> bool:
        return question_id in self.answers


@dataclass
class ResponseSet:
    """All collected responses for one questionnaire."""

    questionnaire: Questionnaire
    responses: List[Response] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.responses)

    def answers_to(self, question_id: str) -> List[object]:
        return [r.answers[question_id] for r in self.responses if question_id in r.answers]

    def response_count(self, question_id: str) -> int:
        return sum(1 for r in self.responses if question_id in r.answers)
