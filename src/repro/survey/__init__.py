"""Developer survey subsystem (Section 2, Figures 1-4)."""

from .aggregate import Distribution, choice_distribution, component_rating_distribution, scale_distribution
from .coding import (
    FIGURE1_CATEGORIES,
    CodeBook,
    CodingResult,
    Rater,
    code_answers,
    default_codebook,
    jaccard,
    make_raters,
)
from .figures import (
    FigureSeries,
    all_figures,
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    render_figure,
)
from .model import Question, QuestionKind, Questionnaire, Response, ResponseSet
from .population import TOTAL_RESPONDENTS, generate_population
from .questionnaire import (
    BOTTLENECK_COMPONENTS,
    BOTTLENECK_LEVELS,
    Q_ARRAY_OPERATORS,
    Q_BOTTLENECKS,
    Q_FUTURE_TRENDS,
    Q_GLOBALS,
    Q_POLYMORPHISM,
    Q_STYLE,
    build_questionnaire,
)

__all__ = [
    "Distribution",
    "choice_distribution",
    "component_rating_distribution",
    "scale_distribution",
    "FIGURE1_CATEGORIES",
    "CodeBook",
    "CodingResult",
    "Rater",
    "code_answers",
    "default_codebook",
    "jaccard",
    "make_raters",
    "FigureSeries",
    "all_figures",
    "figure1_data",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "render_figure",
    "Question",
    "QuestionKind",
    "Questionnaire",
    "Response",
    "ResponseSet",
    "TOTAL_RESPONDENTS",
    "generate_population",
    "BOTTLENECK_COMPONENTS",
    "BOTTLENECK_LEVELS",
    "Q_ARRAY_OPERATORS",
    "Q_BOTTLENECKS",
    "Q_FUTURE_TRENDS",
    "Q_GLOBALS",
    "Q_POLYMORPHISM",
    "Q_STYLE",
    "build_questionnaire",
]
