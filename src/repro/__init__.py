"""Reproduction of "Are web applications ready for parallelism?" (PPoPP 2015).

The package is organised as a stack of substrates plus the paper's primary
contribution:

* :mod:`repro.jsvm` — a mini-JavaScript engine (lexer, parser, interpreter).
* :mod:`repro.browser` — DOM, Canvas, event loop, virtual clock and a
  Gecko-style sampling profiler.
* :mod:`repro.ceres` — JS-CERES: staged profiling and runtime dependence
  analysis (the paper's tool).
* :mod:`repro.analysis` — latent-parallelism analysis producing the paper's
  Table 2 and Table 3.
* :mod:`repro.parallel` — machine model used to validate latent parallelism.
* :mod:`repro.survey` — the developer survey study (Figures 1-4).
* :mod:`repro.workloads` — the 12 case-study applications in mini-JS.
* :mod:`repro.experiments` — experiment registry mapped to paper artifacts.
* :mod:`repro.api` — the public entry layer: ``AnalysisSession`` +
  ``RunSpec`` + ``RunResult`` (and the ``python -m repro`` CLI).
"""

__version__ = "1.0.0"

__all__ = [
    "api",
    "jsvm",
    "browser",
    "ceres",
    "analysis",
    "parallel",
    "survey",
    "workloads",
    "experiments",
]
