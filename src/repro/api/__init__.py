"""Public entry layer for the reproduction: sessions, specs, results.

This package is the one coherent surface over the staged pipeline the paper
describes (profile → loop profile → dependence analysis → parallelism
model):

* :class:`AnalysisSession` — context-managed owner of the results
  repository, publisher, script cache and batch pipeline;
* :class:`RunSpec` — declarative, composable tracer selection for one run;
* :class:`RunResult` — the uniform, JSON-round-trippable result envelope.

Importing ``repro.api`` is side-effect-free: no workload module is imported
until a workload is actually requested by name (the registry in
:mod:`repro.workloads.base` resolves its manifest lazily).

The legacy surfaces — ``repro.ceres.JSCeres`` and
``repro.experiments.run_case_study`` — completed their promised two-PR
deprecation window and were removed; see README for the migration table.
"""

from .results import SCHEMA_VERSION, RunArtifacts, RunResult
from .session import AnalysisSession
from .spec import (
    ALL_MODES,
    ALL_TRACERS,
    DEPENDENCE,
    GECKO,
    LIGHTWEIGHT,
    LOOP_PROFILE,
    SPECULATE,
    RunSpec,
    UnknownFocusLineError,
)

__all__ = [
    "ALL_MODES",
    "ALL_TRACERS",
    "AnalysisSession",
    "DEPENDENCE",
    "GECKO",
    "LIGHTWEIGHT",
    "LOOP_PROFILE",
    "SPECULATE",
    "RunArtifacts",
    "RunResult",
    "RunSpec",
    "SCHEMA_VERSION",
    "UnknownFocusLineError",
]
