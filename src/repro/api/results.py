"""The uniform result envelope returned by every session run.

The seed tool returned three unrelated dataclasses (``LightweightRun``,
``LoopProfileRun``, ``DependenceRun``) with no serialization.  A
:class:`RunResult` replaces them with one schema: the workload fingerprint,
the composed mode set, one JSON-native payload per tracer, the rendered
report and the results-repository commit id.  ``to_dict``/``from_dict`` are
a lossless JSON round trip (``RunResult.from_dict(r.to_dict()) == r``), so
results can be cached, diffed and shipped between processes.

Live analysis objects (parsed-program registries, ``LoopProfile`` /
``DependenceReport`` instances, recorded traces) are process-local and
cannot cross a JSON boundary; they ride along in
:attr:`RunResult.artifacts`, which is excluded from equality and
serialization, for in-process consumers (tests, benchmarks, the CLI).
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Version stamp of the serialized envelope; bump on breaking payload changes.
SCHEMA_VERSION = 1


@dataclass
class RunArtifacts:
    """Process-local handles from one run (not part of the serialized schema).

    Only lightweight analysis objects are kept — the run's browser session
    and proxy (guest heap, documents, event queues) are deliberately not
    retained, so holding many envelopes stays cheap.
    """

    registry: Any = None
    lightweight_result: Any = None  #: :class:`~repro.ceres.lightweight.LightweightResult`
    gecko_profiler: Any = None  #: :class:`~repro.browser.gecko_profiler.GeckoProfiler`
    loop_profiler: Any = None  #: :class:`~repro.ceres.loop_profiler.LoopProfiler`
    dependence_report: Any = None  #: :class:`~repro.ceres.dependence.DependenceReport`
    #: The :class:`~repro.jsvm.hooks.Trace` recorded or replayed by this run
    #: (``RunSpec.record()`` / ``RunSpec.replay()`` policies only).
    trace: Any = None


@dataclass
class RunResult:
    """Uniform envelope for one instrumented (or baseline) run."""

    workload: str
    #: Stable digest of the workload's name and exact sources
    #: (:func:`~repro.engine.cache.workload_fingerprint`).
    fingerprint: str
    #: Composed tracer kinds, canonical order (see :mod:`repro.api.spec`).
    modes: List[str]
    #: One JSON-native payload per tracer kind.
    payloads: Dict[str, Dict[str, Any]]
    report_text: str
    #: Results-repository commit id, or ``None`` when nothing was committed
    #: (uninstrumented baselines, ``publish=False`` specs).
    commit_id: Optional[str]
    #: Final virtual-clock reading of the run, in seconds.
    clock_seconds: float
    #: The :meth:`~repro.api.spec.RunSpec.to_dict` of the spec that produced
    #: this result.
    spec: Dict[str, Any]
    schema_version: int = SCHEMA_VERSION
    #: How the payloads were obtained: ``"live"`` (default, a real guest
    #: execution), ``"recorded:<digest12>"`` (live execution that also
    #: captured a trace) or ``"replay:<digest12>"`` (no guest execution —
    #: every tracer was driven from the named trace).  Serialized only when
    #: not ``"live"`` so pre-trace envelopes keep their exact bytes.
    provenance: str = "live"
    #: Live handles for in-process consumers; never serialized, never compared.
    artifacts: Optional[RunArtifacts] = field(default=None, compare=False, repr=False)

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """A deep, JSON-native copy of the envelope (artifacts excluded)."""
        data = {
            "schema_version": self.schema_version,
            "workload": self.workload,
            "fingerprint": self.fingerprint,
            "modes": list(self.modes),
            "payloads": copy.deepcopy(self.payloads),
            "report_text": self.report_text,
            "commit_id": self.commit_id,
            "clock_seconds": self.clock_seconds,
            "spec": copy.deepcopy(self.spec),
        }
        if self.provenance != "live":
            data["provenance"] = self.provenance
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported RunResult schema version {version!r} (expected {SCHEMA_VERSION})"
            )
        return cls(
            workload=data["workload"],
            fingerprint=data["fingerprint"],
            modes=list(data["modes"]),
            payloads=copy.deepcopy(data["payloads"]),
            report_text=data["report_text"],
            commit_id=data.get("commit_id"),
            clock_seconds=data["clock_seconds"],
            spec=copy.deepcopy(data.get("spec", {})),
            schema_version=version,
            provenance=data.get("provenance", "live"),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------- conveniences
    @property
    def total_seconds(self) -> float:
        """Mode-1 total running time (falls back to the clock for baselines)."""
        payload = self.payloads.get("lightweight")
        if payload is not None:
            return payload["total_ms"] / 1000.0
        return self.clock_seconds

    @property
    def loops_seconds(self) -> float:
        payload = self.payloads.get("lightweight")
        return payload["loops_ms"] / 1000.0 if payload is not None else 0.0

    @property
    def active_seconds(self) -> float:
        payload = self.payloads.get("gecko")
        return payload["active_seconds"] if payload is not None else 0.0

    @property
    def speculation(self) -> Optional[Dict[str, Any]]:
        """The ``speculate`` mode's payload (None when the mode did not run)."""
        return self.payloads.get("speculate")

    def executed_speedups(self) -> Dict[str, float]:
        """Nest label → *executed* speedup for every speculated (non-skipped) nest.

        Committed nests report their measured virtual-time speedup;
        rolled-back nests report 1.0 (the serial result stands).
        """
        payload = self.speculation
        if payload is None:
            return {}
        return {
            nest["label"]: nest["executed_speedup"]
            for nest in payload.get("nests", [])
            if nest.get("status") != "skipped"
        }
