"""Declarative run specifications for :class:`~repro.api.session.AnalysisSession`.

A :class:`RunSpec` names the tracers to attach for one instrumented run.  The
paper stages its three modes to keep instrumentation overhead from biasing
wall-clock measurements; in this reproduction every tracer is *clock-neutral*
(the interpreter charges virtual time per operation regardless of the
subscriber mask), so any subset of tracers can attach to one
:class:`~repro.jsvm.hooks.HookBus` in a single pass and produce numbers
identical to the staged runs.  :meth:`RunSpec.combined_mask` exposes the OR of
the composed tracers' event masks — the single integer the compiled execution
core consults per construct.

Specs compose with ``|``::

    spec = RunSpec.lightweight() | RunSpec.loop_profile()
    result = session.run(workload, spec)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from ..jsvm.tiers import validate_tier

#: Valid ``RunSpec.trace_policy`` values (``None`` = plain live run).
TRACE_POLICIES = ("record", "replay")

#: Tracer kind names (the strings used in ``RunSpec.tracers`` and in
#: :attr:`~repro.api.results.RunResult.payloads` keys).
LIGHTWEIGHT = "lightweight"
GECKO = "gecko"
LOOP_PROFILE = "loop_profile"
DEPENDENCE = "dependence"
#: Speculative parallel re-execution (see :mod:`repro.parallel.speculative`).
#: Not a hook-bus tracer: the session runs the four-stage analysis to obtain
#: dependence verdicts, then re-runs the workload once per DOALL nest with a
#: speculation controller installed.
SPECULATE = "speculate"

#: Canonical tracer order (used for deterministic labels and payload listing).
#: ``speculate`` is a *mode*, not a bus tracer, so it is listed separately.
ALL_TRACERS = (LIGHTWEIGHT, GECKO, LOOP_PROFILE, DEPENDENCE)

#: Every valid ``RunSpec.tracers`` entry, in canonical order.
ALL_MODES = ALL_TRACERS + (SPECULATE,)

#: Short names used in results-repository commit labels; the single-tracer
#: labels match the historical ``JSCeres.run_*`` report names exactly.
_COMMIT_NAMES = {
    LIGHTWEIGHT: "lightweight",
    GECKO: "gecko",
    LOOP_PROFILE: "loops",
    DEPENDENCE: "dependence",
    SPECULATE: "speculate",
}


class UnknownFocusLineError(ValueError):
    """``focus_line`` matched no registered loop.

    The legacy ``JSCeres.run_dependence`` silently fell back to analyzing
    *all* loops in this case — a silent change of semantics.  The session
    raises instead, listing the lines that do declare loops.
    """

    def __init__(self, workload: str, focus_line: int, known_lines: List[int]) -> None:
        self.workload = workload
        self.focus_line = focus_line
        self.known_lines = list(known_lines)
        super().__init__(
            f"no loop at line {focus_line} in workload {workload!r}; "
            f"loops are declared at lines {self.known_lines}"
        )


@dataclass(frozen=True)
class RunSpec:
    """Which tracers to attach (and how to focus them) for one run.

    ``tracers`` is any subset of :data:`ALL_TRACERS`; the empty set is the
    uninstrumented baseline.  ``focus_line`` / ``focus_loop_id`` direct the
    dependence analyzer at one loop (requires the ``dependence`` tracer).
    ``publish`` controls whether the rendered report is committed to the
    session's results repository (uninstrumented runs never commit).
    """

    tracers: FrozenSet[str] = frozenset()
    focus_line: Optional[int] = None
    focus_loop_id: Optional[int] = None
    publish: bool = True
    #: Speculation knobs (meaningful only with the ``speculate`` mode):
    #: worker count (None = the paper machine's 8 hardware threads),
    #: iteration partitioning strategy, and whether chunks additionally run
    #: in forked OS processes for wall-clock numbers.
    speculate_workers: Optional[int] = None
    speculate_strategy: Optional[str] = None
    speculate_processes: bool = False
    #: Trace policy: ``None`` runs live; ``"record"`` runs live *and*
    #: captures a :class:`~repro.jsvm.hooks.Trace` into the session's store;
    #: ``"replay"`` drives the tracers from a stored (or freshly recorded)
    #: trace with **no** guest execution.  See :meth:`record` / :meth:`replay`.
    trace_policy: Optional[str] = None
    #: Execution-tier policy (see :mod:`repro.jsvm.tiers`): ``None`` uses
    #: the session default (``"auto"``), or name ``"auto"``/``"bytecode"``/
    #: ``"closure"`` explicitly.  Tiers are byte-identical by contract, so
    #: this knob affects speed only, never results.
    tier: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tracers", frozenset(self.tracers))
        unknown = self.tracers - set(ALL_MODES)
        if unknown:
            raise ValueError(
                f"unknown tracer kind(s) {sorted(unknown)}; known: {list(ALL_MODES)}"
            )
        if (self.focus_line is not None or self.focus_loop_id is not None) and (
            DEPENDENCE not in self.tracers
        ):
            raise ValueError(
                "focus_line/focus_loop_id require the 'dependence' tracer "
                f"(got tracers={sorted(self.tracers)})"
            )
        if SPECULATE not in self.tracers and (
            self.speculate_workers is not None
            or self.speculate_strategy is not None
            or self.speculate_processes
        ):
            raise ValueError(
                "speculate_workers/speculate_strategy/speculate_processes require "
                f"the 'speculate' mode (got tracers={sorted(self.tracers)})"
            )
        if self.speculate_strategy not in (None, "block", "cyclic"):
            raise ValueError(
                f"unknown speculation strategy {self.speculate_strategy!r}; "
                "known: 'block', 'cyclic'"
            )
        if self.trace_policy is not None:
            if self.trace_policy not in TRACE_POLICIES:
                raise ValueError(
                    f"unknown trace policy {self.trace_policy!r}; "
                    f"known: {list(TRACE_POLICIES)} (or None for a live run)"
                )
            if not (self.tracers - {SPECULATE}):
                raise ValueError(
                    f"trace_policy={self.trace_policy!r} requires at least one "
                    f"bus tracer (got tracers={sorted(self.tracers)})"
                )
        validate_tier(self.tier)

    # ------------------------------------------------------------ constructors
    @classmethod
    def uninstrumented(cls) -> "RunSpec":
        """Baseline: no tracers, no commit (the overhead-benchmark reference)."""
        return cls(tracers=frozenset(), publish=False)

    @classmethod
    def lightweight(cls, with_gecko: bool = True) -> "RunSpec":
        """Mode 1: total time + in-loop time (+ Gecko-style active time)."""
        kinds = {LIGHTWEIGHT, GECKO} if with_gecko else {LIGHTWEIGHT}
        return cls(tracers=frozenset(kinds))

    @classmethod
    def loop_profile(cls) -> "RunSpec":
        """Mode 2: per-syntactic-loop instance/time/trip-count statistics."""
        return cls(tracers=frozenset({LOOP_PROFILE}))

    @classmethod
    def dependence(
        cls,
        focus_line: Optional[int] = None,
        focus_loop_id: Optional[int] = None,
    ) -> "RunSpec":
        """Mode 3: dependence analysis, optionally focused on one loop."""
        return cls(
            tracers=frozenset({DEPENDENCE}),
            focus_line=focus_line,
            focus_loop_id=focus_loop_id,
        )

    @classmethod
    def speculate(
        cls,
        workers: Optional[int] = None,
        strategy: Optional[str] = None,
        processes: bool = False,
    ) -> "RunSpec":
        """Speculative parallel re-execution of every DOALL-verdict nest.

        The session runs the four-stage analysis (the ``ceres`` dependence
        verdicts gate which nests speculate), then re-executes each eligible
        nest in ``workers`` isolated contexts and reports executed vs
        modelled speedup; compose with other modes freely (``RunSpec.speculate()
        | RunSpec.lightweight()``).
        """
        return cls(
            tracers=frozenset({SPECULATE}),
            speculate_workers=workers,
            speculate_strategy=strategy,
            speculate_processes=processes,
        )

    @classmethod
    def composed(
        cls,
        *tracers: str,
        focus_line: Optional[int] = None,
        focus_loop_id: Optional[int] = None,
        publish: bool = True,
    ) -> "RunSpec":
        """An explicit multi-tracer spec, e.g. ``composed(LIGHTWEIGHT, LOOP_PROFILE)``."""
        return cls(
            tracers=frozenset(tracers),
            focus_line=focus_line,
            focus_loop_id=focus_loop_id,
            publish=publish,
        )

    # ------------------------------------------------------------ trace policy
    def record(self) -> "RunSpec":
        """A copy of this spec that also captures a trace during the live run.

        The session stores the recorded trace in its
        :class:`~repro.engine.cache.TraceStore` (keyed by workload
        fingerprint) and attaches it to ``result.artifacts.trace``; later
        ``replay()`` runs of any tracer subset are then free of guest
        execution.
        """
        return dataclasses.replace(self, trace_policy="record")

    def replay(self) -> "RunSpec":
        """A copy of this spec whose tracers replay a recorded trace.

        The session looks up a stored trace covering this spec's event mask
        for the workload's fingerprint, recording one first if none exists,
        and drives the tracers from it — payloads and report text are
        byte-identical to a live run.  The ``speculate`` mode is not a bus
        tracer and still executes (its whole point is re-execution).
        """
        return dataclasses.replace(self, trace_policy="replay")

    def live(self) -> "RunSpec":
        """A copy of this spec with the default live-execution policy."""
        return dataclasses.replace(self, trace_policy=None)

    # -------------------------------------------------------------------- tier
    def with_tier(self, tier: Optional[str]) -> "RunSpec":
        """A copy of this spec pinned to an execution-tier policy."""
        return dataclasses.replace(self, tier=validate_tier(tier))

    # ------------------------------------------------------------- composition
    def __or__(self, other: "RunSpec") -> "RunSpec":
        """Merge two specs into one single-pass run.

        Tracer sets union; focus settings must agree (or be set on only one
        side) since a run drives a single dependence analyzer.
        """
        if not isinstance(other, RunSpec):
            return NotImplemented

        def merge(mine, theirs, what):
            if mine is not None and theirs is not None and mine != theirs:
                raise ValueError(f"cannot compose specs with conflicting {what}: {mine} != {theirs}")
            return mine if mine is not None else theirs

        return RunSpec(
            tracers=self.tracers | other.tracers,
            focus_line=merge(self.focus_line, other.focus_line, "focus_line"),
            focus_loop_id=merge(self.focus_loop_id, other.focus_loop_id, "focus_loop_id"),
            publish=self.publish and other.publish,
            speculate_workers=merge(
                self.speculate_workers, other.speculate_workers, "speculate_workers"
            ),
            speculate_strategy=merge(
                self.speculate_strategy, other.speculate_strategy, "speculate_strategy"
            ),
            speculate_processes=self.speculate_processes or other.speculate_processes,
            trace_policy=merge(self.trace_policy, other.trace_policy, "trace_policy"),
            tier=merge(self.tier, other.tier, "tier"),
        )

    # ------------------------------------------------------------------ masks
    def combined_mask(self) -> int:
        """OR of the composed tracers' event masks (one bus, single pass).

        Tracers in this reproduction never advance the virtual clock, so
        every combination of masks is compatible — composing tracers cannot
        perturb each other's measurements.  The mask is what the compiled
        execution core consults once per construct.
        """
        from ..browser.gecko_profiler import GeckoProfiler
        from ..ceres.dependence import DependenceAnalyzer
        from ..ceres.lightweight import LightweightProfiler
        from ..ceres.loop_profiler import LoopProfiler

        classes = {
            LIGHTWEIGHT: LightweightProfiler,
            GECKO: GeckoProfiler,
            LOOP_PROFILE: LoopProfiler,
            DEPENDENCE: DependenceAnalyzer,
        }
        mask = 0
        for kind in self.tracers:
            if kind == SPECULATE:
                # Speculation is not a bus tracer: its analysis and replay
                # runs are separate passes, so the composed main pass stays
                # unaffected.
                continue
            mask |= classes[kind].declared_events()
        return mask

    def instrumentation_mode(self):
        """The proxy :class:`~repro.ceres.proxy.InstrumentationMode` to request.

        The heaviest requested tracer decides how the proxy tags the
        documents; with no tracers the proxy serves them uninstrumented.
        """
        from ..ceres.proxy import InstrumentationMode

        if DEPENDENCE in self.tracers:
            return InstrumentationMode.DEPENDENCE
        if LOOP_PROFILE in self.tracers:
            return InstrumentationMode.LOOP_PROFILE
        if self.tracers:
            return InstrumentationMode.LIGHTWEIGHT
        return InstrumentationMode.NONE

    # ------------------------------------------------------------------ labels
    def modes(self) -> List[str]:
        """The composed tracer kinds in canonical order."""
        return [kind for kind in ALL_MODES if kind in self.tracers]

    def commit_suffix(self) -> Optional[str]:
        """Report name suffix for the results repository (None = no commit).

        Single-tracer specs keep the historical names (``-lightweight``,
        ``-loops``, ``-dependence``); a lightweight+gecko pair is still a
        mode-1 run.  Composed specs join their short names deterministically.
        """
        if not self.tracers or not self.publish:
            return None
        if LIGHTWEIGHT in self.tracers and self.tracers <= {LIGHTWEIGHT, GECKO}:
            return "lightweight"
        if len(self.tracers) == 1:
            return _COMMIT_NAMES[next(iter(self.tracers))]
        return "+".join(_COMMIT_NAMES[kind] for kind in self.modes())

    # ------------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        data = {
            "tracers": sorted(self.tracers),
            "focus_line": self.focus_line,
            "focus_loop_id": self.focus_loop_id,
            "publish": self.publish,
            "speculate_workers": self.speculate_workers,
            "speculate_strategy": self.speculate_strategy,
            "speculate_processes": self.speculate_processes,
        }
        # Serialized only when set, so pre-trace envelopes keep their bytes.
        if self.trace_policy is not None:
            data["trace_policy"] = self.trace_policy
        if self.tier is not None:
            data["tier"] = self.tier
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunSpec":
        return cls(
            tracers=frozenset(data.get("tracers", ())),
            focus_line=data.get("focus_line"),
            focus_loop_id=data.get("focus_loop_id"),
            publish=bool(data.get("publish", True)),
            speculate_workers=data.get("speculate_workers"),
            speculate_strategy=data.get("speculate_strategy"),
            speculate_processes=bool(data.get("speculate_processes", False)),
            trace_policy=data.get("trace_policy"),
            tier=data.get("tier"),
        )
