"""The one public entry layer: a context-managed analysis session.

:class:`AnalysisSession` owns the resources the seed code scattered across
``JSCeres``, ``experiments.registry`` and a module global: the results
repository, the remote publisher, the shared source→AST
:class:`~repro.engine.cache.ScriptCache` and the batch
:class:`~repro.engine.pipeline.AnalysisPipeline`.  One ``session.run(workload,
spec)`` replaces the four near-duplicate ``JSCeres.run_*`` methods: the
:class:`~repro.api.spec.RunSpec` names the tracers, any subset of which
attaches to a single :class:`~repro.jsvm.hooks.HookBus` in one pass (tracers
are clock-neutral, so composed runs produce numbers identical to staged
runs), and every run returns the same
:class:`~repro.api.results.RunResult` envelope.

Typical use::

    from repro.api import AnalysisSession, RunSpec

    with AnalysisSession() as session:
        result = session.run("fluidSim", RunSpec.lightweight() | RunSpec.loop_profile())
        print(result.report_text)
        portable = result.to_dict()          # lossless JSON round trip

Workloads are referenced by registry name (resolved lazily — importing this
module pulls in **no** workload modules) or passed as objects implementing
the small protocol of :mod:`repro.workloads.base`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..browser.gecko_profiler import GeckoProfiler
from ..browser.window import BrowserSession
from ..ceres.dependence import DependenceAnalyzer, DependenceReport
from ..ceres.lightweight import LightweightProfiler
from ..ceres.loop_profiler import LoopProfiler
from ..ceres.proxy import InstrumentingProxy, OriginServer
from ..analysis.casestudy import pipeline_dropped_methods, pipeline_trace_mask
from ..ceres.report import render_dependence, render_lightweight, render_loop_profiles
from ..ceres.repository import RemotePublisher, ResultsRepository
from ..engine.cache import ScriptCache, TraceStore, workload_fingerprint
from ..engine.pipeline import AnalysisPipeline, PipelineResult
from ..jsvm.tiers import validate_tier
from ..jsvm.hooks import (
    HookBus,
    ReplayClock,
    Trace,
    TraceMismatchError,
    TraceRecorder,
    TraceReplayer,
)
from .results import RunArtifacts, RunResult
from .spec import (
    DEPENDENCE,
    GECKO,
    LIGHTWEIGHT,
    LOOP_PROFILE,
    SPECULATE,
    RunSpec,
    UnknownFocusLineError,
)


class AnalysisSession:
    """Owns repository, publisher, script cache and pipeline for a run series.

    Parameters mirror the objects the session owns; everything is optional
    and defaults to a fresh instance, so ``AnalysisSession()`` is a complete,
    isolated environment.  Sessions are context managers::

        with AnalysisSession() as session:
            ...

    ``close()`` drops the pipeline's cached batch results; the session object
    itself holds no OS resources.
    """

    def __init__(
        self,
        repository: Optional[ResultsRepository] = None,
        publisher: Optional[RemotePublisher] = None,
        script_cache: Optional[ScriptCache] = None,
        pipeline: Optional[AnalysisPipeline] = None,
        workers: Optional[int] = None,
        cores: int = 8,
        coverage_target: float = 0.80,
        max_nests_per_app: int = 5,
        trace_store: Optional[TraceStore] = None,
        default_tier: Optional[str] = None,
        use_pool: Optional[bool] = None,
    ) -> None:
        #: Execution-tier policy for runs whose spec leaves ``tier`` unset
        #: (``None`` = the VM default, honouring ``REPRO_FORCE_CLOSURE_TIER``).
        self.default_tier = validate_tier(default_tier)
        self.repository = repository if repository is not None else ResultsRepository()
        self.publisher = publisher if publisher is not None else RemotePublisher()
        self.script_cache = script_cache if script_cache is not None else ScriptCache()
        if pipeline is not None:
            self.pipeline = pipeline
            #: The session's trace store is always the pipeline's, so batch
            #: recordings and ``RunSpec.record()/replay()`` share one cache.
            self.trace_store = pipeline.trace_store
        else:
            self.trace_store = trace_store if trace_store is not None else TraceStore()
            self.pipeline = AnalysisPipeline(
                workers=workers,
                script_cache=self.script_cache,
                cores=cores,
                coverage_target=coverage_target,
                max_nests_per_app=max_nests_per_app,
                trace_store=self.trace_store,
                use_pool=use_pool,
            )
        self.closed = False

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Drop cached batch results, release the worker pool, close the store.

        Closing the trace store flushes any disk-backed index (see
        :class:`~repro.serve.store.DiskTraceStore`); for the in-memory store
        it is a no-op.  The store's traces are *not* dropped — a disk store
        handed to a later session still serves its recordings.  The
        pipeline's persistent worker pool (if one was spawned) shuts down
        here; ``close()`` is idempotent end to end.
        """
        self.pipeline.invalidate()
        close_pipeline = getattr(self.pipeline, "close", None)
        if callable(close_pipeline):
            close_pipeline()
        close_store = getattr(self.trace_store, "close", None)
        if callable(close_store):
            close_store()
        self.closed = True

    # ------------------------------------------------------------- workloads
    @staticmethod
    def resolve_workload(workload: Any):
        """Accept a workload object or a registry name (resolved lazily)."""
        if isinstance(workload, str):
            from ..workloads.base import get_workload

            return get_workload(workload)
        return workload

    # ------------------------------------------------------------------ runs
    def run(self, workload: Any, spec: Optional[RunSpec] = None) -> RunResult:
        """Run ``workload`` once with the tracers named by ``spec``.

        All requested tracers attach to one hook bus and observe the same
        single pass; an empty spec is the uninstrumented baseline.  With
        ``spec.replay()`` the tracers are driven from a recorded trace
        instead (no guest execution); with ``spec.record()`` the live run
        also captures a trace into the session's store.  Returns the uniform
        :class:`~repro.api.results.RunResult` envelope.
        """
        if self.closed:
            raise RuntimeError("AnalysisSession is closed")
        spec = spec if spec is not None else RunSpec.lightweight()
        workload = self.resolve_workload(workload)
        if spec.trace_policy == "replay":
            return self._run_replayed(workload, spec)
        return self._run_live(workload, spec)

    def _run_live(self, workload: Any, spec: RunSpec) -> RunResult:
        """One live instrumented pass (optionally also recording a trace)."""
        # Steps 1-2 of Figure 5: host the documents, set up page + proxy.
        origin = OriginServer()
        origin.host_scripts(list(workload.scripts))
        proxy = InstrumentingProxy(
            origin,
            mode=spec.instrumentation_mode(),
            repository=self.repository,
            publisher=self.publisher,
            script_cache=self.script_cache,
        )
        hooks = HookBus()
        tier = spec.tier if spec.tier is not None else self.default_tier
        browser = BrowserSession(hooks=hooks, title=workload.name, tier=tier)
        if hasattr(workload, "prepare"):
            workload.prepare(browser)

        # Step 3: intercept every script first so the loop registry is
        # populated before the dependence focus is resolved (parsing never
        # touches the virtual clock, so this cannot perturb timings).
        intercepted = [proxy.request(path) for path, _source in workload.scripts]
        focus_loop_id = self._resolve_focus(spec, proxy.registry, workload.name)

        # Attach the composed tracer set to the one bus, single pass.
        lightweight = gecko = loop_profiler = analyzer = None
        if LIGHTWEIGHT in spec.tracers:
            lightweight = hooks.attach(LightweightProfiler())
        if GECKO in spec.tracers:
            gecko = hooks.attach(GeckoProfiler())
        if LOOP_PROFILE in spec.tracers:
            loop_profiler = hooks.attach(LoopProfiler(registry=proxy.registry))
        if DEPENDENCE in spec.tracers:
            analyzer = hooks.attach(
                DependenceAnalyzer(registry=proxy.registry, focus_loop_id=focus_loop_id)
            )
        recorder = None
        if spec.trace_policy == "record":
            # Record the pipeline's union mask (a superset of any composed
            # spec), so the stored trace replays every future mode.
            recorder = TraceRecorder(
                mask=pipeline_trace_mask() | spec.combined_mask(),
                workload=workload.name,
                fingerprint=workload_fingerprint(workload),
                ms_per_op=browser.clock.ms_per_op,
                drop_methods=pipeline_dropped_methods(),
            )
            hooks.attach(recorder)

        # Step 4: execute the documents and exercise the application.
        if recorder is not None:
            recorder.mark_start(browser.clock)
        if lightweight is not None:
            lightweight.start(browser.clock)
        for document in intercepted:
            browser.run_document(document)
        workload.exercise(browser)
        if lightweight is not None:
            lightweight.stop(browser.clock)

        provenance = "live"
        trace = None
        if recorder is not None:
            recorder.mark_end(browser.clock)
            trace = self.trace_store.put(recorder.trace())
            provenance = f"recorded:{trace.digest()[:12]}"

        return self._finalize(
            workload,
            spec,
            proxy,
            end_ms=browser.clock.now(),
            lightweight=lightweight,
            gecko=gecko,
            loop_profiler=loop_profiler,
            analyzer=analyzer,
            provenance=provenance,
            trace=trace,
        )

    def _run_replayed(
        self, workload: Any, spec: RunSpec, trace: Optional[Any] = None
    ) -> RunResult:
        """Satisfy ``spec`` by replaying a recorded trace — no guest execution.

        The proxy still intercepts (parses) the documents so the loop
        registry, report rendering and results-repository commit are built
        exactly as in a live run; only the *execution* is replaced by the
        trace replay.

        ``trace`` may be an in-memory :class:`Trace` or a streamed source
        (e.g. :class:`~repro.jsvm.hooks.TraceFileSource`).  When the replay
        streams, the tracers run in their incremental modes, so resident
        memory stays bounded by the chunk size rather than the run length.
        """
        origin = OriginServer()
        origin.host_scripts(list(workload.scripts))
        proxy = InstrumentingProxy(
            origin,
            mode=spec.instrumentation_mode(),
            repository=self.repository,
            publisher=self.publisher,
            script_cache=self.script_cache,
        )
        intercepted = [proxy.request(path) for path, _source in workload.scripts]
        del intercepted  # parsed for the registry; never executed
        focus_loop_id = self._resolve_focus(spec, proxy.registry, workload.name)

        fingerprint = workload_fingerprint(workload)
        if trace is not None:
            if trace.fingerprint and trace.fingerprint != fingerprint:
                raise TraceMismatchError(
                    f"trace was recorded for workload {trace.workload!r} "
                    f"(fingerprint {trace.fingerprint[:12]}...) but replay was "
                    f"requested for {workload.name!r} (fingerprint {fingerprint[:12]}...)"
                )
        else:
            from ..jsvm.hooks import stream_replay_enabled

            if stream_replay_enabled():
                trace = self.trace_store.find_source(fingerprint, spec.combined_mask())
            else:
                trace = self.trace_store.find(fingerprint, spec.combined_mask())
            if trace is None:
                trace = self.record_trace(workload)

        # The replayer decides up front whether this pass streams; the
        # tracers' incremental/counter modes key off that decision.
        replayer = TraceReplayer(trace)
        lightweight = gecko = loop_profiler = analyzer = None
        tracers = []
        if LIGHTWEIGHT in spec.tracers:
            lightweight = LightweightProfiler()
            tracers.append(lightweight)
        if GECKO in spec.tracers:
            gecko = GeckoProfiler(retain_samples=not replayer.streaming)
            tracers.append(gecko)
        if LOOP_PROFILE in spec.tracers:
            loop_profiler = LoopProfiler(
                registry=proxy.registry, incremental=replayer.streaming
            )
            tracers.append(loop_profiler)
        if DEPENDENCE in spec.tracers:
            analyzer = DependenceAnalyzer(
                registry=proxy.registry,
                focus_loop_id=focus_loop_id,
                incremental=replayer.streaming,
            )
            tracers.append(analyzer)

        if lightweight is not None:
            lightweight.start(replayer.clock)  # clock sits at trace.start_ms
        replayer.replay(tracers)
        if lightweight is not None:
            lightweight.stop(replayer.clock)  # clock sits at trace.end_ms

        return self._finalize(
            workload,
            spec,
            proxy,
            end_ms=trace.end_ms,
            lightweight=lightweight,
            gecko=gecko,
            loop_profiler=loop_profiler,
            analyzer=analyzer,
            provenance=f"replay:{trace.digest()[:12]}",
            trace=trace,
        )

    def _finalize(
        self,
        workload: Any,
        spec: RunSpec,
        proxy: InstrumentingProxy,
        end_ms: float,
        lightweight,
        gecko,
        loop_profiler,
        analyzer,
        provenance: str,
        trace: Optional[Trace],
    ) -> RunResult:
        """Steps 5-6: gather payloads, render the report, commit and publish."""
        payloads: Dict[str, Dict[str, Any]] = {}
        sections: List[str] = []
        artifacts = RunArtifacts(registry=proxy.registry, trace=trace)

        if lightweight is not None:
            result = lightweight.result(ReplayClock(end_ms))
            artifacts.lightweight_result = result
            payloads[LIGHTWEIGHT] = {
                "total_ms": result.total_ms,
                "loops_ms": result.loops_ms,
                "top_level_loop_entries": result.top_level_loop_entries,
            }
            sections.append(
                render_lightweight(
                    workload.name,
                    result,
                    gecko.active_seconds() if gecko is not None else None,
                )
            )
        if gecko is not None:
            artifacts.gecko_profiler = gecko
            payloads[GECKO] = {
                "active_seconds": gecko.active_seconds(),
                "active_ms": gecko.profile.active_ms,
                "total_sampled_ms": gecko.profile.total_sampled_ms,
                "samples": gecko.profile.counts()[0],
                "sample_interval_ms": gecko.sample_interval_ms,
            }
            if lightweight is None:
                sections.append(self._render_gecko(workload.name, payloads[GECKO]))
        if loop_profiler is not None:
            artifacts.loop_profiler = loop_profiler
            payloads[LOOP_PROFILE] = self._loop_payload(loop_profiler)
            sections.append(
                render_loop_profiles(workload.name, list(loop_profiler.profiles.values()))
            )
        if analyzer is not None:
            report = analyzer.report()
            artifacts.dependence_report = report
            payloads[DEPENDENCE] = self._dependence_payload(report, proxy.registry)
            sections.append(render_dependence(workload.name, report, proxy.registry.loop_label))

        if SPECULATE in spec.tracers:
            # Separate passes by construction: the four-stage analysis feeds
            # the speculation gate, and each eligible nest re-runs the
            # workload with a speculation controller — the composed main pass
            # above is never perturbed.
            speculation = self._run_speculation(workload, spec)
            payloads[SPECULATE] = speculation.to_payload()
            from ..parallel.speculative import render_speculation

            sections.append(render_speculation(workload.name, speculation))

        report_text = "\n\n".join(sections)
        commit_id = None
        suffix = spec.commit_suffix()
        if suffix is not None:
            commit_id = proxy.collect_results(
                f"{workload.name}-{suffix}", report_text, end_ms
            )

        return RunResult(
            workload=workload.name,
            fingerprint=workload_fingerprint(workload),
            modes=spec.modes(),
            payloads=payloads,
            report_text=report_text,
            commit_id=commit_id,
            clock_seconds=end_ms / 1000.0,
            spec=spec.to_dict(),
            provenance=provenance,
            artifacts=artifacts,
        )

    # ----------------------------------------------------------------- traces
    def record_trace(self, workload: Any, mask: Optional[int] = None) -> Trace:
        """Execute ``workload`` once and store a trace covering ``mask``.

        ``mask`` defaults to the pipeline's union event mask, so the stored
        trace replays every shipped tracer (and every per-nest dependence
        focus).  The trace lands in the session's
        :class:`~repro.engine.cache.TraceStore` and is returned.
        """
        if self.closed:
            raise RuntimeError("AnalysisSession is closed")
        workload = self.resolve_workload(workload)
        trace = self.pipeline.record_trace_pooled(workload, mask)
        if trace is not None:
            return trace
        runner = self.pipeline.make_runner()
        return runner.obtain_trace(workload, mask)

    def replay_trace(self, trace: Any, spec: Optional[RunSpec] = None) -> RunResult:
        """Replay an explicit trace (e.g. loaded from disk) as a full run.

        ``trace`` may be a :class:`Trace` or a streamed source returned by
        :func:`~repro.jsvm.hooks.open_trace_source` — sources replay
        chunk-at-a-time without materializing the event list.

        The trace's fingerprint must match the named workload's current
        sources (:class:`~repro.jsvm.hooks.TraceMismatchError` otherwise), so
        a stale trace can never silently masquerade as an analysis of newer
        code.
        """
        if self.closed:
            raise RuntimeError("AnalysisSession is closed")
        spec = spec if spec is not None else RunSpec.lightweight()
        workload = self.resolve_workload(trace.workload)
        return self._run_replayed(workload, spec, trace=trace)

    # ----------------------------------------------------------- speculation
    def _run_speculation(self, workload, spec: RunSpec):
        """Four-stage analysis + speculative re-execution of DOALL nests."""
        from ..parallel.machine import PAPER_MACHINE
        from ..parallel.speculative import SpeculationOptions, SpeculativeExecutor

        options = SpeculationOptions(
            workers=spec.speculate_workers or PAPER_MACHINE.hardware_threads,
            strategy=spec.speculate_strategy or "block",
            use_processes=spec.speculate_processes,
        )
        pool = self.pipeline.shared_pool() if options.use_processes else None
        executor = SpeculativeExecutor(
            script_cache=self.script_cache, options=options, pool=pool
        )
        _analysis, speculation = self.pipeline.analyze_with_speculation(workload, executor)
        return speculation

    # ------------------------------------------------------------ case study
    def case_study(
        self,
        workload_names: Optional[List[str]] = None,
        force: bool = False,
        runner: Any = None,
    ) -> PipelineResult:
        """Run (or reuse) the batch case-study pipeline this session owns."""
        if self.closed:
            raise RuntimeError("AnalysisSession is closed")
        return self.pipeline.run(workload_names, force=force, runner=runner)

    # ------------------------------------------------------------ experiments
    def experiments(self) -> Dict[str, Any]:
        """The experiment registry bound to this session's pipeline."""
        from ..experiments.registry import build_registry

        return build_registry(session=self)

    def run_experiment(self, experiment_id: str) -> str:
        """Run one registered experiment through this session."""
        registry = self.experiments()
        if experiment_id not in registry:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; known: {sorted(registry)}"
            )
        return registry[experiment_id].run()

    def run_experiments(self, experiment_ids: Optional[List[str]] = None) -> Dict[str, str]:
        """Run several (default: all) experiments; returns id → rendered output."""
        registry = self.experiments()
        selected = list(experiment_ids) if experiment_ids is not None else list(registry)
        unknown = [experiment_id for experiment_id in selected if experiment_id not in registry]
        if unknown:
            raise KeyError(f"unknown experiments {unknown}; known: {sorted(registry)}")
        return {experiment_id: registry[experiment_id].run() for experiment_id in selected}

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _resolve_focus(spec: RunSpec, registry, workload_name: str) -> Optional[int]:
        if spec.focus_loop_id is not None:
            return spec.focus_loop_id
        if spec.focus_line is None:
            return None
        site = registry.loop_for_line(spec.focus_line)
        if site is None:
            raise UnknownFocusLineError(workload_name, spec.focus_line, registry.loop_lines())
        return site.node_id

    @staticmethod
    def _render_gecko(name: str, payload: Dict[str, Any]) -> str:
        lines = [
            f"Gecko-style sampling profile: {name}",
            "-" * 78,
            f"active time (sampling)  : {payload['active_seconds']:8.2f} s",
            f"sampled time            : {payload['total_sampled_ms'] / 1000.0:8.2f} s",
            f"samples                 : {payload['samples']:8d}",
        ]
        return "\n".join(lines)

    @staticmethod
    def _stats_payload(stats) -> Dict[str, Any]:
        return {
            "count": stats.count,
            "mean": stats.mean,
            "variance": stats.variance,
            "std": stats.std,
            "total": stats.total,
        }

    @classmethod
    def _loop_payload(cls, profiler: LoopProfiler) -> Dict[str, Any]:
        profiles = []
        for profile in profiler.profiles.values():
            profiles.append(
                {
                    "loop_id": profile.loop_id,
                    "label": profile.label,
                    "kind": profile.kind,
                    "line": profile.line,
                    "program": profile.program,
                    "instances": profile.instances,
                    "observed_parents": list(profile.observed_parents),
                    "time_ms": cls._stats_payload(profile.time_stats_ms),
                    "trips": cls._stats_payload(profile.trip_stats),
                }
            )
        return {
            "total_loop_time_ms": profiler.total_loop_time_ms(),
            "profiles": profiles,
        }

    @staticmethod
    def _dependence_payload(report: DependenceReport, registry) -> Dict[str, Any]:
        warnings_payload = []
        for warning in report.warnings:
            warnings_payload.append(
                {
                    "kind": warning.kind.name,
                    "name": warning.name,
                    "dependence_class": warning.dependence_class,
                    "creation_site": warning.creation_site_label,
                    "first_line": warning.first_line,
                    "occurrences": warning.occurrences,
                    "sample_iterations": list(warning.sample_iterations),
                    "rendered": warning.render(registry.loop_label),
                }
            )
        patterns_payload = []
        for pattern in report.patterns.values():
            patterns_payload.append(
                {
                    "name": pattern.name,
                    "target_kind": pattern.target_kind,
                    "creation_site_label": pattern.creation_site_label,
                    "total_writes": pattern.total_writes,
                    "total_reads": pattern.total_reads,
                    "compound_writes": pattern.compound_writes,
                    "flow_dependences": pattern.flow_dependences,
                    "iterations_with_writes": len(pattern.writes_by_iteration),
                    "iterations_with_reads": len(pattern.reads_by_iteration),
                    "writes_are_disjoint": pattern.writes_are_disjoint(),
                    "overlapping_write_targets": sorted(pattern.overlapping_write_targets()),
                    "truncated": pattern.truncated,
                }
            )
        return {
            "focus_loop_id": report.focus_loop_id,
            "focus_loop_label": report.focus_loop_label,
            "iterations_observed": report.iterations_observed,
            "warnings": warnings_payload,
            "recursion_warnings": [
                {"loop_id": recursion.loop_id, "label": recursion.loop_label}
                for recursion in report.recursion_warnings
            ],
            "patterns": patterns_payload,
        }
