"""Per-application case-study pipeline (Section 3's four steps).

For one workload the pipeline mirrors the paper's methodology:

1. lightweight profiling + Gecko-style sampling → total / active / in-loop
   time (one Table 2 row);
2. loop profiling (plus the nest observer) → identify the hot top-level loop
   nests that together cover at least two thirds of the loop time;
3. dependence analysis focused on each hot nest → warnings + access patterns;
4. interpretation: divergence, DOM access, dependence-breaking difficulty and
   parallelization difficulty (one Table 3 row per inspected nest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..browser.gecko_profiler import GeckoProfiler
from ..browser.window import BrowserSession
from ..ceres.dependence import DependenceAnalyzer, DependenceReport
from ..ceres.ids import IndexRegistry
from ..ceres.lightweight import LightweightProfiler
from ..ceres.loop_profiler import LoopProfile, LoopProfiler
from ..ceres.proxy import InstrumentationMode, InstrumentingProxy, OriginServer
from ..jsvm.hooks import Trace, TraceRecorder, TraceReplayer
from .amdahl import SpeedupBound
from .difficulty import (
    Difficulty,
    assess_breaking_difficulty,
    assess_parallelization_difficulty,
)
from .divergence import DivergenceLevel, assess_divergence
from .domaccess import DomAccessResult, assess_dom_access
from .observer import NestObservation, NestObserver


#: Every tracer class the staged pipeline (and the session API) can attach.
PIPELINE_TRACER_CLASSES = (
    LightweightProfiler,
    GeckoProfiler,
    LoopProfiler,
    NestObserver,
    DependenceAnalyzer,
)


def pipeline_trace_mask() -> int:
    """The union event mask of every tracer the staged pipeline attaches.

    A trace recorded with this mask replays all four analysis stages (and any
    per-nest dependence focus) without re-executing the workload.
    """
    mask = 0
    for tracer_class in PIPELINE_TRACER_CLASSES:
        mask |= tracer_class.declared_events()
    return mask


def pipeline_dropped_methods() -> tuple:
    """Hook methods no pipeline tracer handles (droppable from recordings).

    Variable *reads* are the big one: they are roughly a third of a union
    trace by volume, but every shipped tracer subscribes to ``EV_VAR`` for
    the writes only.  The drop is declared in the trace, so replaying a
    future read-consuming tracer fails loudly instead of under-counting.
    """
    from ..jsvm.hooks import unhandled_hook_methods

    return unhandled_hook_methods(PIPELINE_TRACER_CLASSES)


@dataclass
class Table2Row:
    """One row of Table 2: running time of a case-study application."""

    name: str
    total_seconds: float
    active_seconds: float
    loops_seconds: float

    def as_dict(self) -> dict:
        return {
            "Name": self.name,
            "Total": round(self.total_seconds, 2),
            "Active": round(self.active_seconds, 2),
            "In Loops": round(self.loops_seconds, 2),
        }


@dataclass
class Table3Row:
    """One row of Table 3: detailed inspection of one hot loop nest."""

    application: str
    nest_label: str
    line: int
    runtime_percent: float
    instances: int
    mean_trips: float
    trips_std: float
    divergence: DivergenceLevel
    dom_access: bool
    breaking: Difficulty
    parallelization: Difficulty

    def as_dict(self) -> dict:
        return {
            "name": self.application,
            "nest": self.nest_label,
            "%": round(self.runtime_percent, 1),
            "instances": self.instances,
            "trips": f"{self.mean_trips:.0f}±{self.trips_std:.0f}",
            "divergence": str(self.divergence),
            "DOM": "yes" if self.dom_access else "no",
            "breaking": str(self.breaking),
            "difficulty": str(self.parallelization),
        }


@dataclass
class NestAnalysis:
    """Everything learned about one hot loop nest."""

    observation: NestObservation
    profile: LoopProfile
    dependence: DependenceReport
    divergence: DivergenceLevel
    dom: DomAccessResult
    breaking: Difficulty
    parallelization: Difficulty
    fraction_of_loop_time: float


@dataclass
class ApplicationAnalysis:
    """Full analysis of one case-study application."""

    name: str
    category: str
    table2: Table2Row
    nests: List[NestAnalysis] = field(default_factory=list)
    speedup: Optional[SpeedupBound] = None

    def table3_rows(self) -> List[Table3Row]:
        rows = []
        for nest in self.nests:
            rows.append(
                Table3Row(
                    application=self.name,
                    nest_label=nest.profile.label,
                    line=nest.profile.line,
                    runtime_percent=nest.fraction_of_loop_time * 100.0,
                    instances=nest.profile.instances,
                    mean_trips=nest.profile.mean_trip_count,
                    trips_std=nest.profile.trip_count_std,
                    divergence=nest.divergence,
                    # Table 3's column counts both DOM and Canvas interaction:
                    # both are non-concurrent browser structures.
                    dom_access=nest.dom.accesses_shared_browser_state,
                    breaking=nest.breaking,
                    parallelization=nest.parallelization,
                )
            )
        return rows


class CaseStudyRunner:
    """Runs the four-step methodology for one or more workloads.

    The runner implements the individual measurement steps; the stage
    *schedule* (and batching across workloads) is owned by
    :mod:`repro.engine` — :meth:`analyze_application` and
    :meth:`analyze_all` delegate there.
    """

    def __init__(
        self,
        cores: int = 8,
        coverage_target: float = 0.80,
        max_nests_per_app: int = 5,
        script_cache=None,
        trace_store=None,
    ) -> None:
        self.cores = cores
        #: Keep inspecting nests until this fraction of loop time is covered
        #: (the paper inspects "at least two thirds" of each app's loop time).
        self.coverage_target = coverage_target
        self.max_nests_per_app = max_nests_per_app
        #: Optional :class:`repro.engine.cache.ScriptCache` shared across the
        #: runner's (many) instrumented runs of the same sources.
        self.script_cache = script_cache
        #: Optional :class:`repro.engine.cache.TraceStore`; when present, the
        #: replay-backed stages record each workload once per mask superset
        #: and replay every analysis from the stored trace.
        self.trace_store = trace_store

    # ------------------------------------------------------------- plumbing
    def _instrumented_run(self, workload, mode: InstrumentationMode, make_tracers) -> tuple:
        """Host the workload, instrument it, attach tracers, load and exercise.

        ``make_tracers`` receives the proxy (whose registry maps node ids to
        loop labels) and returns the tracers to attach, in order.
        """
        from ..jsvm.hooks import HookBus

        origin = OriginServer()
        origin.host_scripts(list(workload.scripts))
        proxy = InstrumentingProxy(origin, mode=mode, script_cache=self.script_cache)
        hooks = HookBus()
        session = BrowserSession(hooks=hooks, title=workload.name)
        if hasattr(workload, "prepare"):
            workload.prepare(session)
        intercepted = [proxy.request(path) for path, _ in workload.scripts]
        tracers = list(make_tracers(proxy))
        for tracer in tracers:
            hooks.attach(tracer)
        for document in intercepted:
            session.run_document(document)
        workload.exercise(session)
        return proxy, session, tracers

    # ---------------------------------------------------------------- tracing
    def record_trace(
        self,
        workload,
        mask: Optional[int] = None,
        drop_methods: Optional[tuple] = None,
    ) -> Trace:
        """Execute ``workload`` once and capture the requested event mask.

        This is the *only* step of the replay-backed schedule that runs guest
        code; everything downstream replays the returned trace.  By default
        the hook methods no pipeline tracer handles are dropped from the
        recording (declared in the trace, enforced at replay).
        """
        from ..engine.cache import workload_fingerprint

        mask = mask if mask is not None else pipeline_trace_mask()
        if drop_methods is None:
            drop_methods = pipeline_dropped_methods()
        recorder = TraceRecorder(
            mask=mask,
            workload=workload.name,
            fingerprint=workload_fingerprint(workload),
            drop_methods=drop_methods,
        )
        origin = OriginServer()
        origin.host_scripts(list(workload.scripts))
        proxy = InstrumentingProxy(
            origin, mode=InstrumentationMode.DEPENDENCE, script_cache=self.script_cache
        )
        from ..jsvm.hooks import HookBus

        hooks = HookBus()
        session = BrowserSession(hooks=hooks, title=workload.name)
        recorder.ms_per_op = session.clock.ms_per_op
        if hasattr(workload, "prepare"):
            workload.prepare(session)
        intercepted = [proxy.request(path) for path, _ in workload.scripts]
        hooks.attach(recorder)
        recorder.mark_start(session.clock)
        for document in intercepted:
            session.run_document(document)
        workload.exercise(session)
        recorder.mark_end(session.clock)
        return recorder.trace()

    def obtain_trace(self, workload, mask: Optional[int] = None) -> Trace:
        """A trace covering ``mask`` for ``workload``: stored, or recorded now."""
        from ..engine.cache import workload_fingerprint

        mask = mask if mask is not None else pipeline_trace_mask()
        if self.trace_store is not None:
            trace = self.trace_store.find(workload_fingerprint(workload), mask)
            if trace is not None:
                return trace
        trace = self.record_trace(workload, mask)
        if self.trace_store is not None:
            self.trace_store.put(trace)
        return trace

    def obtain_trace_source(self, workload, mask: Optional[int] = None):
        """A replayable *source* covering ``mask``: stored, or recorded now.

        Where :meth:`obtain_trace` always yields a resident
        :class:`~repro.jsvm.hooks.Trace`, this asks the store for a streaming
        handle first (``find_source``) — a disk-backed store serves chunked
        segments chunk-at-a-time, keeping replay memory flat in the trace
        length.  A freshly recorded trace is returned directly: it is already
        resident, so round-tripping it through disk buys nothing.
        """
        from ..engine.cache import workload_fingerprint

        mask = mask if mask is not None else pipeline_trace_mask()
        if self.trace_store is not None:
            source = self.trace_store.find_source(workload_fingerprint(workload), mask)
            if source is not None:
                return source
        trace = self.record_trace(workload, mask)
        if self.trace_store is not None:
            self.trace_store.put(trace)
        return trace

    def registry_for(self, workload) -> IndexRegistry:
        """The loop/creation-site registry for ``workload``, without execution.

        Parsing is deterministic (identical source ⇒ identical node ids), so
        the registry built here matches the one the recording run saw — also
        across process boundaries, which is what lets fan-out workers replay
        shipped traces.
        """
        registry = IndexRegistry()
        if self.script_cache is not None:
            for path, source in workload.scripts:
                _program, index = self.script_cache.get(path, source)
                registry.add_index(index)
        else:
            from ..jsvm.parser import parse

            for path, source in workload.scripts:
                registry.add(parse(source, name=path))
        return registry

    # ------------------------------------------------------------------ steps
    def measure_runtime(self, workload) -> Table2Row:
        """Step 1: lightweight profiling + sampling profiler (Table 2 row)."""
        _proxy, session, tracers = self._instrumented_run(
            workload,
            InstrumentationMode.LIGHTWEIGHT,
            lambda proxy: [LightweightProfiler(), GeckoProfiler()],
        )
        lightweight, gecko = tracers
        lightweight.stop(session.clock)
        result = lightweight.result(session.clock)
        return Table2Row(
            name=workload.name,
            total_seconds=session.clock.now() / 1000.0,
            active_seconds=gecko.active_seconds(),
            loops_seconds=result.loops_seconds,
        )

    def profile_loops(self, workload) -> tuple:
        """Step 2: loop profiling + nest observation."""
        proxy, _session, tracers = self._instrumented_run(
            workload,
            InstrumentationMode.LOOP_PROFILE,
            lambda proxy: [
                LoopProfiler(registry=proxy.registry),
                NestObserver(registry=proxy.registry),
            ],
        )
        profiler, observer = tracers
        return proxy, profiler, observer

    def select_hot_nests(self, profiler: LoopProfiler, observer: NestObserver) -> List[LoopProfile]:
        """Pick the top-level nests covering ``coverage_target`` of loop time."""
        top_level = [
            profiler.profiles[loop_id]
            for loop_id in observer.observations
            if loop_id in profiler.profiles
        ]
        top_level.sort(key=lambda p: p.total_time_ms, reverse=True)
        total = sum(p.total_time_ms for p in top_level)
        if total <= 0:
            return top_level[: self.max_nests_per_app]
        selected: List[LoopProfile] = []
        covered = 0.0
        for profile in top_level:
            selected.append(profile)
            covered += profile.total_time_ms
            if covered / total >= self.coverage_target or len(selected) >= self.max_nests_per_app:
                break
        return selected

    def analyze_nest(
        self,
        workload,
        profile: LoopProfile,
        observation: NestObservation,
        fraction_of_loop_time: float,
    ) -> NestAnalysis:
        """Steps 3-4 for one nest: dependence analysis + interpretation."""
        _proxy, _session, tracers = self._instrumented_run(
            workload,
            InstrumentationMode.DEPENDENCE,
            lambda proxy: [
                DependenceAnalyzer(registry=proxy.registry, focus_loop_id=profile.loop_id)
            ],
        )
        (analyzer,) = tracers
        return self._interpret_nest(
            analyzer.report(), profile, observation, fraction_of_loop_time
        )

    def _interpret_nest(
        self,
        report: DependenceReport,
        profile: LoopProfile,
        observation: NestObservation,
        fraction_of_loop_time: float,
    ) -> NestAnalysis:
        """Step 4 for one nest: the shared interpretation of a dependence report."""
        divergence = assess_divergence(observation, profile.mean_trip_count)
        dom = assess_dom_access(observation)
        breaking = assess_breaking_difficulty(report)
        parallelization = assess_parallelization_difficulty(
            breaking, dom, divergence, observation, profile.mean_trip_count
        )
        return NestAnalysis(
            observation=observation,
            profile=profile,
            dependence=report,
            divergence=divergence,
            dom=dom,
            breaking=breaking,
            parallelization=parallelization,
            fraction_of_loop_time=fraction_of_loop_time,
        )

    # ------------------------------------------------------- replayed steps
    def measure_runtime_from_trace(self, workload, trace) -> Table2Row:
        """Step 1 from a recorded trace (no guest execution).

        ``trace`` may be an in-memory :class:`Trace` or a streamed source
        (:class:`~repro.jsvm.hooks.TraceFileSource`); when the replay
        streams, the sampling profiler keeps counters instead of per-sample
        records, so memory stays bounded by the chunk size.
        """
        replayer = TraceReplayer(trace)
        lightweight = LightweightProfiler()
        gecko = GeckoProfiler(retain_samples=not replayer.streaming)
        replayer.replay([lightweight, gecko])
        lightweight.stop(replayer.clock)
        result = lightweight.result(replayer.clock)
        return Table2Row(
            name=workload.name,
            total_seconds=trace.end_ms / 1000.0,
            active_seconds=gecko.active_seconds(),
            loops_seconds=result.loops_seconds,
        )

    def profile_loops_from_trace(
        self, workload, trace, registry: Optional[IndexRegistry] = None
    ) -> tuple:
        """Step 2 from a recorded trace; returns ``(registry, profiler, observer)``."""
        registry = registry if registry is not None else self.registry_for(workload)
        replayer = TraceReplayer(trace)
        profiler = LoopProfiler(registry=registry, incremental=replayer.streaming)
        observer = NestObserver(registry=registry)
        replayer.replay([profiler, observer])
        return registry, profiler, observer

    def analyze_nest_from_trace(
        self,
        workload,
        trace: Trace,
        registry: IndexRegistry,
        profile: LoopProfile,
        observation: NestObservation,
        fraction_of_loop_time: float,
    ) -> NestAnalysis:
        """Steps 3-4 for one nest, replayed from the trace (no re-execution)."""
        (nest,) = self.analyze_nests_from_trace(
            workload, trace, registry, [(profile, observation, fraction_of_loop_time)]
        )
        return nest

    def analyze_nests_from_trace(
        self,
        workload,
        trace: Trace,
        registry: IndexRegistry,
        items,
    ) -> List[NestAnalysis]:
        """Steps 3-4 for several nests from **one** pass over the trace.

        ``items`` is a list of ``(profile, observation, fraction)`` triples.
        One focused :class:`DependenceAnalyzer` per nest attaches to a single
        :class:`~repro.jsvm.hooks.TraceReplayer` — the analyzers are
        independent observers, and the creation stamps they write to the
        shared stand-in heap are structurally identical (every analyzer's
        loop stack is driven by the same loop events), so sharing the pass
        produces byte-identical reports at a fraction of the replay cost.
        """
        if not items:
            return []
        replayer = TraceReplayer(trace)
        analyzers = [
            DependenceAnalyzer(
                registry=registry,
                focus_loop_id=profile.loop_id,
                incremental=replayer.streaming,
            )
            for profile, _observation, _fraction in items
        ]
        replayer.replay(analyzers)
        return [
            self._interpret_nest(analyzer.report(), profile, observation, fraction)
            for analyzer, (profile, observation, fraction) in zip(analyzers, items)
        ]

    # ------------------------------------------------------------------ driver
    def analyze_application(self, workload) -> ApplicationAnalysis:
        """Run the full four-stage schedule for one workload."""
        # Imported lazily: the engine schedules this runner's steps.
        from ..engine.stages import run_stages

        return run_stages(self, workload)

    def _maybe_use_inner_loop(
        self,
        workload,
        nest: NestAnalysis,
        profiler: LoopProfiler,
        observation: NestObservation,
        fraction: float,
        analyze=None,
    ) -> NestAnalysis:
        """Re-focus on an inner loop when the outer loop is not the parallelizable one.

        The paper: "In a few cases the parallelizable loop is not the outer
        loop of a nest.  In these cases we consider the loop nest formed
        without some of the outer layers, and report the results for this
        inner loop nest instead."  We apply the same refinement mechanically:
        when the root loop's dependences are hard to break *and* the root
        barely iterates, we retry the dependence analysis focused on the
        heaviest inner loop with a useful trip count and keep whichever
        characterization is more favourable.
        """
        root = nest.profile
        # Keep the outer loop when it iterates enough to be the unit of
        # parallelism, or when the nest interacts with the DOM/Canvas anyway
        # (inner parallelism would still be unexploitable — Ace, MyScript).
        if root.mean_trip_count >= 8.0 or nest.dom.accesses_shared_browser_state:
            return nest
        candidates = [
            profiler.profiles[loop_id]
            for loop_id in observation.inner_loop_ids
            if loop_id in profiler.profiles and profiler.profiles[loop_id].mean_trip_count >= 8.0
        ]
        if not candidates:
            return nest
        inner_profile = max(candidates, key=lambda p: p.total_time_ms)
        if analyze is None:
            analyze = self.analyze_nest
        return analyze(workload, inner_profile, observation, fraction)

    def analyze_all(self, workloads) -> List[ApplicationAnalysis]:
        """Analyze a batch of workloads via the engine (fan-out capable).

        Subclassed runners carry behaviour the engine cannot reconstruct in a
        worker process, so they are passed through as-is (which keeps the
        batch serial); plain runners let the engine fan out.
        """
        from ..engine.pipeline import AnalysisPipeline

        pipeline = AnalysisPipeline(
            script_cache=self.script_cache,
            cores=self.cores,
            coverage_target=self.coverage_target,
            max_nests_per_app=self.max_nests_per_app,
        )
        runner = self if type(self) is not CaseStudyRunner else None
        return pipeline.analyze_many(workloads, runner=runner)
