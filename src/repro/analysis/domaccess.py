"""DOM/Canvas access detection per loop nest (Table 3, column 6).

"Column 6 shows that half of the loop nests access the DOM.  This is
problematic as [...] no major browser currently supports concurrent accesses
to the DOM."  The paper folds Canvas into the same practical limitation when
discussing Harmony ("very hard" despite easy dependences), so the result
object exposes both counts plus the combined verdict used by the
parallelization-difficulty rubric.
"""

from __future__ import annotations

from dataclasses import dataclass

from .observer import NestObservation


@dataclass
class DomAccessResult:
    """DOM/Canvas interaction summary for one loop nest."""

    dom_accesses: int
    canvas_accesses: int

    @property
    def accesses_dom(self) -> bool:
        """Strict DOM access (Table 3's yes/no column)."""
        return self.dom_accesses > 0

    @property
    def accesses_shared_browser_state(self) -> bool:
        """DOM or Canvas access — both are non-concurrent browser structures."""
        return self.dom_accesses > 0 or self.canvas_accesses > 0

    def verdict(self) -> str:
        return "yes" if self.accesses_dom else "no"


def assess_dom_access(observation: NestObservation) -> DomAccessResult:
    """Build the DOM-access summary for a nest from its runtime observation."""
    return DomAccessResult(
        dom_accesses=observation.dom_accesses,
        canvas_accesses=observation.canvas_accesses,
    )
