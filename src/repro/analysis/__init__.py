"""Latent-parallelism analysis built on top of JS-CERES output.

Provides the automatic classifiers (control-flow divergence, DOM access,
dependence-breaking and parallelization difficulty), the Amdahl speedup
bounds, and the case-study pipeline that regenerates Table 2 and Table 3 of
the paper.
"""

from .amdahl import SpeedupBound, amdahl_speedup, bound_for_application, parallel_fraction_needed
from .casestudy import (
    ApplicationAnalysis,
    CaseStudyRunner,
    NestAnalysis,
    Table2Row,
    Table3Row,
)
from .difficulty import (
    DependenceFacts,
    Difficulty,
    assess_breaking_difficulty,
    assess_parallelization_difficulty,
    difficulty_from_label,
    summarize_dependences,
)
from .divergence import DivergenceLevel, DivergenceThresholds, assess_divergence
from .domaccess import DomAccessResult, assess_dom_access
from .observer import NestObservation, NestObserver
from .tables import CaseStudyTables, build_tables

__all__ = [
    "SpeedupBound",
    "amdahl_speedup",
    "bound_for_application",
    "parallel_fraction_needed",
    "ApplicationAnalysis",
    "CaseStudyRunner",
    "NestAnalysis",
    "Table2Row",
    "Table3Row",
    "DependenceFacts",
    "Difficulty",
    "assess_breaking_difficulty",
    "assess_parallelization_difficulty",
    "difficulty_from_label",
    "summarize_dependences",
    "DivergenceLevel",
    "DivergenceThresholds",
    "assess_divergence",
    "DomAccessResult",
    "assess_dom_access",
    "NestObservation",
    "NestObserver",
    "CaseStudyTables",
    "build_tables",
]
