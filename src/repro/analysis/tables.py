"""Assembly and text rendering of the paper's Table 2 and Table 3."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..ceres.report import render_summary_table
from .amdahl import SpeedupBound, count_exceeding, count_hard
from .casestudy import ApplicationAnalysis, Table2Row, Table3Row
from .difficulty import Difficulty


@dataclass
class CaseStudyTables:
    """Both result tables plus the Amdahl summary for a set of applications."""

    table2: List[Table2Row] = field(default_factory=list)
    table3: List[Table3Row] = field(default_factory=list)
    speedups: List[SpeedupBound] = field(default_factory=list)

    # ------------------------------------------------------------- aggregates
    def applications(self) -> List[str]:
        return [row.name for row in self.table2]

    def computationally_intensive(self, active_fraction: float = 0.25) -> List[str]:
        """Applications whose CPU is busy a large part of their running time."""
        names = []
        for row in self.table2:
            busy = max(row.active_seconds, row.loops_seconds)
            if row.total_seconds > 0 and busy / row.total_seconds >= active_fraction:
                names.append(row.name)
        return names

    def nests_with_intrinsic_parallelism(self) -> int:
        """Nests whose dependencies can plausibly be broken (<= medium)."""
        return sum(1 for row in self.table3 if row.breaking <= Difficulty.MEDIUM)

    def fraction_with_intrinsic_parallelism(self) -> float:
        if not self.table3:
            return 0.0
        return self.nests_with_intrinsic_parallelism() / len(self.table3)

    def nests_accessing_dom(self) -> int:
        return sum(1 for row in self.table3 if row.dom_access)

    def fraction_accessing_dom(self) -> float:
        if not self.table3:
            return 0.0
        return self.nests_accessing_dom() / len(self.table3)

    def applications_exceeding_3x(self) -> int:
        return count_exceeding(self.speedups, 3.0)

    def applications_hard_to_speed_up(self) -> int:
        return count_hard(self.speedups)

    # ---------------------------------------------------------------- rendering
    def render_table2(self) -> str:
        rows = [row.as_dict() for row in self.table2]
        return render_summary_table(
            rows, ["Name", "Total", "Active", "In Loops"], title="Table 2. Case study - running time (s)"
        )

    def render_table3(self) -> str:
        rows = [row.as_dict() for row in self.table3]
        return render_summary_table(
            rows,
            ["name", "nest", "%", "instances", "trips", "divergence", "DOM", "breaking", "difficulty"],
            title="Table 3. Case study - detailed inspection of loop nests",
        )

    def render_speedups(self) -> str:
        rows = [
            {
                "application": bound.application,
                "easy fraction": f"{bound.easy_fraction * 100:.0f}%",
                "cores": bound.cores,
                "Amdahl bound": f"{bound.bound:.2f}x",
                ">3x": "yes" if bound.exceeds_3x else "no",
            }
            for bound in self.speedups
        ]
        return render_summary_table(
            rows,
            ["application", "easy fraction", "cores", "Amdahl bound", ">3x"],
            title="Amdahl upper bounds (easy-to-parallelize loops only)",
        )


def build_tables(analyses: List[ApplicationAnalysis]) -> CaseStudyTables:
    """Assemble both tables from per-application analyses."""
    tables = CaseStudyTables()
    for analysis in analyses:
        tables.table2.append(analysis.table2)
        tables.table3.extend(analysis.table3_rows())
        if analysis.speedup is not None:
            tables.speedups.append(analysis.speedup)
    return tables
