"""Control-flow divergence assessment (Table 3, column 5).

The paper grades each loop nest as having ``none``, ``little`` or ``yes``
(significant) control-flow divergence, because divergence determines whether
the latent parallelism could be mapped onto SIMD/GPU hardware.  The paper's
rubric, extracted from Section 4.2:

* *none* — straight-line iteration bodies;
* *little* — "the iterations contain branching statements but their effect is
  local and they only contain a few instructions", so predication would work;
* *yes* — recursion of data-dependent depth (HAAR.js, Raytracing), loops that
  execute roughly one iteration (Ace), inner loops with data-dependent
  bounds, or heavy per-iteration branching.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .observer import NestObservation


class DivergenceLevel(Enum):
    NONE = "none"
    LITTLE = "little"
    YES = "yes"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class DivergenceThresholds:
    """Tunable thresholds of the divergence rubric."""

    #: Below this many dynamic branches per innermost iteration → "none".
    none_branches_per_iteration: float = 0.2
    #: Below this many branches per innermost iteration → "little"; above, "yes".
    little_branches_per_iteration: float = 4.0
    #: Root loops averaging fewer iterations than this are divergent by the
    #: paper's "only execute roughly one iteration" argument.
    minimum_useful_trip_count: float = 3.0
    #: Coefficient of variation of inner trip counts above which bounds are
    #: considered data dependent.
    inner_trip_cv_threshold: float = 1.0


def assess_divergence(
    observation: NestObservation,
    mean_trip_count: float,
    thresholds: DivergenceThresholds | None = None,
) -> DivergenceLevel:
    """Classify a loop nest's control-flow divergence.

    Parameters
    ----------
    observation:
        Dynamic facts about the nest collected by :class:`NestObserver`.
    mean_trip_count:
        Mean trip count of the nest's root loop (from the loop profiler).
    """
    thresholds = thresholds or DivergenceThresholds()

    # Variable-depth recursion inside the nest → divergent (HAAR, Raytracing).
    if observation.has_recursion:
        return DivergenceLevel.YES
    # Loops that barely iterate cannot amortize divergence (Ace, MyScript).
    if 0 < mean_trip_count < thresholds.minimum_useful_trip_count:
        return DivergenceLevel.YES
    # Inner loops with strongly data-dependent bounds.
    if observation.inner_trip_variability > thresholds.inner_trip_cv_threshold:
        return DivergenceLevel.YES

    branches = observation.branches_per_iteration
    if branches <= thresholds.none_branches_per_iteration:
        return DivergenceLevel.NONE
    if branches <= thresholds.little_branches_per_iteration:
        return DivergenceLevel.LITTLE
    return DivergenceLevel.YES
