"""Dependence-breaking and parallelization difficulty rubric (Table 3, cols 7-8).

The paper assigns each hot loop nest two qualitative grades:

* *breaking dependencies* — how hard it would be for a programmer to remove
  the inter-iteration dependencies JS-CERES reports ("very easy", "easy",
  "medium", "hard", "very hard"); and
* *parallelization difficulty* — the overall effort, additionally accounting
  for browser limitations (non-concurrent DOM/Canvas) and whether the loop is
  compute-intensive enough to be worth it.

The original grades were produced by manual inspection aided by the
dependence tool.  Here the same judgement is encoded as an explicit rubric
over (a) the dependence report's access patterns and warnings and (b) the
nest's runtime observation.  The rules follow the paper's narrative:

* "in more than two thirds of the loop nests the write accesses have a
  well-defined pattern that allows parallelism" → disjoint per-iteration
  write sets grade *easy*/*very easy*;
* scalar accumulations (the N-body centre of mass, pixel histograms) are
  reductions → *easy*/*medium* depending on how much state they touch;
* flow dependences on non-reduction state are *hard*; widespread flow
  dependences and tiny trip counts are *very hard*;
* DOM access inside the nest makes exploitation *very hard* today regardless
  of the dependence structure (Harmony, Ace, MyScript, sigma.js, D3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List

from ..ceres.dependence import AccessPattern, DependenceReport
from ..ceres.warnings_ import WarningKind
from .divergence import DivergenceLevel
from .domaccess import DomAccessResult
from .observer import NestObservation


class Difficulty(IntEnum):
    """Ordered difficulty scale used by both Table 3 columns."""

    VERY_EASY = 0
    EASY = 1
    MEDIUM = 2
    HARD = 3
    VERY_HARD = 4

    def label(self) -> str:
        return {
            Difficulty.VERY_EASY: "very easy",
            Difficulty.EASY: "easy",
            Difficulty.MEDIUM: "medium",
            Difficulty.HARD: "hard",
            Difficulty.VERY_HARD: "very hard",
        }[self]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label()


_LABEL_TO_DIFFICULTY = {
    "very easy": Difficulty.VERY_EASY,
    "easy": Difficulty.EASY,
    "medium": Difficulty.MEDIUM,
    "hard": Difficulty.HARD,
    "very hard": Difficulty.VERY_HARD,
}


def difficulty_from_label(label: str) -> Difficulty:
    return _LABEL_TO_DIFFICULTY[label.strip().lower()]


@dataclass
class DependenceFacts:
    """Summary of a dependence report from the focus loop's point of view."""

    shared_targets: int = 0
    disjoint_write_targets: int = 0
    overlapping_write_targets: int = 0
    reduction_like_targets: int = 0
    #: targets with cross-iteration reads but disjoint per-iteration writes —
    #: the classic stencil shape (Gauss-Seidel sweeps), which the paper grades
    #: easy to break (switch to a Jacobi-style update).
    stencil_targets: int = 0
    flow_dependence_targets: int = 0
    #: function-scoped scalars written every iteration (the paper's ``var p``
    #: case) — reported as warnings but trivially privatizable, so they do not
    #: count as shared targets.
    privatizable_scalars: int = 0
    variable_warnings: int = 0
    total_warnings: int = 0

    @property
    def has_flow(self) -> bool:
        return self.flow_dependence_targets > 0

    @property
    def mostly_well_defined(self) -> bool:
        """True when most shared writes follow a disjoint per-iteration pattern."""
        if self.shared_targets == 0:
            return True
        good = self.disjoint_write_targets + self.reduction_like_targets + self.stencil_targets
        return good >= max(1, self.shared_targets - 1)


def _is_read_modify_write(pattern: AccessPattern) -> bool:
    """Every overlapping property of the target is also read — the signature
    of an accumulator update (``com.m = com.m + p.m``, ``histogram[b]++``)."""
    overlap = pattern.overlapping_write_targets()
    if not overlap or len(overlap) > 32:
        return False
    for prop in overlap:
        read_somewhere = any(prop in props for props in pattern.reads_by_iteration.values())
        if not read_somewhere:
            return False
    return True


def _classify_pattern(pattern: AccessPattern) -> str:
    """Classify one shared runtime object: rmw / stencil / disjoint /
    overlapping / flow."""
    if pattern.writes_are_disjoint():
        return "stencil" if pattern.has_flow_dependence() else "disjoint"
    if _is_read_modify_write(pattern):
        return "rmw"
    return "flow" if pattern.has_flow_dependence() else "overlapping"


#: Severity order used when several objects from the same creation site fall
#: into different classes — the worst class wins for that site.
_CLASS_SEVERITY = {"disjoint": 0, "rmw": 1, "stencil": 2, "overlapping": 3, "flow": 4}

#: A creation site whose objects are all accumulators still only counts as a
#: reduction when the loop updates a *few* such objects (a histogram, a running
#: centre of mass).  When hundreds of objects from one site are shared between
#: iterations (cloth particles touched by their incident constraints), the
#: structure is neighbour sharing, not a reduction.
_MAX_REDUCTION_OBJECTS = 4


def summarize_dependences(report: DependenceReport) -> DependenceFacts:
    """Reduce a dependence report to the counters the rubric needs.

    Object targets are aggregated per *creation site*: one cloth simulation
    allocates hundreds of particle objects from a single ``{...}`` literal,
    and the programmer breaks (or fails to break) the dependences of all of
    them with one code change, so they count as a single target.
    """
    facts = DependenceFacts()
    facts.total_warnings = len(report.warnings)
    facts.variable_warnings = len(report.warnings_of_kind(WarningKind.VAR_WRITE))

    site_patterns: Dict[str, List[str]] = {}
    for pattern in report.patterns.values():
        if pattern.total_writes == 0:
            continue
        # Targets written by only one iteration are iteration-private.
        if len(pattern.writes_by_iteration) <= 1:
            continue
        if pattern.target_kind == "variable":
            # Loop-body ``var`` scalars are function-scoped and therefore
            # shared between iterations (an output dependence, exactly the
            # Figure 6 ``var p`` warning) — but privatizing them is a purely
            # mechanical fix (extract the body into a function / use forEach),
            # so the paper does not let them raise the difficulty grade.
            facts.privatizable_scalars += 1
            continue
        site = pattern.creation_site_label or pattern.name
        site_patterns.setdefault(site, []).append(_classify_pattern(pattern))

    for classes in site_patterns.values():
        facts.shared_targets += 1
        worst = max(classes, key=lambda c: _CLASS_SEVERITY[c])
        if worst == "disjoint":
            facts.disjoint_write_targets += 1
        elif worst == "rmw":
            if len(classes) <= _MAX_REDUCTION_OBJECTS:
                facts.reduction_like_targets += 1
            else:
                facts.flow_dependence_targets += 1
        elif worst == "stencil":
            facts.stencil_targets += 1
        elif worst == "overlapping":
            facts.overlapping_write_targets += 1
        else:  # "flow"
            facts.flow_dependence_targets += 1
    return facts


def assess_breaking_difficulty(report: DependenceReport) -> Difficulty:
    """Column 7: how hard it is to break the reported dependencies."""
    facts = summarize_dependences(report)

    if facts.shared_targets == 0:
        # At most variable-scoping warnings (the Figure 6 ``var p`` case):
        # fixed by extracting the body into a function or using forEach.
        return Difficulty.VERY_EASY

    if not facts.has_flow:
        if facts.overlapping_write_targets == 0 and facts.stencil_targets == 0:
            return Difficulty.VERY_EASY if facts.shared_targets <= 2 else Difficulty.EASY
        if facts.mostly_well_defined:
            return Difficulty.EASY
        return Difficulty.MEDIUM

    # True (non-stencil, non-reduction) flow dependences present.
    if facts.flow_dependence_targets <= 1:
        return Difficulty.MEDIUM
    if facts.flow_dependence_targets <= 3 or facts.mostly_well_defined:
        return Difficulty.HARD
    return Difficulty.VERY_HARD


def assess_parallelization_difficulty(
    breaking: Difficulty,
    dom: DomAccessResult,
    divergence: DivergenceLevel,
    observation: NestObservation,
    mean_trip_count: float,
) -> Difficulty:
    """Column 8: overall difficulty of exploiting the nest's parallelism."""
    level = breaking

    # Non-concurrent browser structures: loops that interact with the DOM or
    # issue Canvas drawing commands per iteration cannot run concurrently in
    # any current browser, so exploitation is "very hard" today regardless of
    # the dependence structure (Harmony, Ace, MyScript, sigma.js, D3).  Pixel
    # kernels that merely read/write ImageData buffers are unaffected.
    if dom.accesses_dom:
        return Difficulty.VERY_HARD
    if dom.canvas_accesses > 0 and observation.root_iterations:
        canvas_per_iteration = dom.canvas_accesses / observation.root_iterations
        if canvas_per_iteration > 0.5:
            return Difficulty.VERY_HARD

    # Too little work per instance to be worth parallelizing.
    if 0 < mean_trip_count < 3.0:
        level = Difficulty(min(level + 2, Difficulty.VERY_HARD))

    # Significant divergence costs one level (SIMD mapping needs restructuring).
    if divergence is DivergenceLevel.YES:
        level = Difficulty(min(level + 1, Difficulty.VERY_HARD))

    return level
