"""Amdahl's-law speedup bounds (Section 4.2 / Section 5 of the paper).

"Considering Amdahl's law, the upper bound for speedup is greater than 3x for
5 of the 12 applications when only counting easy to parallelize loops.  On
the other end of the spectrum we think it would be hard or very hard to
obtain any significant speedup for 5 of the 12 applications."

The bound is computed per application from

* the fraction ``p`` of the application's *busy* time spent in loop nests
  graded easy (or very easy) to parallelize, and
* a core count ``N`` from the machine model (the paper's test machine is a
  quad-core i7 with hyper-threading; we default to 8 hardware threads).

``speedup = 1 / ((1 - p) + p / N)``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .difficulty import Difficulty


def amdahl_speedup(parallel_fraction: float, cores: int) -> float:
    """Amdahl's law: speedup of a program with ``parallel_fraction`` on ``cores``."""
    if cores <= 0:
        raise ValueError("cores must be positive")
    p = min(max(parallel_fraction, 0.0), 1.0)
    return 1.0 / ((1.0 - p) + p / cores)


def parallel_fraction_needed(speedup: float, cores: int) -> float:
    """Inverse of :func:`amdahl_speedup`: fraction needed to reach ``speedup``."""
    if speedup <= 1.0:
        return 0.0
    if cores <= 1:
        return 1.0
    return (1.0 - 1.0 / speedup) / (1.0 - 1.0 / cores)


@dataclass
class SpeedupBound:
    """Amdahl bound for one application."""

    application: str
    easy_fraction: float
    cores: int
    bound: float
    worst_difficulty: Difficulty
    best_difficulty: Difficulty = Difficulty.VERY_HARD

    @property
    def exceeds_3x(self) -> bool:
        return self.bound > 3.0

    @property
    def hard_to_speed_up(self) -> bool:
        """The paper's other bucket: "hard or very hard to obtain any
        significant speedup" — every inspected nest of the application is at
        least *hard* to exploit."""
        return self.best_difficulty >= Difficulty.HARD


def bound_for_application(
    application: str,
    nest_fractions_and_difficulties: Iterable[tuple],
    busy_seconds: float,
    loop_seconds: float,
    cores: int = 8,
    easy_cutoff: Difficulty = Difficulty.EASY,
) -> SpeedupBound:
    """Compute the Amdahl bound for one application.

    Parameters
    ----------
    nest_fractions_and_difficulties:
        Iterable of ``(fraction_of_loop_time, parallelization_difficulty)`` for
        the inspected nests of this application.
    busy_seconds:
        The application's busy time (the larger of sampled active time and
        loop time — the denominator of the parallel fraction).
    loop_seconds:
        Total time spent in loops (converts nest fractions into absolute time).
    cores:
        Machine-model core count.
    easy_cutoff:
        Nests graded at or below this difficulty count as parallelizable.
    """
    pairs = list(nest_fractions_and_difficulties)
    easy_loop_seconds = sum(
        fraction * loop_seconds for fraction, difficulty in pairs if difficulty <= easy_cutoff
    )
    denominator = max(busy_seconds, loop_seconds, 1e-9)
    easy_fraction = min(easy_loop_seconds / denominator, 1.0)
    worst = max((difficulty for _fraction, difficulty in pairs), default=Difficulty.VERY_HARD)
    best = min((difficulty for _fraction, difficulty in pairs), default=Difficulty.VERY_HARD)
    return SpeedupBound(
        application=application,
        easy_fraction=easy_fraction,
        cores=cores,
        bound=amdahl_speedup(easy_fraction, cores),
        worst_difficulty=worst,
        best_difficulty=best,
    )


def count_exceeding(bounds: Iterable[SpeedupBound], threshold: float = 3.0) -> int:
    return sum(1 for bound in bounds if bound.bound > threshold)


def count_hard(bounds: Iterable[SpeedupBound]) -> int:
    return sum(1 for bound in bounds if bound.hard_to_speed_up)
