"""Per-loop-nest runtime observations used by the Table 3 classifiers.

The paper's authors inspected each hot loop nest manually to judge
control-flow divergence and DOM usage.  To regenerate Table 3 mechanically we
record, for every *top-level* loop (the root of a dynamic loop nest):

* iterations of the root loop and of the inner loops (trip-count variability
  of inner loops signals data-dependent bounds),
* dynamically taken branches inside the nest (divergence),
* guest function calls and whether any of them were recursive (variable-depth
  recursion is called out by the paper for HAAR.js and Raytracing),
* host accesses (DOM / Canvas / timers) performed while the nest was open,
* time spent inside the nest.

This observer is attached together with the loop profiler; it only consumes
events that the interpreter already emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..jsvm.hooks import EV_BRANCH, EV_FUNCTION, EV_HOST, EV_LOOP, Tracer
from ..ceres.ids import IndexRegistry
from ..ceres.welford import OnlineStats


@dataclass
class NestObservation:
    """Dynamic facts about one loop nest (keyed by its root loop)."""

    root_loop_id: int
    label: str
    line: int = 0
    root_iterations: int = 0
    root_instances: int = 0
    #: iterations of *any* loop (root or inner) while the nest was open — the
    #: denominator for per-innermost-iteration branch rates.
    total_iterations: int = 0
    branch_events: int = 0
    call_events: int = 0
    recursive_calls: int = 0
    dom_accesses: int = 0
    canvas_accesses: int = 0
    host_accesses: int = 0
    inner_loop_ids: Set[int] = field(default_factory=set)
    inner_trip_stats: OnlineStats = field(default_factory=OnlineStats)
    time_ms: float = 0.0

    # -- derived metrics -----------------------------------------------------
    @property
    def branches_per_iteration(self) -> float:
        """Dynamic branches per innermost iteration (divergence indicator)."""
        denominator = self.total_iterations or self.root_iterations
        return self.branch_events / denominator if denominator else 0.0

    @property
    def calls_per_iteration(self) -> float:
        return self.call_events / self.root_iterations if self.root_iterations else 0.0

    @property
    def has_recursion(self) -> bool:
        return self.recursive_calls > 0

    @property
    def accesses_dom(self) -> bool:
        return self.dom_accesses > 0

    @property
    def accesses_canvas(self) -> bool:
        return self.canvas_accesses > 0

    @property
    def inner_trip_variability(self) -> float:
        """Coefficient of variation of inner-loop trip counts (0 when uniform)."""
        if self.inner_trip_stats.count == 0 or self.inner_trip_stats.mean == 0:
            return 0.0
        return self.inner_trip_stats.std / self.inner_trip_stats.mean


@dataclass
class _OpenNest:
    root_loop_id: int
    start_ms: float


class NestObserver(Tracer):
    """Collects :class:`NestObservation` records for every top-level loop."""

    EVENTS = EV_LOOP | EV_BRANCH | EV_FUNCTION | EV_HOST

    def __init__(self, registry: Optional[IndexRegistry] = None) -> None:
        self.registry = registry
        self.observations: Dict[int, NestObservation] = {}
        self._open_loops: List[int] = []
        self._open_nest: Optional[_OpenNest] = None
        self._guest_call_stack: List[str] = []

    # -- helpers ---------------------------------------------------------------
    def _label(self, loop_id: int) -> str:
        return self.registry.loop_label(loop_id) if self.registry else f"loop#{loop_id}"

    def _observation(self, loop_id: int, line: int = 0) -> NestObservation:
        observation = self.observations.get(loop_id)
        if observation is None:
            observation = NestObservation(root_loop_id=loop_id, label=self._label(loop_id), line=line)
            self.observations[loop_id] = observation
        return observation

    def _current(self) -> Optional[NestObservation]:
        if self._open_nest is None:
            return None
        return self.observations.get(self._open_nest.root_loop_id)

    # -- loop events -------------------------------------------------------------
    def on_loop_enter(self, interp, node) -> None:
        if not self._open_loops:
            observation = self._observation(node.node_id, getattr(node, "line", 0))
            observation.root_instances += 1
            self._open_nest = _OpenNest(root_loop_id=node.node_id, start_ms=interp.clock.now())
        else:
            current = self._current()
            if current is not None:
                current.inner_loop_ids.add(node.node_id)
        self._open_loops.append(node.node_id)

    def on_loop_iteration(self, interp, node, iteration) -> None:
        current = self._current()
        if current is None:
            return
        current.total_iterations += 1
        if node.node_id == current.root_loop_id and len(self._open_loops) == 1:
            current.root_iterations += 1

    def on_loop_exit(self, interp, node, trip_count) -> None:
        if node.node_id in self._open_loops:
            # Remove the innermost occurrence.
            for index in range(len(self._open_loops) - 1, -1, -1):
                if self._open_loops[index] == node.node_id:
                    self._open_loops.pop(index)
                    break
        current = self._current()
        if current is not None and node.node_id in current.inner_loop_ids:
            current.inner_trip_stats.push(trip_count)
        if current is not None and node.node_id == current.root_loop_id and not self._open_loops:
            current.time_ms += interp.clock.now() - self._open_nest.start_ms
            self._open_nest = None

    # -- other events -------------------------------------------------------------
    def on_branch(self, interp, node, taken) -> None:
        current = self._current()
        if current is not None:
            current.branch_events += 1

    def on_function_enter(self, interp, func, call_node) -> None:
        name = getattr(func, "name", "<native>")
        current = self._current()
        if current is not None:
            current.call_events += 1
            if name in self._guest_call_stack:
                current.recursive_calls += 1
        self._guest_call_stack.append(name)

    def on_function_exit(self, interp, func) -> None:
        if self._guest_call_stack:
            self._guest_call_stack.pop()

    def on_host_access(self, interp, category, detail, node) -> None:
        current = self._current()
        if current is None:
            return
        current.host_accesses += 1
        if category == "dom":
            current.dom_accesses += 1
        elif category == "canvas":
            current.canvas_accesses += 1

    # -- results ---------------------------------------------------------------------
    def by_time(self) -> List[NestObservation]:
        return sorted(self.observations.values(), key=lambda o: o.time_ms, reverse=True)
