"""Harmony — procedural drawing application (Audio and Video).

Table 1: ``Harmony / mrdoob.com/projects/harmony — Audio and Video / Drawing
application``.

Harmony's brushes draw strokes by connecting each new point to nearby
previous points on a canvas.  Table 2 shows the application is almost always
idle (41 s total, 0.36 s active), and Table 3 grades its three hot nests as
*easy* to break dependence-wise but *very hard* to parallelize, because every
iteration issues canvas drawing commands (non-concurrent browser state).
"""

from __future__ import annotations

from .base import CATEGORY_AUDIO_VIDEO, Workload, register_workload

HARMONY_SOURCE = """\
var harmony = {};
harmony.points = [];
harmony.context = null;
harmony.brushScale = 0.2;

function harmonyInit() {
  var canvas = document.getElementById("harmony-canvas");
  harmony.context = canvas.getContext("2d");
  harmony.points = [];
  return canvas.width;
}

function harmonyStroke(x, y) {
  var ctx = harmony.context;
  ctx.beginPath();
  // sketchy brush: connect the new point to every sufficiently close old one
  for (var i = 0; i < harmony.points.length; i++) {
    var p = harmony.points[i];
    var dx = p.x - x;
    var dy = p.y - y;
    var d = dx * dx + dy * dy;
    if (d < 900) {
      ctx.moveTo(x + dx * harmony.brushScale, y + dy * harmony.brushScale);
      ctx.lineTo(p.x - dx * harmony.brushScale, p.y - dy * harmony.brushScale);
    }
  }
  ctx.stroke();
  harmony.points.push({ x: x, y: y });
  return harmony.points.length;
}

function harmonySmooth(windowSize) {
  // small smoothing pass over the recorded points (short trip counts)
  var smoothed = 0;
  for (var i = 0; i < harmony.points.length; i++) {
    var sumX = 0;
    var sumY = 0;
    var count = 0;
    for (var k = i - windowSize; k <= i + windowSize; k++) {
      if (k >= 0 && k < harmony.points.length) {
        sumX += harmony.points[k].x;
        sumY += harmony.points[k].y;
        count++;
      }
    }
    harmony.points[i].sx = sumX / count;
    harmony.points[i].sy = sumY / count;
    smoothed++;
  }
  return smoothed;
}

function harmonyRedraw() {
  var ctx = harmony.context;
  ctx.clearRect(0, 0, 320, 200);
  for (var i = 0; i < harmony.points.length; i++) {
    var p = harmony.points[i];
    ctx.fillRect(p.x, p.y, 1, 1);
  }
  return harmony.points.length;
}

function harmonyDrag(startX, startY, steps) {
  var i = 0;
  while (i < steps) {
    harmonyStroke(startX + i * 3.5, startY + Math.sin(i * 0.4) * 12);
    i++;
  }
  return harmony.points.length;
}
"""


def _prepare(session) -> None:
    session.create_canvas("harmony-canvas", 320, 200)


def _exercise(session) -> None:
    session.run_script("harmonyInit();", name="harmony-setup.js")
    # The user sketches a few strokes with long pauses in between; almost all
    # wall-clock time is idle, as in Table 2.
    session.run_script("harmonyDrag(20, 40, 45);", name="harmony-stroke1.js")
    session.idle(9000.0)
    session.run_script("harmonyDrag(60, 120, 45);", name="harmony-stroke2.js")
    session.idle(9000.0)
    session.run_script("harmonySmooth(3); harmonyRedraw();", name="harmony-finish.js")
    session.idle(8000.0)


@register_workload("Harmony")
def make_harmony_workload() -> Workload:
    return Workload(
        name="Harmony",
        category=CATEGORY_AUDIO_VIDEO,
        description="Drawing application",
        url="mrdoob.com/projects/harmony",
        scripts=[("harmony.js", HARMONY_SOURCE)],
        prepare_fn=_prepare,
        exercise_fn=_exercise,
    )
