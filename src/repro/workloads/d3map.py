"""D3.js — interactive azimuthal projection map (Visualization).

Table 1: ``D3.js / d3js.org — Visualization / interactive azimuthal
projection map``.

Table 3: a single nest with 99% of loop time, ~51 instances (one per
drag/zoom event) and trips 156±57 (one per geometry), graded *yes* for
divergence (polygons have data-dependent vertex counts), *yes* for DOM access
(every feature updates an SVG-like path element) and *hard* overall.
Table 2: 18 s total, 5 s active, 4 s in loops.

The kernel re-projects a synthetic set of geographic features through an
azimuthal-equidistant projection on every pan event and writes the resulting
path strings into DOM elements.
"""

from __future__ import annotations

from .base import CATEGORY_VISUALIZATION, Workload, register_workload

D3_SOURCE = """\
var d3map = {};
d3map.features = [];
d3map.paths = [];
d3map.rotation = 0;

function d3LoadFeatures(featureCount) {
  d3map.features = [];
  d3map.paths = [];
  var svg = document.getElementById("map");
  var f = 0;
  while (f < featureCount) {
    var vertexCount = 6 + (f * 13) % 40;
    var coordinates = [];
    var v = 0;
    while (v < vertexCount) {
      coordinates.push({
        lon: -180 + (f * 17 + v * 11) % 360,
        lat: -80 + (f * 7 + v * 5) % 160
      });
      v++;
    }
    d3map.features.push({ id: f, coordinates: coordinates });
    var path = document.createElement("path");
    path.setAttribute("data-feature", "" + f);
    svg.appendChild(path);
    d3map.paths.push(path);
    f++;
  }
  return d3map.features.length;
}

function d3Project(lon, lat, rotation) {
  // azimuthal equidistant projection centred on (rotation, 0)
  var lambda = (lon + rotation) * Math.PI / 180;
  var phi = lat * Math.PI / 180;
  var cosC = Math.cos(phi) * Math.cos(lambda);
  var c = Math.acos(cosC > 1 ? 1 : (cosC < -1 ? -1 : cosC));
  var k = c === 0 ? 1 : c / Math.sin(c);
  var x = k * Math.cos(phi) * Math.sin(lambda);
  var y = k * Math.sin(phi);
  return { x: 200 + x * 60, y: 150 - y * 60 };
}

function d3Redraw(rotation) {
  d3map.rotation = rotation;
  var rendered = 0;
  // re-project every feature and update its DOM path
  for (var f = 0; f < d3map.features.length; f++) {
    var feature = d3map.features[f];
    var d = "M";
    for (var v = 0; v < feature.coordinates.length; v++) {
      var coordinate = feature.coordinates[v];
      var point = d3Project(coordinate.lon, coordinate.lat, rotation);
      if (v > 0) { d = d + "L"; }
      d = d + point.x.toFixed(1) + "," + point.y.toFixed(1);
    }
    d3map.paths[f].setAttribute("d", d);
    rendered++;
  }
  return rendered;
}
"""


def _prepare(session) -> None:
    svg = session.document.create_element("svg")
    svg.set("id", "map")
    session.document.body.append_child(svg)


def _exercise(session) -> None:
    session.run_script("d3LoadFeatures(24);", name="d3-setup.js")
    # The user drags the globe: each drag event triggers one full re-projection.
    for event in range(6):
        session.run_script(f"d3Redraw({event * 12});", name="d3-drag.js")
        session.idle(700.0)
    session.idle(5000.0)


@register_workload("D3.js")
def make_d3_workload() -> Workload:
    return Workload(
        name="D3.js",
        category=CATEGORY_VISUALIZATION,
        description="interactive azimuthal projection map",
        url="d3js.org",
        scripts=[("d3map.js", D3_SOURCE)],
        prepare_fn=_prepare,
        exercise_fn=_exercise,
    )
