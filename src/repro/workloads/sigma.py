"""sigma.js — GEXF graph rendering (Visualization).

Table 1: ``sigma.js / sigmajs.org — Visualization / GEXF rendering``.

Table 3 inspects two nests (68% and 22% of loop time, ~2070 and ~638
instances, trips around 190±25): the force-directed layout iteration and the
node/edge rendering pass.  Both are graded *very hard*: the layout loop
carries flow dependences between nodes (every node reads positions other
iterations just wrote) and the render loop updates the DOM for every node.
Table 2: 32 s total, 9 s active, 8 s in loops.

The kernel loads a synthetic GEXF-like graph, runs a ForceAtlas-style layout
step per frame, and mirrors node positions into DOM elements.
"""

from __future__ import annotations

from .base import CATEGORY_VISUALIZATION, Workload, register_workload

SIGMA_SOURCE = """\
var sigma = {};
sigma.nodes = [];
sigma.edges = [];
sigma.container = null;
sigma.rendered = 0;
sigma.totalSwing = 0;
sigma.totalTraction = 0;

function sigmaLoadGraph(nodeCount, edgesPerNode) {
  sigma.nodes = [];
  sigma.edges = [];
  sigma.container = document.getElementById("graph");
  var i = 0;
  while (i < nodeCount) {
    var node = {
      id: i,
      x: Math.cos(i * 2.4) * 50 + 60,
      y: Math.sin(i * 2.4) * 50 + 60,
      dx: 0,
      dy: 0,
      size: 1 + i % 3
    };
    sigma.nodes.push(node);
    var element = document.createElement("div");
    element.className = "sigma-node";
    sigma.container.appendChild(element);
    node.element = element;
    i++;
  }
  i = 0;
  while (i < nodeCount * edgesPerNode) {
    sigma.edges.push({ source: i % nodeCount, target: (i * 7 + 3) % nodeCount });
    i++;
  }
  return sigma.nodes.length + sigma.edges.length;
}

function sigmaLayoutAndRender(repulsion, attraction) {
  // ForceAtlas-style layout fused with rendering, the way the demo updates
  // the display: each node computes its force, moves, updates the global
  // swing accumulators, and refreshes its DOM element in the same pass.
  sigma.totalSwing = 0;
  sigma.totalTraction = 0;
  for (var i = 0; i < sigma.nodes.length; i++) {
    var node = sigma.nodes[i];
    var fx = 0;
    var fy = 0;
    for (var j = 0; j < sigma.nodes.length; j++) {
      if (i === j) { continue; }
      var other = sigma.nodes[j];
      var dx = node.x - other.x;
      var dy = node.y - other.y;
      var d2 = dx * dx + dy * dy + 0.01;
      fx += repulsion * dx / d2;
      fy += repulsion * dy / d2;
      fx -= (node.x - other.x) * attraction * 0.1;
      fy -= (node.y - other.y) * attraction * 0.1;
    }
    // global adaptive-speed accumulators (ForceAtlas2 swing/traction)
    var swing = Math.sqrt((fx - node.dx) * (fx - node.dx) + (fy - node.dy) * (fy - node.dy));
    sigma.totalSwing += node.size * swing;
    sigma.totalTraction += node.size * Math.sqrt(fx * fx + fy * fy);
    node.dx = fx;
    node.dy = fy;
    // positions written here are read by later iterations of the same pass
    node.x += fx * 0.05;
    node.y += fy * 0.05;
    // mirror the node into the DOM
    var style = node.element.style;
    style.left = node.x + "px";
    style.top = node.y + "px";
    node.element.setAttribute("data-size", "" + node.size);
    sigma.rendered++;
  }
  return sigma.rendered;
}

function sigmaDrawEdges() {
  // edge rendering pass: reads both endpoints, updates the DOM per edge
  for (var e = 0; e < sigma.edges.length; e++) {
    var edge = sigma.edges[e];
    var source = sigma.nodes[edge.source];
    var target = sigma.nodes[edge.target];
    var length = Math.sqrt(
      (target.x - source.x) * (target.x - source.x) +
      (target.y - source.y) * (target.y - source.y));
    source.element.setAttribute("data-edge-length", "" + length);
  }
  return sigma.edges.length;
}

function sigmaFrame() {
  sigmaLayoutAndRender(9.0, 0.02);
  return sigmaDrawEdges();
}
"""


def _prepare(session) -> None:
    container = session.document.create_element("div")
    container.set("id", "graph")
    session.document.body.append_child(container)


def _exercise(session) -> None:
    session.run_script("sigmaLoadGraph(26, 2);", name="sigma-setup.js")
    session.run_script(
        "function sigmaTick() { sigmaFrame(); requestAnimationFrame(sigmaTick); }"
        " requestAnimationFrame(sigmaTick);",
        name="sigma-driver.js",
    )
    session.run_frames(5)
    session.idle(3500.0)


@register_workload("sigma.js")
def make_sigma_workload() -> Workload:
    return Workload(
        name="sigma.js",
        category=CATEGORY_VISUALIZATION,
        description="GEXF rendering",
        url="sigmajs.org",
        scripts=[("sigma.js", SIGMA_SOURCE)],
        prepare_fn=_prepare,
        exercise_fn=_exercise,
    )
