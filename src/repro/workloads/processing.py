"""processing.js — interactive spiral visual effect (Visualization).

Table 1: ``processing.js / processingjs.org — Visualization / interactive
spiral visual effect``.

Table 3 inspects four nests with very large instance counts (~54.6k) and tiny
trip counts (4±37): processing.js sketches call small helper loops (per-shape
vertex loops, per-particle updates) from inside the draw callback tens of
thousands of times.  Breaking dependences is easy-to-medium, but one nest
touches the DOM/Canvas and is very hard to exploit.  Table 2: 21 s total,
12 s active, only 2 s in loops — much of the work is in straight-line code.

The kernel mimics a Processing sketch: a ``draw()`` callback updates a spiral
of particles, each particle running a short vertex loop, and periodically
draws to the canvas.
"""

from __future__ import annotations

from .base import CATEGORY_VISUALIZATION, Workload, register_workload

PROCESSING_SOURCE = """\
var sketch = {};
sketch.particles = [];
sketch.context = null;
sketch.frame = 0;
sketch.trail = [];

function sketchSetup(particleCount) {
  var canvas = document.getElementById("sketch-canvas");
  sketch.context = canvas.getContext("2d");
  sketch.particles = [];
  var i = 0;
  while (i < particleCount) {
    sketch.particles.push({ angle: i * 0.25, radius: 2 + i * 0.8, x: 0, y: 0, history: [] });
    i++;
  }
  return sketch.particles.length;
}

function sketchVertexLoop(particle, segments) {
  // tiny per-shape loop: a handful of iterations, called very often
  var length = 0;
  var px = particle.x;
  var py = particle.y;
  for (var s = 1; s <= segments; s++) {
    var x = particle.x + Math.cos(particle.angle + s * 0.6) * s;
    var y = particle.y + Math.sin(particle.angle + s * 0.6) * s;
    var dx = x - px;
    var dy = y - py;
    length += Math.sqrt(dx * dx + dy * dy);
    px = x;
    py = y;
  }
  return length;
}

function sketchUpdateParticle(particle, speed) {
  particle.angle += speed;
  particle.x = 60 + Math.cos(particle.angle) * particle.radius;
  particle.y = 60 + Math.sin(particle.angle) * particle.radius;
  // short history window per particle
  particle.history.push(particle.x + particle.y);
  if (particle.history.length > 4) {
    particle.history.shift();
  }
  return sketchVertexLoop(particle, 4);
}

function sketchSmoothTrail() {
  // small smoothing loop over the recent trail samples
  var sum = 0;
  for (var i = 0; i < sketch.trail.length; i++) {
    sum += sketch.trail[i];
  }
  return sketch.trail.length > 0 ? sum / sketch.trail.length : 0;
}

function sketchDrawParticles() {
  // canvas interaction per particle: the very-hard-to-parallelize nest
  var ctx = sketch.context;
  for (var i = 0; i < sketch.particles.length; i++) {
    var particle = sketch.particles[i];
    ctx.fillRect(particle.x, particle.y, 2, 2);
  }
  return sketch.particles.length;
}

function sketchNoise(x, y, depth) {
  // fractal value noise evaluated recursively — straight-line code with no
  // loops, mirroring the large amount of framework/sketch code processing.js
  // executes outside of loops (Table 2: only 2 s of 21 s is loop time).
  var value = Math.sin(x * 12.9898 + y * 78.233) * 43758.5453;
  value = value - Math.floor(value);
  if (depth <= 0) {
    return value;
  }
  var high = sketchNoise(x * 2.1 + 1.3, y * 1.9 + 0.7, depth - 1);
  var low = sketchNoise(x * 0.6 - 0.4, y * 0.5 + 0.3, depth - 1);
  return value * 0.5 + high * 0.25 + low * 0.25;
}

function sketchBackground() {
  // per-frame background shading driven by the noise field (no loops: the
  // four corners are sampled and blended in straight-line code)
  var a = sketchNoise(sketch.frame * 0.01, 0.0, 6);
  var b = sketchNoise(0.0, sketch.frame * 0.013, 6);
  var c = sketchNoise(sketch.frame * 0.007, 1.0, 6);
  var d = sketchNoise(1.0, sketch.frame * 0.011, 6);
  var blend = (a + b + c + d) * 0.25;
  sketch.context.fillStyle = "#101018";
  sketch.context.fillRect(0, 0, 120, 120);
  return blend;
}

function sketchDraw() {
  sketch.frame++;
  sketchBackground();
  var total = 0;
  for (var i = 0; i < sketch.particles.length; i++) {
    total += sketchUpdateParticle(sketch.particles[i], 0.11);
  }
  sketch.trail.push(total);
  if (sketch.trail.length > 8) { sketch.trail.shift(); }
  sketchSmoothTrail();
  if (sketch.frame % 2 === 0) {
    sketchDrawParticles();
  }
  return total;
}
"""


def _prepare(session) -> None:
    session.create_canvas("sketch-canvas", 120, 120)


def _exercise(session) -> None:
    session.run_script("sketchSetup(26);", name="processing-setup.js")
    session.run_script(
        "function sketchTick() { sketchDraw(); requestAnimationFrame(sketchTick); }"
        " requestAnimationFrame(sketchTick);",
        name="processing-driver.js",
    )
    session.run_frames(14)
    session.idle(3000.0)


@register_workload("processing.js")
def make_processing_workload() -> Workload:
    return Workload(
        name="processing.js",
        category=CATEGORY_VISUALIZATION,
        description="interactive spiral visual effect",
        url="processingjs.org",
        scripts=[("processing.js", PROCESSING_SOURCE)],
        prepare_fn=_prepare,
        exercise_fn=_exercise,
    )
