"""HAAR.js — Viola-Jones face detection (User recognition).

Table 1: ``HAAR.js / github.com/foo123/HAAR.js — User recognition / face
recognition (Viola-Jones)``.

The paper inspects two hot loop nests (Table 3):

* the integral-image / feature preparation loops — ~10 instances, trips
  31±23, little divergence, no DOM, easy to parallelize;
* the cascade evaluation loop — tens of thousands of instances with trips
  15±15, *divergent* because "at each iteration, [it does] a recursive search
  through a tree which makes the iterations uneven".

The kernel below builds a grayscale + integral image of a synthetic frame and
then slides detection windows over it; each window walks a small classifier
tree recursively (data-dependent depth), reproducing the divergence profile.
Most of the application's wall-clock time is idle (Table 2: 8 s total, 2 s
active, 0.44 s in loops), which the driver reproduces with event-loop idle
time around a single detection pass.
"""

from __future__ import annotations

from .base import CATEGORY_USER_RECOGNITION, Workload, register_workload

HAAR_SOURCE = """\
var haar = {};
haar.width = 0;
haar.height = 0;
haar.gray = [];
haar.integral = [];
haar.cascade = null;
haar.detections = [];

function haarBuildCascade(depth, seed) {
  // A small binary tree of weak classifiers; leaves carry a vote.
  var node = {};
  node.threshold = (seed % 17) / 17.0;
  node.featureDx = 1 + seed % 3;
  node.featureDy = 1 + seed % 2;
  if (depth <= 0) {
    node.leaf = true;
    node.vote = (seed % 2 === 0) ? 1.0 : -0.4;
    node.left = null;
    node.right = null;
  } else {
    node.leaf = false;
    node.vote = 0.0;
    node.left = haarBuildCascade(depth - 1, seed * 3 + 1);
    node.right = haarBuildCascade(depth - 1, seed * 5 + 2);
  }
  return node;
}

function haarInit(width, height) {
  haar.width = width;
  haar.height = height;
  haar.cascade = haarBuildCascade(4, 7);
  var y = 0;
  // grayscale conversion: one row per iteration of the outer loop
  for (y = 0; y < height; y++) {
    var row = [];
    for (var x = 0; x < width; x++) {
      var r = (x * 37 + y * 17) % 256;
      var g = (x * 11 + y * 29) % 256;
      var b = (x * 5 + y * 41) % 256;
      row.push((0.299 * r + 0.587 * g + 0.114 * b) / 255.0);
    }
    haar.gray.push(row);
  }
}

function haarIntegralImage() {
  // integral image (summed-area table), row by row
  for (var y = 0; y < haar.height; y++) {
    var row = [];
    var rowSum = 0;
    for (var x = 0; x < haar.width; x++) {
      rowSum += haar.gray[y][x];
      var above = (y > 0) ? haar.integral[y - 1][x] : 0;
      row.push(rowSum + above);
    }
    haar.integral.push(row);
  }
}

function haarWindowSum(x, y, w, h) {
  var x2 = x + w - 1;
  var y2 = y + h - 1;
  if (x2 >= haar.width) { x2 = haar.width - 1; }
  if (y2 >= haar.height) { y2 = haar.height - 1; }
  var a = (x > 0 && y > 0) ? haar.integral[y - 1][x - 1] : 0;
  var b = (y > 0) ? haar.integral[y - 1][x2] : 0;
  var c = (x > 0) ? haar.integral[y2][x - 1] : 0;
  var d = haar.integral[y2][x2];
  return d - b - c + a;
}

function haarEvalTree(node, x, y, scale) {
  // recursive, data-dependent-depth tree walk (the divergence source)
  if (node.leaf) {
    return node.vote;
  }
  var feature = haarWindowSum(x, y, node.featureDx * scale, node.featureDy * scale)
              - haarWindowSum(x + node.featureDx * scale, y, node.featureDx * scale, node.featureDy * scale);
  if (feature > node.threshold) {
    return node.vote + haarEvalTree(node.left, x, y, scale);
  }
  return node.vote + haarEvalTree(node.right, x, y, scale);
}

function haarDetect(windowSize, stride) {
  haar.detections = [];
  var count = 0;
  for (var y = 0; y + windowSize < haar.height; y += stride) {
    // cascade evaluation over one row of windows
    for (var x = 0; x + windowSize < haar.width; x += stride) {
      var score = haarEvalTree(haar.cascade, x, y, 2);
      if (score > 0.8) {
        haar.detections.push({ x: x, y: y, size: windowSize, score: score });
        count++;
      }
    }
  }
  return count;
}

function haarRun(width, height) {
  haarInit(width, height);
  haarIntegralImage();
  return haarDetect(8, 3);
}
"""


def _exercise(session) -> None:
    # One detection pass over a small frame; the rest of the session is the
    # user loading the page and looking at the result (idle time dominates,
    # as in Table 2 where HAAR.js is active 2 s out of 8 s).
    session.idle(2000.0)
    session.run_script("haarRun(48, 36);", name="haar-driver.js")
    session.idle(3500.0)


@register_workload("HAAR.js")
def make_haar_workload() -> Workload:
    return Workload(
        name="HAAR.js",
        category=CATEGORY_USER_RECOGNITION,
        description="face recognition (Viola-Jones)",
        url="github.com/foo123/HAAR.js",
        scripts=[("haar.js", HAAR_SOURCE)],
        exercise_fn=_exercise,
    )
