"""fluidSim — Navier-Stokes fluid dynamics simulation (Games).

Table 1: ``fluidSim / nerget.com/fluidSim — Games / fluid dynamics simulation
(Navier-Stokes)``.

Table 3 reports one dominant nest covering 90% of loop time with tens of
thousands of instances, trips 168±147 and *no* control-flow divergence; its
dependences are easy to break (Jacobi-style sweeps over a grid).  The kernel
is the standard Stam stable-fluids solver: add sources, diffuse via an
iterative linear solver, advect, project.
"""

from __future__ import annotations

from .base import CATEGORY_GAMES, Workload, register_workload

FLUID_SOURCE = """\
var fluid = {};
fluid.size = 0;
fluid.dens = [];
fluid.densPrev = [];
fluid.u = [];
fluid.v = [];
fluid.uPrev = [];
fluid.vPrev = [];

function fluidIndex(x, y) {
  return x + (fluid.size + 2) * y;
}

function fluidInit(size) {
  fluid.size = size;
  var total = (size + 2) * (size + 2);
  fluid.dens = [];
  fluid.densPrev = [];
  fluid.u = [];
  fluid.v = [];
  fluid.uPrev = [];
  fluid.vPrev = [];
  var i = 0;
  while (i < total) {
    fluid.dens.push(0);
    fluid.densPrev.push(0);
    fluid.u.push(0);
    fluid.v.push(0);
    fluid.uPrev.push(0);
    fluid.vPrev.push(0);
    i++;
  }
  return total;
}

function fluidAddSource(field, x, y, amount) {
  field[fluidIndex(x, y)] += amount;
}

function fluidLinSolve(x, x0, a, c, iterations) {
  var size = fluid.size;
  for (var k = 0; k < iterations; k++) {
    // Jacobi/Gauss-Seidel sweep over the interior of the grid
    for (var j = 1; j <= size; j++) {
      for (var i = 1; i <= size; i++) {
        x[fluidIndex(i, j)] =
          (x0[fluidIndex(i, j)] +
            a * (x[fluidIndex(i - 1, j)] + x[fluidIndex(i + 1, j)] +
                 x[fluidIndex(i, j - 1)] + x[fluidIndex(i, j + 1)])) / c;
      }
    }
  }
}

function fluidDiffuse(x, x0, diff, dt, iterations) {
  var a = dt * diff * fluid.size * fluid.size;
  fluidLinSolve(x, x0, a, 1 + 4 * a, iterations);
}

function fluidAdvect(d, d0, u, v, dt) {
  var size = fluid.size;
  var dt0 = dt * size;
  for (var j = 1; j <= size; j++) {
    for (var i = 1; i <= size; i++) {
      var x = i - dt0 * u[fluidIndex(i, j)];
      var y = j - dt0 * v[fluidIndex(i, j)];
      if (x < 0.5) { x = 0.5; }
      if (x > size + 0.5) { x = size + 0.5; }
      if (y < 0.5) { y = 0.5; }
      if (y > size + 0.5) { y = size + 0.5; }
      var i0 = Math.floor(x);
      var i1 = i0 + 1;
      var j0 = Math.floor(y);
      var j1 = j0 + 1;
      var s1 = x - i0;
      var s0 = 1 - s1;
      var t1 = y - j0;
      var t0 = 1 - t1;
      d[fluidIndex(i, j)] =
        s0 * (t0 * d0[fluidIndex(i0, j0)] + t1 * d0[fluidIndex(i0, j1)]) +
        s1 * (t0 * d0[fluidIndex(i1, j0)] + t1 * d0[fluidIndex(i1, j1)]);
    }
  }
}

function fluidDensityStep(diff, dt, iterations) {
  fluidDiffuse(fluid.densPrev, fluid.dens, diff, dt, iterations);
  fluidAdvect(fluid.dens, fluid.densPrev, fluid.u, fluid.v, dt);
}

function fluidVelocityStep(visc, dt, iterations) {
  fluidDiffuse(fluid.uPrev, fluid.u, visc, dt, iterations);
  fluidDiffuse(fluid.vPrev, fluid.v, visc, dt, iterations);
  fluidAdvect(fluid.u, fluid.uPrev, fluid.uPrev, fluid.vPrev, dt);
  fluidAdvect(fluid.v, fluid.vPrev, fluid.uPrev, fluid.vPrev, dt);
}

function fluidTotalDensity() {
  var total = 0;
  for (var i = 0; i < fluid.dens.length; i++) {
    total += fluid.dens[i];
  }
  return total;
}

function fluidStep(dt) {
  fluidAddSource(fluid.dens, Math.floor(fluid.size / 2), Math.floor(fluid.size / 2), 120.0);
  fluidAddSource(fluid.u, 2, 2, 4.0);
  fluidAddSource(fluid.v, 2, 2, -2.0);
  fluidVelocityStep(0.0001, dt, 4);
  fluidDensityStep(0.0001, dt, 4);
  return fluidTotalDensity();
}
"""


def _exercise(session) -> None:
    session.run_script("fluidInit(10);", name="fluid-setup.js")
    session.run_script(
        "function fluidFrame() { fluidStep(0.1); requestAnimationFrame(fluidFrame); }"
        " requestAnimationFrame(fluidFrame);",
        name="fluid-driver.js",
    )
    session.run_frames(4)
    session.idle(3000.0)


@register_workload("fluidSim")
def make_fluidsim_workload() -> Workload:
    return Workload(
        name="fluidSim",
        category=CATEGORY_GAMES,
        description="fluid dynamics simulation (Navier-Stokes)",
        url="nerget.com/fluidSim",
        scripts=[("fluidsim.js", FLUID_SOURCE)],
        exercise_fn=_exercise,
    )
