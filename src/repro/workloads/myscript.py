"""MyScript — handwriting recognition front-end (User recognition).

Table 1: ``MyScript / webdemo.visionobjects.com — User recognition /
handwriting recognition application``.

The paper notes that "the only client-side expensive loop executes only a few
iterations, computing the length of line segments" — the heavy recognition
runs on a server.  Table 2: 12 s total, 0.33 s active, 0.15 s in loops;
Table 3 grades the nest divergent, DOM-accessing and very hard.

The kernel captures pen strokes, computes per-segment lengths/curvature of
the most recent stroke fragment (a handful of iterations per pen event) and
mirrors the ink into DOM elements, then "sends" the stroke away (a no-op
standing in for the XHR to the recognition service).
"""

from __future__ import annotations

from .base import CATEGORY_USER_RECOGNITION, Workload, register_workload

MYSCRIPT_SOURCE = """\
var myscript = {};
myscript.strokes = [];
myscript.current = null;
myscript.inkLength = 0;

function myscriptPenDown(x, y) {
  myscript.current = { points: [], length: 0 };
  myscript.current.points.push({ x: x, y: y });
  return myscript.strokes.length;
}

function myscriptPenMove(x, y) {
  var stroke = myscript.current;
  stroke.points.push({ x: x, y: y });
  var from = stroke.points.length - 5;
  if (from < 1) { from = 1; }
  var fragmentLength = 0;
  var ink = document.getElementById("ink");
  // measure the length of the last few line segments of the active stroke
  // and mirror each re-measured segment into the ink overlay (DOM)
  for (var i = from; i < stroke.points.length; i++) {
    var a = stroke.points[i - 1];
    var b = stroke.points[i];
    var dx = b.x - a.x;
    var dy = b.y - a.y;
    fragmentLength += Math.sqrt(dx * dx + dy * dy);
    var dot = document.createElement("span");
    dot.setAttribute("data-x", "" + b.x);
    dot.setAttribute("data-y", "" + b.y);
    ink.appendChild(dot);
  }
  stroke.length += fragmentLength;
  return fragmentLength;
}

function myscriptPenUp() {
  var stroke = myscript.current;
  myscript.strokes.push(stroke);
  myscript.inkLength += stroke.length;
  myscript.current = null;
  return myscript.inkLength;
}

function myscriptClear() {
  myscript.strokes = [];
  myscript.inkLength = 0;
  return 0;
}
"""


def _prepare(session) -> None:
    ink = session.document.create_element("div")
    ink.set("id", "ink")
    session.document.body.append_child(ink)


def _exercise(session) -> None:
    import math

    # The user writes two short words; each pen event triggers a tiny loop,
    # and the app waits on the remote recognizer in between (idle).
    for stroke in range(3):
        session.run_script(f"myscriptPenDown({10 + stroke * 30}, 40);", name="myscript-pen.js")
        for step in range(14):
            x = 10 + stroke * 30 + step * 2
            y = 40 + 10 * math.sin(step * 0.7)
            session.run_script(f"myscriptPenMove({x:.1f}, {y:.1f});", name="myscript-pen.js")
        session.run_script("myscriptPenUp();", name="myscript-pen.js")
        session.idle(2500.0)
    session.idle(4000.0)


@register_workload("MyScript")
def make_myscript_workload() -> Workload:
    return Workload(
        name="MyScript",
        category=CATEGORY_USER_RECOGNITION,
        description="handwriting recognition application",
        url="webdemo.visionobjects.com",
        scripts=[("myscript.js", MYSCRIPT_SOURCE)],
        prepare_fn=_prepare,
        exercise_fn=_exercise,
    )
