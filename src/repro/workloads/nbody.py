"""The paper's Figure 6 example: an N-body simulation step.

This is the program Section 3.3 uses to explain the dependence-analysis
warnings: the ``var p`` declared inside the ``for`` loop is function-scoped
and therefore shared by all iterations (an output dependence), and the
centre-of-mass accumulator ``com`` carries both output and flow dependences
between iterations.  The workload exists mainly as the canonical test case
for the dependence analyzer, but it is also a perfectly good example program
for the public API.
"""

from __future__ import annotations

from .base import CATEGORY_GAMES, Workload

#: Line numbers (1-based) of the two loops in ``NBODY_SOURCE`` that the
#: paper's walkthrough refers to.  Tests assert against these.
STEP_FOR_LINE = 18
DRIVER_WHILE_LINE = 36

NBODY_SOURCE = """\
var bodies = [];
var dT = 0.01;

function Particle() {
  this.x = 0; this.y = 0;
  this.vX = 0; this.vY = 0;
  this.fX = 0; this.fY = 0;
  this.m = 1;
}

function computeForces() {
  for (var j = 0; j < bodies.length; j++) {
    bodies[j].fX = 0.05 * (j % 7 - 3);
    bodies[j].fY = -0.04 * (j % 5 - 2);
  }
}

function step() {
  computeForces();

  var com = new Particle();

  for (var i = 0; i < bodies.length; i++) {
    var p = bodies[i];

    // update velocity
    p.vX += p.fX / p.m * dT;
    p.vY += p.fY / p.m * dT;

    // update position
    p.x += p.vX * dT;
    p.y += p.vY * dT;

    // update center of mass
    com.m = com.m + p.m;
    com.x = (com.x * (com.m - p.m) + p.x * p.m) / com.m;
    com.y = (com.y * (com.m - p.m) + p.y * p.m) / com.m;
  }
  return com;
}

function display(bodies, com) {
  // Rendering is a no-op in the kernel version of the example.
  return com.x + com.y;
}

function init(n) {
  var k = 0;
  while (k < n) {
    var b = new Particle();
    b.x = k * 1.5;
    b.y = -k * 0.5;
    b.m = 1 + (k % 3);
    bodies.push(b);
    k++;
  }
}

function simulate(steps) {
  var s = 0;
  while (s < steps) {
    var com = step();
    display(bodies, com);
    s++;
  }
  return bodies.length;
}
"""

#: The ``for`` loop inside ``step`` is on this source line (1-based).
#: Computed from the literal above so the constant can never drift.
STEP_FOR_LINE = next(
    index + 1 for index, line in enumerate(NBODY_SOURCE.splitlines()) if line.startswith("  for (var i = 0")
)
DRIVER_WHILE_LINE = next(
    index + 1
    for index, line in enumerate(NBODY_SOURCE.splitlines())
    if line.strip().startswith("while (s < steps)")
)


def make_nbody_workload(bodies: int = 24, steps: int = 20) -> Workload:
    """Build the Figure 6 N-body workload with the given problem size."""

    def exercise(session) -> None:
        session.run_script(f"init({bodies}); simulate({steps});", name="nbody-driver.js")

    return Workload(
        name="N-body (Figure 6)",
        category=CATEGORY_GAMES,
        description="N-body simulation step with live centre-of-mass (paper Figure 6)",
        url="paper figure 6",
        scripts=[("nbody.js", NBODY_SOURCE)],
        exercise_fn=exercise,
        scale=float(bodies),
    )
