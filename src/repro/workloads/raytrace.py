"""Realtime Raytracing demo (Games).

Table 1: ``Raytracing / gist.github.com/jwagner/422755 — Games / real-time
raytracing demo``.

Table 3: one nest covering 98% of loop time, ~772 instances (one per scan
line per frame), ~120 trips (one per pixel column), graded *divergent*
because "the Raytracing algorithm contains variable depth recursion", yet its
dependences are *very easy* to break (each pixel is independent) and
parallelization is easy.  Table 2: 62 s total, 19 s active, 26 s in loops —
the most loop-dominated application of the set.

The kernel traces a small sphere scene with recursive reflections and writes
the pixels into a flat output array (the original blits it into ImageData).
"""

from __future__ import annotations

from .base import CATEGORY_GAMES, Workload, register_workload

RAYTRACE_SOURCE = """\
var rt = {};
rt.spheres = [];
rt.width = 0;
rt.height = 0;
rt.output = [];

function rtInit(width, height) {
  rt.width = width;
  rt.height = height;
  rt.output = [];
  var i = 0;
  while (i < width * height) { rt.output.push(0); i++; }
  rt.spheres = [
    { x: 0.0, y: 0.0, z: 4.0, r: 1.2, reflect: 0.6, shade: 0.8 },
    { x: 1.6, y: 0.6, z: 5.5, r: 0.8, reflect: 0.3, shade: 0.4 },
    { x: -1.4, y: -0.4, z: 3.2, r: 0.6, reflect: 0.0, shade: 0.6 }
  ];
  return rt.spheres.length;
}

function rtIntersect(ox, oy, oz, dx, dy, dz, sphere) {
  var cx = sphere.x - ox;
  var cy = sphere.y - oy;
  var cz = sphere.z - oz;
  var proj = cx * dx + cy * dy + cz * dz;
  if (proj < 0) { return -1; }
  var d2 = cx * cx + cy * cy + cz * cz - proj * proj;
  var r2 = sphere.r * sphere.r;
  if (d2 > r2) { return -1; }
  return proj - Math.sqrt(r2 - d2);
}

function rtTrace(ox, oy, oz, dx, dy, dz, depth) {
  var closest = -1;
  var closestDist = 1000000.0;
  for (var s = 0; s < rt.spheres.length; s++) {
    var dist = rtIntersect(ox, oy, oz, dx, dy, dz, rt.spheres[s]);
    if (dist > 0 && dist < closestDist) {
      closestDist = dist;
      closest = s;
    }
  }
  if (closest < 0) {
    return 0.1 + 0.2 * (dy > 0 ? dy : 0);
  }
  var sphere = rt.spheres[closest];
  var hx = ox + dx * closestDist;
  var hy = oy + dy * closestDist;
  var hz = oz + dz * closestDist;
  var nx = (hx - sphere.x) / sphere.r;
  var ny = (hy - sphere.y) / sphere.r;
  var nz = (hz - sphere.z) / sphere.r;
  var light = nx * 0.5 + ny * 0.7 - nz * 0.2;
  if (light < 0) { light = 0; }
  var color = sphere.shade * light;
  // variable-depth recursion: reflective surfaces spawn secondary rays
  if (sphere.reflect > 0 && depth > 0) {
    var dot = dx * nx + dy * ny + dz * nz;
    var rx = dx - 2 * dot * nx;
    var ry = dy - 2 * dot * ny;
    var rz = dz - 2 * dot * nz;
    color += sphere.reflect * rtTrace(hx, hy, hz, rx, ry, rz, depth - 1);
  }
  return color;
}

function rtRenderFrame(time) {
  var count = 0;
  for (var y = 0; y < rt.height; y++) {
    // one scan line: trace a primary ray per pixel column
    for (var x = 0; x < rt.width; x++) {
      var dx = (x - rt.width / 2) / rt.width;
      var dy = (y - rt.height / 2) / rt.height;
      var dz = 1.0;
      var len = Math.sqrt(dx * dx + dy * dy + dz * dz);
      var color = rtTrace(0, 0, Math.sin(time) * 0.1, dx / len, dy / len, dz / len, 3);
      rt.output[y * rt.width + x] = color;
      count++;
    }
  }
  return count;
}
"""


def _exercise(session) -> None:
    session.run_script("rtInit(26, 18);", name="raytrace-setup.js")
    session.run_script(
        "var rtTime = 0;"
        "function rtFrame() { rtRenderFrame(rtTime); rtTime += 0.05; requestAnimationFrame(rtFrame); }"
        " requestAnimationFrame(rtFrame);",
        name="raytrace-driver.js",
    )
    session.run_frames(4)
    session.idle(2000.0)


@register_workload("Realtime Raytracing")
def make_raytrace_workload() -> Workload:
    return Workload(
        name="Realtime Raytracing",
        category=CATEGORY_GAMES,
        description="real-time raytracing demo",
        url="gist.github.com/jwagner/422755",
        scripts=[("raytrace.js", RAYTRACE_SOURCE)],
        exercise_fn=_exercise,
    )
