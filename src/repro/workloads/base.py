"""Workload abstraction and the Table 1 registry.

A :class:`Workload` bundles the mini-JS source of one case-study application
with the host-side code that prepares the page and exercises the app the way
a user would (step 4 of the paper's Figure 5).  The registry mirrors Table 1
of the paper: twelve applications chosen as "the most mature implementations
of the various trends identified by the survey respondents".

The original applications are real-world JavaScript code bases; here each
workload re-implements the application's *computational kernel* — the loops
the paper actually inspects — with the same loop structure, DOM/Canvas usage,
recursion behaviour and trip-count profile.  See DESIGN.md for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..browser.window import BrowserSession

#: Survey trend categories (Figure 1) used to tag each workload.
CATEGORY_USER_RECOGNITION = "User recognition"
CATEGORY_GAMES = "Games"
CATEGORY_AUDIO_VIDEO = "Audio and Video"
CATEGORY_PRODUCTIVITY = "Productivity"
CATEGORY_VISUALIZATION = "Visualization"


@dataclass
class Workload:
    """One case-study application."""

    name: str
    category: str
    description: str
    url: str
    scripts: List[Tuple[str, str]]
    prepare_fn: Optional[Callable[[BrowserSession], None]] = None
    exercise_fn: Optional[Callable[[BrowserSession], None]] = None
    #: Approximate scale knob used by drivers (grid size, pixel count, ...).
    scale: float = 1.0

    def prepare(self, session: BrowserSession) -> None:
        """Host-side page setup (canvas elements, input data)."""
        if self.prepare_fn is not None:
            self.prepare_fn(session)

    def exercise(self, session: BrowserSession) -> None:
        """Drive the application the way a user would."""
        if self.exercise_fn is not None:
            self.exercise_fn(session)

    def table1_row(self) -> dict:
        return {"Name/URL": f"{self.name} / {self.url}", "Category/Description": f"{self.category} / {self.description}"}


class WorkloadRegistry:
    """Registry of the case-study workloads (Table 1)."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], Workload]] = {}

    def register(self, name: str, factory: Callable[[], Workload]) -> None:
        self._factories[name] = factory

    def names(self) -> List[str]:
        return list(self._factories.keys())

    def create(self, name: str) -> Workload:
        if name not in self._factories:
            raise KeyError(f"unknown workload {name!r}; known: {sorted(self._factories)}")
        return self._factories[name]()

    def create_all(self) -> List[Workload]:
        return [factory() for factory in self._factories.values()]


#: Global registry populated by the workload modules at import time.
REGISTRY = WorkloadRegistry()


def register_workload(name: str):
    """Decorator registering a zero-argument workload factory."""

    def decorator(factory: Callable[[], Workload]) -> Callable[[], Workload]:
        REGISTRY.register(name, factory)
        return factory

    return decorator


def get_workload(name: str) -> Workload:
    """Instantiate a registered workload by name."""
    _ensure_loaded()
    return REGISTRY.create(name)


def all_workloads() -> List[Workload]:
    """Instantiate every registered case-study workload (Table 1 order)."""
    _ensure_loaded()
    return REGISTRY.create_all()


def workload_names() -> List[str]:
    _ensure_loaded()
    return REGISTRY.names()


def table1() -> List[dict]:
    """The Table 1 rows (name/URL and category/description)."""
    return [workload.table1_row() for workload in all_workloads()]


def _ensure_loaded() -> None:
    """Import the workload modules so they register themselves."""
    from . import (  # noqa: F401  (import side effects populate REGISTRY)
        haar,
        cloth,
        caman,
        fluidsim,
        harmony,
        ace,
        myscript,
        raytrace,
        normalmap,
        sigma,
        processing,
        d3map,
    )
