"""Workload abstraction and the Table 1 registry.

A :class:`Workload` bundles the mini-JS source of one case-study application
with the host-side code that prepares the page and exercises the app the way
a user would (step 4 of the paper's Figure 5).  The registry mirrors Table 1
of the paper: twelve applications chosen as "the most mature implementations
of the various trends identified by the survey respondents".

The original applications are real-world JavaScript code bases; here each
workload re-implements the application's *computational kernel* — the loops
the paper actually inspects — with the same loop structure, DOM/Canvas usage,
recursion behaviour and trip-count profile.  See DESIGN.md for the
substitution rationale.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..browser.window import BrowserSession

#: Survey trend categories (Figure 1) used to tag each workload.
CATEGORY_USER_RECOGNITION = "User recognition"
CATEGORY_GAMES = "Games"
CATEGORY_AUDIO_VIDEO = "Audio and Video"
CATEGORY_PRODUCTIVITY = "Productivity"
CATEGORY_VISUALIZATION = "Visualization"


@dataclass
class Workload:
    """One case-study application."""

    name: str
    category: str
    description: str
    url: str
    scripts: List[Tuple[str, str]]
    prepare_fn: Optional[Callable[[BrowserSession], None]] = None
    exercise_fn: Optional[Callable[[BrowserSession], None]] = None
    #: Approximate scale knob used by drivers (grid size, pixel count, ...).
    scale: float = 1.0

    def prepare(self, session: BrowserSession) -> None:
        """Host-side page setup (canvas elements, input data)."""
        if self.prepare_fn is not None:
            self.prepare_fn(session)

    def exercise(self, session: BrowserSession) -> None:
        """Drive the application the way a user would."""
        if self.exercise_fn is not None:
            self.exercise_fn(session)

    def table1_row(self) -> dict:
        return {"Name/URL": f"{self.name} / {self.url}", "Category/Description": f"{self.category} / {self.description}"}


#: Declarative manifest of the built-in case-study workloads, in Table 1
#: order: workload name → module (relative to this package) whose import
#: registers the factory.  Nothing here is imported until a workload is
#: actually requested, so ``import repro.api`` (or this module) stays
#: side-effect-free.
WORKLOAD_MANIFEST: Dict[str, str] = {
    "HAAR.js": "haar",
    "Tear-able Cloth": "cloth",
    "CamanJS": "caman",
    "fluidSim": "fluidsim",
    "Harmony": "harmony",
    "Ace": "ace",
    "MyScript": "myscript",
    "Realtime Raytracing": "raytrace",
    "Normal Mapping": "normalmap",
    "sigma.js": "sigma",
    "processing.js": "processing",
    "D3.js": "d3map",
}


class WorkloadRegistry:
    """Registry of the case-study workloads (Table 1).

    Built-in workloads are declared in a *manifest* (name → module) and
    loaded lazily, one module per requested name; out-of-tree scenarios plug
    in through :func:`register_workload` and need no manifest entry.
    """

    def __init__(self, manifest: Optional[Dict[str, str]] = None) -> None:
        self._manifest: Dict[str, str] = dict(manifest or {})
        self._factories: Dict[str, Callable[[], Workload]] = {}

    def register(self, name: str, factory: Callable[[], Workload]) -> None:
        self._factories[name] = factory

    def names(self) -> List[str]:
        """Every known name: manifest entries (Table 1 order) + plugins."""
        extras = [name for name in self._factories if name not in self._manifest]
        return list(self._manifest) + extras

    def loaded_names(self) -> List[str]:
        """Names whose factory is already materialized (no imports triggered)."""
        return list(self._factories)

    def _load(self, name: str) -> None:
        """Import the one module that registers ``name``."""
        module_name = self._manifest[name]
        importlib.import_module(f".{module_name}", __package__)
        if name not in self._factories:
            raise RuntimeError(
                f"module {module_name!r} did not register workload {name!r}"
            )

    def create(self, name: str) -> Workload:
        if name not in self._factories:
            if name in self._manifest:
                self._load(name)
            else:
                raise KeyError(f"unknown workload {name!r}; known: {sorted(self.names())}")
        return self._factories[name]()

    def create_all(self) -> List[Workload]:
        return [self.create(name) for name in self.names()]


#: Global registry: built-ins come from the manifest (loaded lazily); the
#: workload modules register their factories on import via the decorator.
REGISTRY = WorkloadRegistry(manifest=WORKLOAD_MANIFEST)


def register_workload(name: str):
    """Decorator registering a zero-argument workload factory.

    This is the plugin hook for out-of-tree scenarios: any package can
    register a workload under a new name and it becomes runnable through
    :meth:`repro.api.AnalysisSession.run` and the ``python -m repro`` CLI.
    """

    def decorator(factory: Callable[[], Workload]) -> Callable[[], Workload]:
        REGISTRY.register(name, factory)
        return factory

    return decorator


def get_workload(name: str) -> Workload:
    """Instantiate a workload by name (loading only its module, lazily)."""
    return REGISTRY.create(name)


def all_workloads() -> List[Workload]:
    """Instantiate every registered case-study workload (Table 1 order)."""
    return REGISTRY.create_all()


def workload_names() -> List[str]:
    """Every known workload name — no workload module is imported."""
    return REGISTRY.names()


def table1() -> List[dict]:
    """The Table 1 rows (name/URL and category/description)."""
    return [workload.table1_row() for workload in all_workloads()]
