"""Tear-able Cloth — Verlet-integration cloth physics (Games).

Table 1: ``Tear-able Cloth / lonely-pixel.com/lab/cloth — Games / cloth
physics simulation (Verlet integration)``.

Table 3 reports a single dominant nest (80% of loop time, ~1077 instances,
~1581 trips per instance, little divergence, no DOM) whose dependences are of
*medium* difficulty to break: constraint relaxation reads and writes
neighbouring particles, so iterations are not independent, but the structure
is regular (a classic stencil-style medium case).

The kernel simulates a grid of points connected by distance constraints; each
animation frame performs the Verlet position update and several constraint
relaxation sweeps, then "renders" by accumulating line lengths (the original
draws to a canvas; drawing is intentionally kept outside the hot loops, as in
the original where the physics loop dominates).
"""

from __future__ import annotations

from .base import CATEGORY_GAMES, Workload, register_workload

CLOTH_SOURCE = """\
var cloth = {};
cloth.points = [];
cloth.constraints = [];
cloth.gravity = 0.3;
cloth.friction = 0.99;

function clothInit(cols, rows, spacing) {
  cloth.points = [];
  cloth.constraints = [];
  var y = 0;
  for (y = 0; y < rows; y++) {
    for (var x = 0; x < cols; x++) {
      var p = {
        x: x * spacing,
        y: y * spacing,
        px: x * spacing,
        py: y * spacing,
        pinned: (y === 0 && x % 4 === 0)
      };
      cloth.points.push(p);
      if (x > 0) {
        cloth.constraints.push({ a: y * cols + x - 1, b: y * cols + x, length: spacing });
      }
      if (y > 0) {
        cloth.constraints.push({ a: (y - 1) * cols + x, b: y * cols + x, length: spacing });
      }
    }
  }
  return cloth.points.length;
}

function clothVerlet(delta) {
  // position integration: each point only touches itself (data parallel)
  for (var i = 0; i < cloth.points.length; i++) {
    var p = cloth.points[i];
    if (p.pinned) { continue; }
    var vx = (p.x - p.px) * cloth.friction;
    var vy = (p.y - p.py) * cloth.friction;
    p.px = p.x;
    p.py = p.y;
    p.x += vx;
    p.y += vy + cloth.gravity * delta;
  }
}

function clothRelax() {
  // constraint relaxation: each constraint moves both of its endpoints,
  // so neighbouring iterations share particles (medium-difficulty deps)
  for (var c = 0; c < cloth.constraints.length; c++) {
    var constraint = cloth.constraints[c];
    var p1 = cloth.points[constraint.a];
    var p2 = cloth.points[constraint.b];
    var dx = p2.x - p1.x;
    var dy = p2.y - p1.y;
    var dist = Math.sqrt(dx * dx + dy * dy);
    if (dist < 0.000001) { dist = 0.000001; }
    var diff = (constraint.length - dist) / dist;
    var ox = dx * diff * 0.5;
    var oy = dy * diff * 0.5;
    if (!p1.pinned) { p1.x -= ox; p1.y -= oy; }
    if (!p2.pinned) { p2.x += ox; p2.y += oy; }
  }
}

function clothMeasure() {
  var total = 0;
  for (var c = 0; c < cloth.constraints.length; c++) {
    var constraint = cloth.constraints[c];
    var p1 = cloth.points[constraint.a];
    var p2 = cloth.points[constraint.b];
    var dx = p2.x - p1.x;
    var dy = p2.y - p1.y;
    total += Math.sqrt(dx * dx + dy * dy);
  }
  return total;
}

function clothStep(relaxations, delta) {
  clothVerlet(delta);
  var r = 0;
  while (r < relaxations) {
    clothRelax();
    r++;
  }
  return clothMeasure();
}
"""


def _exercise(session) -> None:
    session.run_script("clothInit(14, 10, 8);", name="cloth-setup.js")
    # A few seconds of simulated interaction: one physics step per frame.
    session.run_script(
        "function clothFrame() { clothStep(2, 1.0); requestAnimationFrame(clothFrame); }"
        " requestAnimationFrame(clothFrame);",
        name="cloth-driver.js",
    )
    session.run_frames(10)
    session.idle(2500.0)


@register_workload("Tear-able Cloth")
def make_cloth_workload() -> Workload:
    return Workload(
        name="Tear-able Cloth",
        category=CATEGORY_GAMES,
        description="cloth physics simulation (Verlet integration)",
        url="lonely-pixel.com/lab/cloth",
        scripts=[("cloth.js", CLOTH_SOURCE)],
        exercise_fn=_exercise,
    )
