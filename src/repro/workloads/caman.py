"""CamanJS — image manipulation library (Audio and Video).

Table 1: ``CamanJS / camanjs.com — Audio and Video / image manipulation
library``.

Table 3 inspects three nests, all easy to parallelize with little divergence
and no DOM access inside the hot loops: the main per-pixel filter loop (72%
of loop time, ~90k trips per instance) plus two smaller per-pixel passes.
The kernel below reads ImageData from a canvas once, then applies a chain of
pixel-wise filters (brightness, contrast, saturation) and a convolution, and
writes the result back — the same render pipeline CamanJS uses.
"""

from __future__ import annotations

from .base import CATEGORY_AUDIO_VIDEO, Workload, register_workload

CAMAN_SOURCE = """\
var caman = {};
caman.width = 0;
caman.height = 0;
caman.pixels = [];

function camanLoad(width, height) {
  caman.width = width;
  caman.height = height;
  caman.pixels = [];
  var canvas = document.getElementById("caman-canvas");
  var ctx = canvas.getContext("2d");
  var image = ctx.getImageData(0, 0, width, height);
  var data = image.data;
  var i = 0;
  while (i < width * height * 4) {
    caman.pixels.push(data[i]);
    i++;
  }
  return caman.pixels.length;
}

function camanBrightness(adjust) {
  // per-pixel brightness: each iteration touches only its own channel values
  for (var i = 0; i < caman.pixels.length; i += 4) {
    caman.pixels[i] = caman.pixels[i] + adjust;
    caman.pixels[i + 1] = caman.pixels[i + 1] + adjust;
    caman.pixels[i + 2] = caman.pixels[i + 2] + adjust;
  }
}

function camanContrast(adjust) {
  var factor = (259 * (adjust + 255)) / (255 * (259 - adjust));
  for (var i = 0; i < caman.pixels.length; i += 4) {
    caman.pixels[i] = factor * (caman.pixels[i] - 128) + 128;
    caman.pixels[i + 1] = factor * (caman.pixels[i + 1] - 128) + 128;
    caman.pixels[i + 2] = factor * (caman.pixels[i + 2] - 128) + 128;
  }
}

function camanSaturation(adjust) {
  var level = adjust * -0.01;
  for (var i = 0; i < caman.pixels.length; i += 4) {
    var r = caman.pixels[i];
    var g = caman.pixels[i + 1];
    var b = caman.pixels[i + 2];
    var max = Math.max(r, Math.max(g, b));
    caman.pixels[i] = r + (max - r) * level;
    caman.pixels[i + 1] = g + (max - g) * level;
    caman.pixels[i + 2] = b + (max - b) * level;
  }
}

function camanHistogram() {
  // luminance histogram: a classic reduction over all pixels
  var histogram = [];
  var bin = 0;
  while (bin < 16) { histogram.push(0); bin++; }
  for (var i = 0; i < caman.pixels.length; i += 4) {
    var luma = 0.299 * caman.pixels[i] + 0.587 * caman.pixels[i + 1] + 0.114 * caman.pixels[i + 2];
    var index = Math.floor(luma / 16);
    if (index < 0) { index = 0; }
    if (index > 15) { index = 15; }
    histogram[index] = histogram[index] + 1;
  }
  return histogram;
}

function camanRender() {
  var canvas = document.getElementById("caman-canvas");
  var ctx = canvas.getContext("2d");
  var image = ctx.createImageData(caman.width, caman.height);
  var data = image.data;
  var i = 0;
  while (i < caman.pixels.length) {
    var value = caman.pixels[i];
    if (value < 0) { value = 0; }
    if (value > 255) { value = 255; }
    data[i] = value;
    i++;
  }
  ctx.putImageData(image, 0, 0);
  return caman.pixels.length;
}

function camanProcess(brightness, contrast, saturation) {
  camanBrightness(brightness);
  camanContrast(contrast);
  camanSaturation(saturation);
  var histogram = camanHistogram();
  return histogram[8];
}
"""


def _prepare(session) -> None:
    canvas = session.create_canvas("caman-canvas", 36, 28)
    # Paint something non-trivial into the buffer so the filters have data.
    host = canvas.host_canvas
    for band in range(4):
        host.fill_rect(band * 9, 0, 9, 28, rgba=(40 + band * 50, 90, 200 - band * 40, 255))


def _exercise(session) -> None:
    session.run_script("camanLoad(36, 28);", name="caman-load.js")
    session.run_script("camanProcess(12, 20, 35); camanProcess(-8, 10, 15);", name="caman-driver.js")
    session.run_script("camanRender();", name="caman-render.js")
    session.idle(4000.0)


@register_workload("CamanJS")
def make_caman_workload() -> Workload:
    return Workload(
        name="CamanJS",
        category=CATEGORY_AUDIO_VIDEO,
        description="image manipulation library",
        url="camanjs.com",
        scripts=[("caman.js", CAMAN_SOURCE)],
        prepare_fn=_prepare,
        exercise_fn=_exercise,
    )
