"""The case-study workloads (Table 1) plus the paper's Figure 6 example."""

from .base import (
    REGISTRY,
    Workload,
    WorkloadRegistry,
    all_workloads,
    get_workload,
    register_workload,
    table1,
    workload_names,
)
from .nbody import DRIVER_WHILE_LINE, NBODY_SOURCE, STEP_FOR_LINE, make_nbody_workload

__all__ = [
    "REGISTRY",
    "Workload",
    "WorkloadRegistry",
    "all_workloads",
    "get_workload",
    "register_workload",
    "table1",
    "workload_names",
    "DRIVER_WHILE_LINE",
    "NBODY_SOURCE",
    "STEP_FOR_LINE",
    "make_nbody_workload",
]
