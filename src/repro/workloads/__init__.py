"""The case-study workloads (Table 1) plus the paper's Figure 6 example.

This package is import-lazy (PEP 562): importing it — directly or through
``repro.api`` — pulls in **no** workload module.  Built-in workloads are
declared in :data:`repro.workloads.base.WORKLOAD_MANIFEST` and each module
is imported only when its workload is first requested by name; the Figure 6
N-body helpers load on first attribute access.
"""

_BASE_NAMES = frozenset(
    {
        "REGISTRY",
        "WORKLOAD_MANIFEST",
        "Workload",
        "WorkloadRegistry",
        "all_workloads",
        "get_workload",
        "register_workload",
        "table1",
        "workload_names",
    }
)
_NBODY_NAMES = frozenset(
    {"DRIVER_WHILE_LINE", "NBODY_SOURCE", "STEP_FOR_LINE", "make_nbody_workload"}
)

__all__ = sorted(_BASE_NAMES | _NBODY_NAMES)


def __getattr__(name):
    if name in _BASE_NAMES:
        from . import base

        return getattr(base, name)
    if name in _NBODY_NAMES:
        from . import nbody

        return getattr(nbody, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
