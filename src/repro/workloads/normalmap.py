"""Normal Mapping demo (Games).

Table 1: ``Normal Mapping / 29a.ch/experiments — Games / normal mapping``.

Table 3: a single nest with 99% of loop time, 64 instances (one per frame)
and ~65k trips (one per pixel), little divergence, no DOM in the hot loop,
*very easy* dependence breaking and easy parallelization — the text-book data
parallel pixel kernel.  Table 2: 25 s total, 6 s active, 4 s in loops.

The kernel computes per-pixel Lambertian shading of a height-field-derived
normal map under a moving point light and writes the result into a flat
output buffer.
"""

from __future__ import annotations

from .base import CATEGORY_GAMES, Workload, register_workload

NORMALMAP_SOURCE = """\
var nm = {};
nm.width = 0;
nm.height = 0;
nm.normals = [];
nm.output = [];

function nmInit(width, height) {
  nm.width = width;
  nm.height = height;
  nm.normals = [];
  nm.output = [];
  // derive a normal map from a procedural height field
  for (var y = 0; y < height; y++) {
    for (var x = 0; x < width; x++) {
      var h = Math.sin(x * 0.3) * Math.cos(y * 0.25);
      var hx = Math.sin((x + 1) * 0.3) * Math.cos(y * 0.25) - h;
      var hy = Math.sin(x * 0.3) * Math.cos((y + 1) * 0.25) - h;
      var len = Math.sqrt(hx * hx + hy * hy + 1);
      nm.normals.push({ x: -hx / len, y: -hy / len, z: 1 / len });
      nm.output.push(0);
    }
  }
  return nm.normals.length;
}

function nmShadeFrame(lightX, lightY, lightZ) {
  var count = 0;
  for (var y = 0; y < nm.height; y++) {
    // shade one scan line of pixels
    for (var x = 0; x < nm.width; x++) {
      var index = y * nm.width + x;
      var n = nm.normals[index];
      var lx = lightX - x;
      var ly = lightY - y;
      var lz = lightZ;
      var len = Math.sqrt(lx * lx + ly * ly + lz * lz);
      var intensity = (n.x * lx + n.y * ly + n.z * lz) / len;
      if (intensity < 0) { intensity = 0; }
      if (intensity > 1) { intensity = 1; }
      nm.output[index] = intensity * 255;
      count++;
    }
  }
  return count;
}
"""


def _exercise(session) -> None:
    session.run_script("nmInit(36, 24);", name="normalmap-setup.js")
    session.run_script(
        "var nmAngle = 0;"
        "function nmFrame() {"
        "  nmShadeFrame(18 + Math.cos(nmAngle) * 15, 12 + Math.sin(nmAngle) * 9, 14);"
        "  nmAngle += 0.2;"
        "  requestAnimationFrame(nmFrame);"
        "}"
        " requestAnimationFrame(nmFrame);",
        name="normalmap-driver.js",
    )
    session.run_frames(5)
    session.idle(2500.0)


@register_workload("Normal Mapping")
def make_normalmap_workload() -> Workload:
    return Workload(
        name="Normal Mapping",
        category=CATEGORY_GAMES,
        description="normal mapping",
        url="29a.ch/experiments",
        scripts=[("normalmap.js", NORMALMAP_SOURCE)],
        exercise_fn=_exercise,
    )
