"""Ace — code editor used by the Cloud9 IDE (Productivity).

Table 1: ``Ace / ace.c9.io — Productivity / code editor``.

Table 3's two Ace nests are the archetype of loops that are *not* worth
parallelizing: they "only execute roughly one iteration on average" (the
outer render loop runs "until there are no more cascading changes"), they are
divergent, they touch the DOM heavily, and breaking their dependences would
be very hard.  Table 2 shows the editor is idle most of the time (30 s total,
0.4 s active).

The kernel models the editor's render pipeline: a dirty-flag loop that
re-runs layout/highlight passes until the document stops changing, where each
pass tokenizes the visible lines and updates DOM rows.
"""

from __future__ import annotations

from .base import CATEGORY_PRODUCTIVITY, Workload, register_workload

ACE_SOURCE = """\
var ace = {};
ace.lines = [];
ace.dirty = false;
ace.rows = [];
ace.tokensRendered = 0;

function aceInit(lineCount) {
  ace.lines = [];
  ace.rows = [];
  var container = document.getElementById("editor");
  var i = 0;
  while (i < lineCount) {
    ace.lines.push("var value" + i + " = compute(" + i + ") + offset;");
    var row = document.createElement("div");
    row.className = "ace_line";
    container.appendChild(row);
    ace.rows.push(row);
    i++;
  }
  return ace.lines.length;
}

function aceTokenizeLine(text) {
  var tokens = [];
  var current = "";
  var i = 0;
  while (i < text.length) {
    var ch = text.charAt(i);
    if (ch === " " || ch === ";" || ch === "(" || ch === ")" || ch === "=" || ch === "+") {
      if (current.length > 0) { tokens.push(current); current = ""; }
      if (ch !== " ") { tokens.push(ch); }
    } else {
      current = current + ch;
    }
    i++;
  }
  if (current.length > 0) { tokens.push(current); }
  return tokens;
}

function aceRenderLine(index) {
  var tokens = aceTokenizeLine(ace.lines[index]);
  var html = "";
  for (var t = 0; t < tokens.length; t++) {
    html = html + "<span>" + tokens[t] + "</span>";
  }
  ace.rows[index].innerHTML = html;
  ace.rows[index].setAttribute("data-tokens", "" + tokens.length);
  ace.tokensRendered += tokens.length;
  return tokens.length;
}

function aceEdit(lineIndex, text) {
  ace.lines[lineIndex] = text;
  ace.dirty = true;
}

function aceRenderLoop(visibleFrom, visibleTo) {
  var passes = 0;
  // The outer loop re-runs while edits cascade; in steady state it runs once.
  while (ace.dirty) {
    ace.dirty = false;
    for (var row = visibleFrom; row < visibleTo; row++) {
      var tokenCount = aceRenderLine(row);
      if (tokenCount > 40) {
        // wrapping a very long line dirties the layout again
        ace.dirty = true;
      }
    }
    passes++;
  }
  return passes;
}

function aceKeystroke(lineIndex, suffix) {
  aceEdit(lineIndex, ace.lines[lineIndex] + suffix);
  var to = lineIndex + 3;
  if (to > ace.lines.length) { to = ace.lines.length; }
  return aceRenderLoop(lineIndex, to);
}
"""


def _prepare(session) -> None:
    editor = session.document.create_element("div")
    editor.set("id", "editor")
    session.document.body.append_child(editor)


def _exercise(session) -> None:
    session.run_script("aceInit(30);", name="ace-setup.js")
    # A user types in two places with thinking pauses between keystrokes, so
    # each keystroke triggers one render-loop invocation from the event
    # handler (the keystroke "loop" is the user, not guest code).
    for keystroke in range(10):
        session.run_script(f"aceKeystroke(4, ' + k{keystroke}');", name="ace-typing1.js")
        session.idle(900.0)
    session.idle(4000.0)
    for keystroke in range(10):
        session.run_script(f"aceKeystroke(17, ' + j{keystroke}');", name="ace-typing2.js")
        session.idle(900.0)
    session.idle(6000.0)


@register_workload("Ace")
def make_ace_workload() -> Workload:
    return Workload(
        name="Ace",
        category=CATEGORY_PRODUCTIVITY,
        description="code editor used by the Cloud9 IDE",
        url="ace.c9.io",
        scripts=[("ace.js", ACE_SOURCE)],
        prepare_fn=_prepare,
        exercise_fn=_exercise,
    )
