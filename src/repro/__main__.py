"""One command-line front door: ``python -m repro <subcommand>``.

Subcommands (all running through one :class:`~repro.api.session.AnalysisSession`):

* ``list`` — available experiments (``--workloads`` for workload names);
* ``run <id ...>`` — run experiments by id (``--json`` for a JSON envelope);
* ``experiments`` — run every registered experiment (the full reproduction);
* ``report`` — the case-study report (Tables 2-3 + Amdahl bounds), with
  ``--json`` for machine-readable rows and ``--workloads`` to restrict the
  batch;
* ``trace record|replay|info`` — the record-once / replay-many trace layer:
  capture a workload's full event trace to a file, replay any tracer subset
  from it (byte-identical reports, no guest execution), or inspect one;
* ``serve`` — the analysis-as-a-service daemon (HTTP+JSON, disk-backed
  trace store, single-flight dedup; see :mod:`repro.serve`);
* ``submit`` — client for a running ``serve`` daemon.

``python -m repro.experiments`` remains as the legacy entry point.

SIGINT/SIGTERM exit cleanly with code 130 (no traceback): cleanup handlers
run — the serve daemon flushes its disk store index — and the interruption
is reported in one line on stderr.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading


def _cmd_list(session, args) -> int:
    from .experiments.registry import build_registry

    if args.workloads:
        from .workloads import workload_names

        names = workload_names()
        if args.json:
            # One row per workload with its content fingerprint, so clients
            # can key serve submissions and cache lookups without running
            # anything (the daemon's /v1/workloads reports the same rows).
            from .engine.cache import workload_fingerprint
            from .workloads import get_workload

            rows = [
                {"name": name, "fingerprint": workload_fingerprint(get_workload(name))}
                for name in names
            ]
            print(json.dumps(rows, indent=2))
        else:
            for name in names:
                print(name)
        return 0
    registry = build_registry(session=session)
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "id": experiment.experiment_id,
                        "artifact": experiment.paper_artifact,
                        "description": experiment.description,
                    }
                    for experiment in registry.values()
                ],
                indent=2,
            )
        )
        return 0
    for experiment_id, experiment in registry.items():
        print(f"{experiment_id:<22} {experiment.paper_artifact:<22} {experiment.description}")
    return 0


def _run_experiments(session, experiment_ids, as_json: bool) -> int:
    registry = session.experiments()
    selected = experiment_ids if experiment_ids is not None else list(registry)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(registry)}", file=sys.stderr)
        return 2
    if as_json:
        envelope = [
            {
                "id": experiment_id,
                "artifact": registry[experiment_id].paper_artifact,
                "description": registry[experiment_id].description,
                "output": registry[experiment_id].run(),
            }
            for experiment_id in selected
        ]
        print(json.dumps(envelope, indent=2))
        return 0
    for experiment_id in selected:
        experiment = registry[experiment_id]
        print(f"=== {experiment.experiment_id} ({experiment.paper_artifact}) ===")
        print(experiment.run())
        print()
    return 0


def _cmd_run(session, args) -> int:
    if args.speculate:
        return _cmd_run_speculate(session, args)
    if not args.experiments:
        print("run: experiment ids required (or use --speculate)", file=sys.stderr)
        return 2
    return _run_experiments(session, args.experiments, args.json)


def _cmd_run_speculate(session, args) -> int:
    """``run --speculate [workload ...]``: executed vs modelled speedup per nest."""
    from .api.spec import RunSpec
    from .workloads import workload_names

    known = workload_names()
    names = args.experiments or known
    if not names:
        print("run --speculate: no workloads given and none are registered", file=sys.stderr)
        print("usage: python -m repro run --speculate [workload ...]", file=sys.stderr)
        return 2
    unknown = [name for name in names if name not in known]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(known)}", file=sys.stderr)
        return 2
    spec = RunSpec.speculate(
        workers=args.spec_workers,
        strategy=args.spec_strategy,
        processes=args.spec_processes,
    )
    if args.tier is not None:
        spec = spec.with_tier(args.tier)
    envelope = []
    for name in names:
        result = session.run(name, spec)
        if args.json:
            envelope.append(result.to_dict())
        else:
            print(result.report_text)
            print()
    if args.json:
        print(json.dumps(envelope, indent=2))
    return 0


def _cmd_experiments(session, args) -> int:
    return _run_experiments(session, None, as_json=False)


def _cmd_report(session, args) -> int:
    if args.workloads:
        from .workloads import workload_names

        known = workload_names()
        unknown = [name for name in args.workloads if name not in known]
        if unknown:
            print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
            print(f"known: {', '.join(known)}", file=sys.stderr)
            return 2
    result = session.case_study(args.workloads or None)
    tables = result.tables
    if args.json:
        print(
            json.dumps(
                {
                    "table2": [row.as_dict() for row in tables.table2],
                    "table3": [row.as_dict() for row in tables.table3],
                },
                indent=2,
            )
        )
        return 0
    print(tables.render_table2())
    print()
    print(tables.render_table3())
    print()
    print(tables.render_speedups())
    return 0


def _trace_slug(name: str) -> str:
    import re

    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") or "workload"


def _cmd_trace(session, args) -> int:
    from .jsvm.hooks import (
        Trace,
        TraceError,
        TraceWriter,
        describe_mask,
        open_trace_source,
    )

    if args.trace_command == "record":
        from .jsvm.hooks import trace_encoding
        from .workloads import workload_names

        known = workload_names()
        if args.workload not in known:
            print(f"unknown workload: {args.workload}", file=sys.stderr)
            print(f"known: {', '.join(known)}", file=sys.stderr)
            return 2
        encoding = args.encoding or trace_encoding()
        trace = session.record_trace(args.workload)
        default_ext = ".trace.bin" if encoding == "binary" else ".trace.json.gz"
        path = args.output or f"{_trace_slug(args.workload)}{default_ext}"
        chunks = TraceWriter.write_trace(
            trace, path, chunk_events=args.chunk_events, encoding=encoding
        )
        layout = "1 chunk" if chunks <= 1 else f"{chunks} chunks"
        print(
            f"recorded {len(trace.events)} events "
            f"[{describe_mask(trace.mask)}] for {trace.workload!r} "
            f"-> {path} ({encoding}, {layout})"
        )
        return 0

    if not getattr(args, "file", None):
        print(
            f"trace {args.trace_command}: a trace file is required "
            "(record one with `python -m repro trace record <workload>`)",
            file=sys.stderr,
        )
        return 2
    try:
        # A chunked file opens as a streaming source: info and replay then
        # walk it chunk-at-a-time and never hold the full event list.
        trace = open_trace_source(args.file)
    except TraceError as exc:
        print(f"trace {args.trace_command}: {exc}", file=sys.stderr)
        return 2
    streamed = not isinstance(trace, Trace)

    if args.trace_command == "info":
        try:
            if streamed:
                tables = trace.table_counts()
                events_total = trace.event_count
            else:
                tables = {
                    "strings": len(trace.strings),
                    "nodes": len(trace.nodes),
                    "objects": len(trace.objects),
                }
                events_total = len(trace.events)
            event_counts = trace.event_counts()
        except TraceError as exc:
            print(f"trace info: {exc}", file=sys.stderr)
            return 2
        info = {
            "workload": trace.workload,
            "fingerprint": trace.fingerprint,
            "version": trace.version,
            "encoding": getattr(trace, "encoding", "json"),
            "mask": trace.mask,
            "mask_names": describe_mask(trace.mask),
            "ms_per_op": trace.ms_per_op,
            "start_ms": trace.start_ms,
            "end_ms": trace.end_ms,
            "duration_seconds": (trace.end_ms - trace.start_ms) / 1000.0,
            "events": events_total,
            "event_counts": event_counts,
            "strings": tables["strings"],
            "nodes": tables["nodes"],
            "objects": tables["objects"],
            "environments": trace.env_count,
            "digest": trace.digest(),
            "streamed": streamed,
            "chunks": trace.chunk_count() if streamed else 1,
            "file_bytes": os.path.getsize(args.file),
        }
        if streamed:
            info["chunk_events"] = trace.chunk_events
        if args.json:
            print(json.dumps(info, indent=2))
        else:
            for key, value in info.items():
                if key == "event_counts":
                    print("event_counts:")
                    for name, count in sorted(value.items()):
                        print(f"  {name:<18} {count}")
                else:
                    print(f"{key:<18} {value}")
        return 0

    # replay
    from .api.spec import ALL_TRACERS, RunSpec

    modes = args.modes.split(",") if args.modes else list(ALL_TRACERS)
    unknown = [mode for mode in modes if mode not in ALL_TRACERS]
    if unknown:
        print(f"unknown modes: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_TRACERS)}", file=sys.stderr)
        return 2
    try:
        spec = RunSpec.composed(*modes, focus_line=args.focus_line)
        result = session.replay_trace(trace, spec)
    except (TraceError, KeyError, ValueError) as exc:
        print(f"trace replay: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.report_text)
        print()
        print(f"[{result.provenance}] no guest code was executed")
    return 0


def _cmd_serve(session, args) -> int:
    """``serve``: the analysis-as-a-service daemon (blocks until interrupted)."""
    del session  # the daemon owns its own session, wired to the disk store
    from .serve.server import run_daemon

    return run_daemon(
        store_dir=args.store_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_tier=args.tier,
        request_log=args.request_log,
        port_file=args.port_file,
        use_pool=args.use_pool,
    )


def _cmd_submit(session, args) -> int:
    """``submit``: send workloads (or a script file) to a running daemon."""
    del session  # pure client; nothing runs in this process
    from .serve.client import ServeClient, ServeError

    modes = args.modes.split(",") if args.modes else ["lightweight"]
    script = None
    if args.script is not None:
        try:
            with open(args.script, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"submit: cannot read script {args.script!r}: {exc}", file=sys.stderr)
            return 2
        script = {
            "name": args.script_name or args.script,
            "sources": [{"path": args.script, "source": source}],
        }
        if args.workloads:
            print("submit: give either workload names or --script, not both", file=sys.stderr)
            return 2
    elif not args.workloads:
        print("submit: workload names (or --script FILE) required", file=sys.stderr)
        print("usage: python -m repro submit <workload ...> [--url URL]", file=sys.stderr)
        return 2

    client = ServeClient(args.url)
    envelopes = []
    try:
        if script is not None:
            envelopes.append(
                client.analyze(
                    script=script,
                    modes=modes,
                    tier=args.tier,
                    focus_line=args.focus_line,
                    retries=args.retries,
                )
            )
        elif len(args.workloads) == 1:
            envelopes.append(
                client.analyze(
                    workload=args.workloads[0],
                    modes=modes,
                    tier=args.tier,
                    focus_line=args.focus_line,
                    retries=args.retries,
                )
            )
        else:
            # Batch submissions stream back as each analysis completes.
            envelopes.extend(client.analyze_many(args.workloads, modes=modes, tier=args.tier))
    except ServeError as error:
        print(f"submit: {error}", file=sys.stderr)
        if error.retry_after is not None:
            print(f"submit: server busy; retry in {error.retry_after}s", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(envelopes if len(envelopes) > 1 else envelopes[0], indent=2))
        return 0
    failures = 0
    for envelope in envelopes:
        if "error" in envelope:
            failures += 1
            print(f"submit: {envelope['error'].get('message')}", file=sys.stderr)
            continue
        server = envelope.get("server", {})
        result = envelope.get("result", {})
        print(result.get("report_text", ""))
        print(
            f"[{result.get('provenance', 'live')}] cache={server.get('cache')} "
            f"run={server.get('run_ms')}ms queued={server.get('queued_ms')}ms"
        )
        print()
    return 2 if failures else 0


def _add_pool_flags(subparser: argparse.ArgumentParser) -> None:
    """``--pool`` / ``--no-pool``: persistent worker-pool runtime toggle.

    The default (``None``) defers to the ``REPRO_ENGINE_POOL`` environment
    variable, so the flags override the environment in either direction.
    """
    group = subparser.add_mutually_exclusive_group()
    group.add_argument(
        "--pool",
        dest="use_pool",
        action="store_true",
        default=None,
        help="run analyses on the persistent worker pool (default: REPRO_ENGINE_POOL)",
    )
    group.add_argument(
        "--no-pool",
        dest="use_pool",
        action="store_false",
        help="force fork-per-batch fan-out even when REPRO_ENGINE_POOL=1",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the PPoPP'15 web-application parallelism study",
    )
    subparsers = parser.add_subparsers(dest="command")

    p_list = subparsers.add_parser("list", help="list experiments (or --workloads)")
    p_list.add_argument("--workloads", action="store_true", help="list workload names instead")
    p_list.add_argument("--json", action="store_true", help="machine-readable output")
    p_list.set_defaults(func=_cmd_list)

    p_run = subparsers.add_parser(
        "run", help="run experiments by id (or workloads with --speculate)"
    )
    p_run.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (see `list`); with --speculate: workload names (default all)",
    )
    p_run.add_argument("--json", action="store_true", help="JSON envelope per experiment")
    p_run.add_argument(
        "--tier",
        choices=["auto", "bytecode", "closure"],
        default=None,
        help="execution-tier policy (byte-identical results; speed only)",
    )
    p_run.add_argument(
        "--speculate",
        action="store_true",
        help="speculatively re-execute every DOALL nest and report executed vs modelled speedup",
    )
    p_run.add_argument(
        "--spec-workers", type=int, default=None, help="speculation worker count (default 8)"
    )
    p_run.add_argument(
        "--spec-strategy",
        choices=["block", "cyclic"],
        default=None,
        help="iteration partitioning strategy (default block)",
    )
    p_run.add_argument(
        "--spec-processes",
        action="store_true",
        help="also replay chunks in forked OS processes for wall-clock numbers",
    )
    _add_pool_flags(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_experiments = subparsers.add_parser(
        "experiments", help="run every experiment (the full reproduction)"
    )
    _add_pool_flags(p_experiments)
    p_experiments.set_defaults(func=_cmd_experiments)

    p_report = subparsers.add_parser(
        "report", help="case-study report: Tables 2-3 + Amdahl bounds"
    )
    p_report.add_argument("--json", action="store_true", help="machine-readable rows")
    p_report.add_argument(
        "--workloads", nargs="*", default=None, help="restrict the batch to these workloads"
    )
    _add_pool_flags(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_trace = subparsers.add_parser(
        "trace", help="record-once / replay-many event traces"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_trace_record = trace_sub.add_parser(
        "record", help="execute a workload once and save its full event trace"
    )
    p_trace_record.add_argument("workload", help="workload name (see `list --workloads`)")
    p_trace_record.add_argument(
        "-o",
        "--output",
        default=None,
        help=(
            "output file (default <workload>.trace.bin for the binary "
            "encoding, <workload>.trace.json.gz for json; .gz = compressed)"
        ),
    )
    p_trace_record.add_argument(
        "--encoding",
        choices=("binary", "json"),
        default=None,
        help=(
            "on-disk trace encoding (default: REPRO_TRACE_ENCODING or "
            "binary; json writes the v1 format, which stays readable forever)"
        ),
    )
    p_trace_record.add_argument(
        "--chunk-events",
        type=int,
        default=None,
        metavar="N",
        help=(
            "events per chunk for the streaming file layout (default: "
            "REPRO_TRACE_CHUNK_EVENTS or 65536; traces that fit in one "
            "chunk use the legacy single-document format)"
        ),
    )
    p_trace_record.set_defaults(func=_cmd_trace)

    p_trace_replay = trace_sub.add_parser(
        "replay", help="replay analyses from a trace file (no guest execution)"
    )
    p_trace_replay.add_argument("file", help="trace file written by `trace record`")
    p_trace_replay.add_argument(
        "--modes",
        default=None,
        help="comma-separated tracer modes (default: all four)",
    )
    p_trace_replay.add_argument(
        "--focus-line", type=int, default=None, help="dependence focus line"
    )
    p_trace_replay.add_argument("--json", action="store_true", help="JSON envelope")
    p_trace_replay.set_defaults(func=_cmd_trace)

    p_trace_info = trace_sub.add_parser("info", help="inspect a trace file")
    p_trace_info.add_argument(
        "file", nargs="?", default=None, help="trace file written by `trace record`"
    )
    p_trace_info.add_argument("--json", action="store_true", help="machine-readable output")
    p_trace_info.set_defaults(func=_cmd_trace)

    p_serve = subparsers.add_parser(
        "serve", help="analysis-as-a-service daemon (HTTP+JSON, shared trace store)"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p_serve.add_argument(
        "--port", type=int, default=8737, help="TCP port (0 = pick a free one; default 8737)"
    )
    p_serve.add_argument(
        "--store-dir",
        default=None,
        help="directory for the disk-backed trace store (default: in-memory only)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4, help="analysis worker threads (default 4)"
    )
    p_serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="admission queue depth; overflow answers 429 (default 64)",
    )
    p_serve.add_argument(
        "--tier",
        choices=["auto", "bytecode", "closure"],
        default=None,
        help="default execution-tier policy for served runs",
    )
    p_serve.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file once listening (for scripts/CI)",
    )
    p_serve.add_argument(
        "--request-log", action="store_true", help="log every HTTP request to stderr"
    )
    _add_pool_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = subparsers.add_parser(
        "submit", help="submit workloads (or a script) to a running serve daemon"
    )
    p_submit.add_argument(
        "workloads", nargs="*", help="workload names (see `list --workloads`)"
    )
    p_submit.add_argument(
        "--url", default="http://127.0.0.1:8737", help="daemon base URL"
    )
    p_submit.add_argument(
        "--modes",
        default=None,
        help="comma-separated tracer modes (default: lightweight)",
    )
    p_submit.add_argument(
        "--tier", choices=["auto", "bytecode", "closure"], default=None,
        help="execution-tier policy for this submission",
    )
    p_submit.add_argument(
        "--focus-line", type=int, default=None, help="dependence focus line"
    )
    p_submit.add_argument(
        "--script", default=None, help="submit this JavaScript file as an ad-hoc workload"
    )
    p_submit.add_argument(
        "--script-name", default=None, help="workload name for --script (default: the path)"
    )
    p_submit.add_argument(
        "--retries", type=int, default=0,
        help="retry 429 responses this many times, honouring Retry-After",
    )
    p_submit.add_argument("--json", action="store_true", help="print response envelopes as JSON")
    p_submit.set_defaults(func=_cmd_submit)

    return parser


def _install_sigterm_handler():
    """Route SIGTERM through KeyboardInterrupt so cleanup code runs.

    Context managers and ``finally`` blocks (the serve daemon's disk-store
    index flush among them) unwind exactly as on Ctrl-C; :func:`main` then
    converts the interrupt into a clean exit code 130.  Returns an undo
    callable (signal handlers can only be installed from the main thread —
    elsewhere, e.g. tests driving ``main()`` from a worker thread, this is a
    no-op).
    """
    if threading.current_thread() is not threading.main_thread():
        return lambda: None

    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    return lambda: signal.signal(signal.SIGTERM, previous)


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    from .api.session import AnalysisSession

    restore_sigterm = _install_sigterm_handler()
    try:
        with AnalysisSession(
            default_tier=getattr(args, "tier", None),
            use_pool=getattr(args, "use_pool", None),
        ) as session:
            return args.func(session, args)
    except KeyboardInterrupt:
        # SIGINT or SIGTERM mid-run: cleanup already ran while unwinding;
        # report the interruption without a traceback, exit 130 (128+SIGINT).
        print(f"{args.command}: interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Output was piped into a consumer that stopped reading (e.g. head).
        return 0
    finally:
        restore_sigterm()


if __name__ == "__main__":  # pragma: no cover - CLI glue
    sys.exit(main())
