"""One command-line front door: ``python -m repro <subcommand>``.

Subcommands (all running through one :class:`~repro.api.session.AnalysisSession`):

* ``list`` — available experiments (``--workloads`` for workload names);
* ``run <id ...>`` — run experiments by id (``--json`` for a JSON envelope);
* ``experiments`` — run every registered experiment (the full reproduction);
* ``report`` — the case-study report (Tables 2-3 + Amdahl bounds), with
  ``--json`` for machine-readable rows and ``--workloads`` to restrict the
  batch.

``python -m repro.experiments`` remains as the legacy entry point.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_list(session, args) -> int:
    from .experiments.registry import build_registry

    if args.workloads:
        from .workloads import workload_names

        names = workload_names()
        if args.json:
            print(json.dumps(names, indent=2))
        else:
            for name in names:
                print(name)
        return 0
    registry = build_registry(session=session)
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "id": experiment.experiment_id,
                        "artifact": experiment.paper_artifact,
                        "description": experiment.description,
                    }
                    for experiment in registry.values()
                ],
                indent=2,
            )
        )
        return 0
    for experiment_id, experiment in registry.items():
        print(f"{experiment_id:<22} {experiment.paper_artifact:<22} {experiment.description}")
    return 0


def _run_experiments(session, experiment_ids, as_json: bool) -> int:
    registry = session.experiments()
    selected = experiment_ids if experiment_ids is not None else list(registry)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(registry)}", file=sys.stderr)
        return 2
    if as_json:
        envelope = [
            {
                "id": experiment_id,
                "artifact": registry[experiment_id].paper_artifact,
                "description": registry[experiment_id].description,
                "output": registry[experiment_id].run(),
            }
            for experiment_id in selected
        ]
        print(json.dumps(envelope, indent=2))
        return 0
    for experiment_id in selected:
        experiment = registry[experiment_id]
        print(f"=== {experiment.experiment_id} ({experiment.paper_artifact}) ===")
        print(experiment.run())
        print()
    return 0


def _cmd_run(session, args) -> int:
    if args.speculate:
        return _cmd_run_speculate(session, args)
    if not args.experiments:
        print("run: experiment ids required (or use --speculate)", file=sys.stderr)
        return 2
    return _run_experiments(session, args.experiments, args.json)


def _cmd_run_speculate(session, args) -> int:
    """``run --speculate [workload ...]``: executed vs modelled speedup per nest."""
    from .api.spec import RunSpec
    from .workloads import workload_names

    known = workload_names()
    names = args.experiments or known
    unknown = [name for name in names if name not in known]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(known)}", file=sys.stderr)
        return 2
    spec = RunSpec.speculate(
        workers=args.spec_workers,
        strategy=args.spec_strategy,
        processes=args.spec_processes,
    )
    envelope = []
    for name in names:
        result = session.run(name, spec)
        if args.json:
            envelope.append(result.to_dict())
        else:
            print(result.report_text)
            print()
    if args.json:
        print(json.dumps(envelope, indent=2))
    return 0


def _cmd_experiments(session, args) -> int:
    return _run_experiments(session, None, as_json=False)


def _cmd_report(session, args) -> int:
    if args.workloads:
        from .workloads import workload_names

        known = workload_names()
        unknown = [name for name in args.workloads if name not in known]
        if unknown:
            print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
            print(f"known: {', '.join(known)}", file=sys.stderr)
            return 2
    result = session.case_study(args.workloads or None)
    tables = result.tables
    if args.json:
        print(
            json.dumps(
                {
                    "table2": [row.as_dict() for row in tables.table2],
                    "table3": [row.as_dict() for row in tables.table3],
                },
                indent=2,
            )
        )
        return 0
    print(tables.render_table2())
    print()
    print(tables.render_table3())
    print()
    print(tables.render_speedups())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the PPoPP'15 web-application parallelism study",
    )
    subparsers = parser.add_subparsers(dest="command")

    p_list = subparsers.add_parser("list", help="list experiments (or --workloads)")
    p_list.add_argument("--workloads", action="store_true", help="list workload names instead")
    p_list.add_argument("--json", action="store_true", help="machine-readable output")
    p_list.set_defaults(func=_cmd_list)

    p_run = subparsers.add_parser(
        "run", help="run experiments by id (or workloads with --speculate)"
    )
    p_run.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (see `list`); with --speculate: workload names (default all)",
    )
    p_run.add_argument("--json", action="store_true", help="JSON envelope per experiment")
    p_run.add_argument(
        "--speculate",
        action="store_true",
        help="speculatively re-execute every DOALL nest and report executed vs modelled speedup",
    )
    p_run.add_argument(
        "--spec-workers", type=int, default=None, help="speculation worker count (default 8)"
    )
    p_run.add_argument(
        "--spec-strategy",
        choices=["block", "cyclic"],
        default=None,
        help="iteration partitioning strategy (default block)",
    )
    p_run.add_argument(
        "--spec-processes",
        action="store_true",
        help="also replay chunks in forked OS processes for wall-clock numbers",
    )
    p_run.set_defaults(func=_cmd_run)

    p_experiments = subparsers.add_parser(
        "experiments", help="run every experiment (the full reproduction)"
    )
    p_experiments.set_defaults(func=_cmd_experiments)

    p_report = subparsers.add_parser(
        "report", help="case-study report: Tables 2-3 + Amdahl bounds"
    )
    p_report.add_argument("--json", action="store_true", help="machine-readable rows")
    p_report.add_argument(
        "--workloads", nargs="*", default=None, help="restrict the batch to these workloads"
    )
    p_report.set_defaults(func=_cmd_report)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    from .api.session import AnalysisSession

    try:
        with AnalysisSession() as session:
            return args.func(session, args)
    except BrokenPipeError:
        # Output was piped into a consumer that stopped reading (e.g. head).
        return 0


if __name__ == "__main__":  # pragma: no cover - CLI glue
    sys.exit(main())
