"""One command-line front door: ``python -m repro <subcommand>``.

Subcommands (all running through one :class:`~repro.api.session.AnalysisSession`):

* ``list`` — available experiments (``--workloads`` for workload names);
* ``run <id ...>`` — run experiments by id (``--json`` for a JSON envelope);
* ``experiments`` — run every registered experiment (the full reproduction);
* ``report`` — the case-study report (Tables 2-3 + Amdahl bounds), with
  ``--json`` for machine-readable rows and ``--workloads`` to restrict the
  batch;
* ``trace record|replay|info`` — the record-once / replay-many trace layer:
  capture a workload's full event trace to a file, replay any tracer subset
  from it (byte-identical reports, no guest execution), or inspect one.

``python -m repro.experiments`` remains as the legacy entry point.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_list(session, args) -> int:
    from .experiments.registry import build_registry

    if args.workloads:
        from .workloads import workload_names

        names = workload_names()
        if args.json:
            print(json.dumps(names, indent=2))
        else:
            for name in names:
                print(name)
        return 0
    registry = build_registry(session=session)
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "id": experiment.experiment_id,
                        "artifact": experiment.paper_artifact,
                        "description": experiment.description,
                    }
                    for experiment in registry.values()
                ],
                indent=2,
            )
        )
        return 0
    for experiment_id, experiment in registry.items():
        print(f"{experiment_id:<22} {experiment.paper_artifact:<22} {experiment.description}")
    return 0


def _run_experiments(session, experiment_ids, as_json: bool) -> int:
    registry = session.experiments()
    selected = experiment_ids if experiment_ids is not None else list(registry)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(registry)}", file=sys.stderr)
        return 2
    if as_json:
        envelope = [
            {
                "id": experiment_id,
                "artifact": registry[experiment_id].paper_artifact,
                "description": registry[experiment_id].description,
                "output": registry[experiment_id].run(),
            }
            for experiment_id in selected
        ]
        print(json.dumps(envelope, indent=2))
        return 0
    for experiment_id in selected:
        experiment = registry[experiment_id]
        print(f"=== {experiment.experiment_id} ({experiment.paper_artifact}) ===")
        print(experiment.run())
        print()
    return 0


def _cmd_run(session, args) -> int:
    if args.speculate:
        return _cmd_run_speculate(session, args)
    if not args.experiments:
        print("run: experiment ids required (or use --speculate)", file=sys.stderr)
        return 2
    return _run_experiments(session, args.experiments, args.json)


def _cmd_run_speculate(session, args) -> int:
    """``run --speculate [workload ...]``: executed vs modelled speedup per nest."""
    from .api.spec import RunSpec
    from .workloads import workload_names

    known = workload_names()
    names = args.experiments or known
    if not names:
        print("run --speculate: no workloads given and none are registered", file=sys.stderr)
        print("usage: python -m repro run --speculate [workload ...]", file=sys.stderr)
        return 2
    unknown = [name for name in names if name not in known]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(known)}", file=sys.stderr)
        return 2
    spec = RunSpec.speculate(
        workers=args.spec_workers,
        strategy=args.spec_strategy,
        processes=args.spec_processes,
    )
    if args.tier is not None:
        spec = spec.with_tier(args.tier)
    envelope = []
    for name in names:
        result = session.run(name, spec)
        if args.json:
            envelope.append(result.to_dict())
        else:
            print(result.report_text)
            print()
    if args.json:
        print(json.dumps(envelope, indent=2))
    return 0


def _cmd_experiments(session, args) -> int:
    return _run_experiments(session, None, as_json=False)


def _cmd_report(session, args) -> int:
    if args.workloads:
        from .workloads import workload_names

        known = workload_names()
        unknown = [name for name in args.workloads if name not in known]
        if unknown:
            print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
            print(f"known: {', '.join(known)}", file=sys.stderr)
            return 2
    result = session.case_study(args.workloads or None)
    tables = result.tables
    if args.json:
        print(
            json.dumps(
                {
                    "table2": [row.as_dict() for row in tables.table2],
                    "table3": [row.as_dict() for row in tables.table3],
                },
                indent=2,
            )
        )
        return 0
    print(tables.render_table2())
    print()
    print(tables.render_table3())
    print()
    print(tables.render_speedups())
    return 0


def _trace_slug(name: str) -> str:
    import re

    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") or "workload"


def _cmd_trace(session, args) -> int:
    from .jsvm.hooks import Trace, TraceError, describe_mask

    if args.trace_command == "record":
        from .workloads import workload_names

        known = workload_names()
        if args.workload not in known:
            print(f"unknown workload: {args.workload}", file=sys.stderr)
            print(f"known: {', '.join(known)}", file=sys.stderr)
            return 2
        trace = session.record_trace(args.workload)
        path = args.output or f"{_trace_slug(args.workload)}.trace.json.gz"
        trace.save(path)
        print(
            f"recorded {len(trace.events)} events "
            f"[{describe_mask(trace.mask)}] for {trace.workload!r} -> {path}"
        )
        return 0

    if not getattr(args, "file", None):
        print(
            f"trace {args.trace_command}: a trace file is required "
            "(record one with `python -m repro trace record <workload>`)",
            file=sys.stderr,
        )
        return 2
    try:
        trace = Trace.load(args.file)
    except TraceError as exc:
        print(f"trace {args.trace_command}: {exc}", file=sys.stderr)
        return 2

    if args.trace_command == "info":
        info = {
            "workload": trace.workload,
            "fingerprint": trace.fingerprint,
            "version": trace.version,
            "mask": trace.mask,
            "mask_names": describe_mask(trace.mask),
            "ms_per_op": trace.ms_per_op,
            "start_ms": trace.start_ms,
            "end_ms": trace.end_ms,
            "duration_seconds": (trace.end_ms - trace.start_ms) / 1000.0,
            "events": len(trace.events),
            "event_counts": trace.event_counts(),
            "strings": len(trace.strings),
            "nodes": len(trace.nodes),
            "objects": len(trace.objects),
            "environments": trace.env_count,
            "digest": trace.digest(),
        }
        if args.json:
            print(json.dumps(info, indent=2))
        else:
            for key, value in info.items():
                if key == "event_counts":
                    print("event_counts:")
                    for name, count in sorted(value.items()):
                        print(f"  {name:<18} {count}")
                else:
                    print(f"{key:<18} {value}")
        return 0

    # replay
    from .api.spec import ALL_TRACERS, RunSpec

    modes = args.modes.split(",") if args.modes else list(ALL_TRACERS)
    unknown = [mode for mode in modes if mode not in ALL_TRACERS]
    if unknown:
        print(f"unknown modes: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_TRACERS)}", file=sys.stderr)
        return 2
    try:
        spec = RunSpec.composed(*modes, focus_line=args.focus_line)
        result = session.replay_trace(trace, spec)
    except (TraceError, KeyError, ValueError) as exc:
        print(f"trace replay: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.report_text)
        print()
        print(f"[{result.provenance}] no guest code was executed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the PPoPP'15 web-application parallelism study",
    )
    subparsers = parser.add_subparsers(dest="command")

    p_list = subparsers.add_parser("list", help="list experiments (or --workloads)")
    p_list.add_argument("--workloads", action="store_true", help="list workload names instead")
    p_list.add_argument("--json", action="store_true", help="machine-readable output")
    p_list.set_defaults(func=_cmd_list)

    p_run = subparsers.add_parser(
        "run", help="run experiments by id (or workloads with --speculate)"
    )
    p_run.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (see `list`); with --speculate: workload names (default all)",
    )
    p_run.add_argument("--json", action="store_true", help="JSON envelope per experiment")
    p_run.add_argument(
        "--tier",
        choices=["auto", "bytecode", "closure"],
        default=None,
        help="execution-tier policy (byte-identical results; speed only)",
    )
    p_run.add_argument(
        "--speculate",
        action="store_true",
        help="speculatively re-execute every DOALL nest and report executed vs modelled speedup",
    )
    p_run.add_argument(
        "--spec-workers", type=int, default=None, help="speculation worker count (default 8)"
    )
    p_run.add_argument(
        "--spec-strategy",
        choices=["block", "cyclic"],
        default=None,
        help="iteration partitioning strategy (default block)",
    )
    p_run.add_argument(
        "--spec-processes",
        action="store_true",
        help="also replay chunks in forked OS processes for wall-clock numbers",
    )
    p_run.set_defaults(func=_cmd_run)

    p_experiments = subparsers.add_parser(
        "experiments", help="run every experiment (the full reproduction)"
    )
    p_experiments.set_defaults(func=_cmd_experiments)

    p_report = subparsers.add_parser(
        "report", help="case-study report: Tables 2-3 + Amdahl bounds"
    )
    p_report.add_argument("--json", action="store_true", help="machine-readable rows")
    p_report.add_argument(
        "--workloads", nargs="*", default=None, help="restrict the batch to these workloads"
    )
    p_report.set_defaults(func=_cmd_report)

    p_trace = subparsers.add_parser(
        "trace", help="record-once / replay-many event traces"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_trace_record = trace_sub.add_parser(
        "record", help="execute a workload once and save its full event trace"
    )
    p_trace_record.add_argument("workload", help="workload name (see `list --workloads`)")
    p_trace_record.add_argument(
        "-o",
        "--output",
        default=None,
        help="output file (default <workload>.trace.json.gz; .gz = compressed)",
    )
    p_trace_record.set_defaults(func=_cmd_trace)

    p_trace_replay = trace_sub.add_parser(
        "replay", help="replay analyses from a trace file (no guest execution)"
    )
    p_trace_replay.add_argument("file", help="trace file written by `trace record`")
    p_trace_replay.add_argument(
        "--modes",
        default=None,
        help="comma-separated tracer modes (default: all four)",
    )
    p_trace_replay.add_argument(
        "--focus-line", type=int, default=None, help="dependence focus line"
    )
    p_trace_replay.add_argument("--json", action="store_true", help="JSON envelope")
    p_trace_replay.set_defaults(func=_cmd_trace)

    p_trace_info = trace_sub.add_parser("info", help="inspect a trace file")
    p_trace_info.add_argument(
        "file", nargs="?", default=None, help="trace file written by `trace record`"
    )
    p_trace_info.add_argument("--json", action="store_true", help="machine-readable output")
    p_trace_info.set_defaults(func=_cmd_trace)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    from .api.session import AnalysisSession

    try:
        with AnalysisSession(default_tier=getattr(args, "tier", None)) as session:
            return args.func(session, args)
    except BrokenPipeError:
        # Output was piped into a consumer that stopped reading (e.g. head).
        return 0


if __name__ == "__main__":  # pragma: no cover - CLI glue
    sys.exit(main())
