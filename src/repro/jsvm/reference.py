"""A slow reference evaluator for differential testing of the compiled core.

The production execution path lowers the AST to Python closures once
(:mod:`repro.jsvm.compiler`) and runs those.  This module re-implements the
same semantics as a plain recursive tree walk — no compilation, no caching,
no cleverness — so that the two implementations can be compared
*differentially*: identical programs must produce identical values, identical
side effects (heap, console), identical virtual-clock totals and identical
instrumentation events.

The walker deliberately mirrors the compiled path operation by operation:

* every expression evaluation charges exactly one virtual-clock operation at
  entry, every statement charges one more (and bumps the statement counter),
  so clock totals match to the last tick;
* hook events fire in the same order with the same arguments;
* evaluation order (operand before operator, value before target re-
  evaluation in compound member assignment, ...) is byte-for-byte the same.

:class:`ReferenceInterpreter` subclasses :class:`~repro.jsvm.interpreter.Interpreter`
and overrides only ``run`` and the guest-function call path, so builtins that
re-enter guest code (``Array.prototype.sort`` comparators, ``forEach``
callbacks) also execute through the reference walk.

Speculation is not supported here (``speculation``/``iteration_filter`` are
production-path features); the differential suite runs both engines
unspeculated.
"""

from __future__ import annotations

from typing import Any, List, Optional

from . import ast_nodes as ast
from .compiler import (
    BreakSignal,
    ContinueSignal,
    ReturnSignal,
    build_hoist_plan,
    resolve_binary,
    run_hoist_plan,
)
from .errors import JSReferenceError, JSRuntimeError, JSThrownValue, JSTypeError
from .hooks import EV_BRANCH, EV_ENV, EV_FUNCTION, EV_LOOP, EV_STATEMENT, EV_VAR
from .interpreter import CallFrame, Interpreter
from .scope import Environment
from .values import (
    NULL,
    UNDEFINED,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    is_callable,
    strict_equals,
    to_boolean,
    to_number,
    to_property_key,
    to_string,
    type_of,
)


class ReferenceInterpreter(Interpreter):
    """Tree-walking twin of the compiled execution core."""

    # ------------------------------------------------------------------ entry
    def run(self, program: ast.Program, env: Optional[Environment] = None) -> Any:
        env = env or self.global_env
        run_hoist_plan(build_hoist_plan(program.body), self, env)
        result: Any = UNDEFINED
        for statement in program.body:
            result = self._exec(statement, env)
        return result

    def call_function(
        self,
        func: Any,
        this: Any = UNDEFINED,
        args: Optional[List[Any]] = None,
        call_node: Optional[ast.Node] = None,
    ) -> Any:
        args = args or []
        if isinstance(func, NativeFunction):
            return super().call_function(func, this, args, call_node)
        if not isinstance(func, JSFunction):
            return super().call_function(func, this, args, call_node)
        from .errors import InterpreterLimitError

        if len(self.call_stack) >= self.max_call_depth:
            raise InterpreterLimitError("maximum guest call depth exceeded")

        env = Environment(parent=func.closure, is_function_scope=True, label=func.name)
        if self.trace_mask & EV_ENV:
            self.hooks.env_created(self, env, "function")
        env.declare_let("this", this)
        env.declare_let("arguments", JSArray(list(args), prototype=self.array_prototype))
        bindings = env.bindings
        for index, param in enumerate(func.params):
            bindings[param] = args[index] if index < len(args) else UNDEFINED

        frame = CallFrame(func.name, call_line=getattr(call_node, "line", 0))
        self.call_stack.append(frame)
        self.stats.calls += 1
        if self.trace_mask & EV_FUNCTION:
            self.hooks.function_enter(self, func, call_node)
        try:
            body = func.body
            run_hoist_plan(build_hoist_plan(body.body), self, env)
            for statement in body.body:
                self._exec(statement, env)
            return UNDEFINED
        except ReturnSignal as signal:
            return signal.value
        finally:
            if self.trace_mask & EV_FUNCTION:
                self.hooks.function_exit(self, func)
            self.call_stack.pop()

    # -------------------------------------------------------------- statements
    def _exec(self, node: ast.Node, env: Environment) -> Any:
        """Full statement semantics: charge, count, hook, then the body."""
        self._charge()
        self.stats.statements += 1
        if self.trace_mask & EV_STATEMENT:
            self.hooks.statement(self, node)
        return self._exec_body(node, env)

    def _exec_body(self, node: ast.Node, env: Environment) -> Any:
        method = _STATEMENTS.get(type(node))
        if method is None:
            # Expression in a statement list: the statement step charged
            # above, the expression evaluation charges again.
            return self._eval(node, env)
        return method(self, node, env)

    def _stmt_variable_declaration(self, node: ast.VariableDeclaration, env: Environment) -> Any:
        kind_keyword = node.kind_keyword
        for declarator in node.declarations:
            has_init = declarator.init is not None
            value = self._eval(declarator.init, env) if has_init else UNDEFINED
            if kind_keyword == "var":
                if has_init:
                    env.declare_var(declarator.name, value)
                else:
                    env.declare_var(declarator.name)
                target_env = env.nearest_function_scope()
            else:
                env.declare_let(declarator.name, value, constant=kind_keyword == "const")
                target_env = env
            if self.trace_mask & EV_VAR and has_init:
                self.hooks.var_write(self, declarator.name, target_env, value, declarator)
        return UNDEFINED

    def _stmt_function_declaration(self, node: ast.FunctionDeclaration, env: Environment) -> Any:
        if not env.has(node.name):
            func = self.make_function(node.name, node.params, node.body, env, node)
            env.declare_var(node.name, func)
        return UNDEFINED

    def _stmt_block(self, node: ast.BlockStatement, env: Environment) -> Any:
        block_env = Environment(parent=env, is_function_scope=False, label="block")
        if self.trace_mask & EV_ENV:
            self.hooks.env_created(self, block_env, "block")
        result: Any = UNDEFINED
        for statement in node.body:
            result = self._exec(statement, block_env)
        return result

    def _stmt_expression(self, node: ast.ExpressionStatement, env: Environment) -> Any:
        return self._eval(node.expression, env)

    def _stmt_if(self, node: ast.IfStatement, env: Environment) -> Any:
        taken = to_boolean(self._eval(node.test, env))
        if self.trace_mask & EV_BRANCH:
            self.hooks.branch(self, node, taken)
        if taken:
            return self._exec(node.consequent, env)
        if node.alternate is not None:
            return self._exec(node.alternate, env)
        return UNDEFINED

    def _stmt_for(self, node: ast.ForStatement, env: Environment) -> Any:
        loop_env = Environment(parent=env, is_function_scope=False, label="for")
        mask = self.trace_mask
        if mask & EV_ENV:
            self.hooks.env_created(self, loop_env, "block")
        if node.init is not None:
            self._exec(node.init, loop_env)
        wants_loops = mask & EV_LOOP
        wants_envs = mask & EV_ENV
        if wants_loops:
            self.hooks.loop_enter(self, node)
        trip = 0
        try:
            while True:
                if node.test is not None and not to_boolean(self._eval(node.test, loop_env)):
                    break
                if wants_loops:
                    self.hooks.loop_iteration(self, node, trip)
                trip += 1
                self.stats.loop_iterations += 1
                iteration_env = Environment(parent=loop_env, is_function_scope=False, label="for-iter")
                if wants_envs:
                    self.hooks.env_created(self, iteration_env, "block")
                try:
                    self._exec(node.body, iteration_env)
                except ContinueSignal:
                    pass
                except BreakSignal:
                    break
                if node.update is not None:
                    self._eval(node.update, loop_env)
        finally:
            if wants_loops:
                self.hooks.loop_exit(self, node, trip)
        return UNDEFINED

    def _stmt_for_in(self, node: ast.ForInStatement, env: Environment) -> Any:
        iterable = self._eval(node.iterable, env)
        if node.of_loop:
            if isinstance(iterable, JSArray):
                keys: List[Any] = list(iterable.elements)
            elif isinstance(iterable, str):
                keys = list(iterable)
            else:
                raise JSTypeError("for...of target is not iterable", node.line)
        else:
            if isinstance(iterable, JSArray):
                keys = [str(i) for i in range(len(iterable.elements))]
            elif isinstance(iterable, JSObject):
                keys = iterable.own_keys()
            elif isinstance(iterable, str):
                keys = [str(i) for i in range(len(iterable))]
            else:
                keys = []

        loop_env = Environment(parent=env, is_function_scope=False, label="for-in")
        mask = self.trace_mask
        if mask & EV_ENV:
            self.hooks.env_created(self, loop_env, "block")
        if node.declaration_kind == "var":
            loop_env.declare_var(node.target_name)
        elif node.declaration_kind in ("let", "const"):
            loop_env.declare_let(node.target_name, UNDEFINED)

        wants_loops = mask & EV_LOOP
        wants_envs = mask & EV_ENV
        if wants_loops:
            self.hooks.loop_enter(self, node)
        trip = 0
        try:
            for key in keys:
                if wants_loops:
                    self.hooks.loop_iteration(self, node, trip)
                trip += 1
                self.stats.loop_iterations += 1
                self._set_variable(node.target_name, key, loop_env, node)
                iteration_env = Environment(parent=loop_env, is_function_scope=False, label="forin-iter")
                if wants_envs:
                    self.hooks.env_created(self, iteration_env, "block")
                try:
                    self._exec(node.body, iteration_env)
                except ContinueSignal:
                    continue
                except BreakSignal:
                    break
        finally:
            if wants_loops:
                self.hooks.loop_exit(self, node, trip)
        return UNDEFINED

    def _stmt_while(self, node: ast.WhileStatement, env: Environment) -> Any:
        mask = self.trace_mask
        wants_loops = mask & EV_LOOP
        wants_envs = mask & EV_ENV
        if wants_loops:
            self.hooks.loop_enter(self, node)
        trip = 0
        try:
            while to_boolean(self._eval(node.test, env)):
                if wants_loops:
                    self.hooks.loop_iteration(self, node, trip)
                trip += 1
                self.stats.loop_iterations += 1
                iteration_env = Environment(parent=env, is_function_scope=False, label="while-iter")
                if wants_envs:
                    self.hooks.env_created(self, iteration_env, "block")
                try:
                    self._exec(node.body, iteration_env)
                except ContinueSignal:
                    continue
                except BreakSignal:
                    break
        finally:
            if wants_loops:
                self.hooks.loop_exit(self, node, trip)
        return UNDEFINED

    def _stmt_do_while(self, node: ast.DoWhileStatement, env: Environment) -> Any:
        mask = self.trace_mask
        wants_loops = mask & EV_LOOP
        wants_envs = mask & EV_ENV
        if wants_loops:
            self.hooks.loop_enter(self, node)
        trip = 0
        try:
            while True:
                if wants_loops:
                    self.hooks.loop_iteration(self, node, trip)
                trip += 1
                self.stats.loop_iterations += 1
                iteration_env = Environment(parent=env, is_function_scope=False, label="do-iter")
                if wants_envs:
                    self.hooks.env_created(self, iteration_env, "block")
                try:
                    self._exec(node.body, iteration_env)
                except ContinueSignal:
                    pass
                except BreakSignal:
                    break
                if not to_boolean(self._eval(node.test, env)):
                    break
        finally:
            if wants_loops:
                self.hooks.loop_exit(self, node, trip)
        return UNDEFINED

    def _stmt_return(self, node: ast.ReturnStatement, env: Environment) -> Any:
        value = UNDEFINED if node.argument is None else self._eval(node.argument, env)
        raise ReturnSignal(value)

    def _stmt_break(self, node: ast.BreakStatement, env: Environment) -> Any:
        raise BreakSignal()

    def _stmt_continue(self, node: ast.ContinueStatement, env: Environment) -> Any:
        raise ContinueSignal()

    def _stmt_throw(self, node: ast.ThrowStatement, env: Environment) -> Any:
        raise JSThrownValue(self._eval(node.argument, env), node.line)

    def _stmt_try(self, node: ast.TryStatement, env: Environment) -> Any:
        handler = node.handler
        try:
            self._exec(node.block, env)
        except JSThrownValue as thrown:
            if handler is not None:
                handler_env = Environment(parent=env, is_function_scope=False, label="catch")
                if self.trace_mask & EV_ENV:
                    self.hooks.env_created(self, handler_env, "block")
                if handler.param:
                    handler_env.declare_let(handler.param, thrown.value)
                self._exec(handler.body, handler_env)
            else:
                raise
        except JSRuntimeError as error:
            if handler is not None:
                handler_env = Environment(parent=env, is_function_scope=False, label="catch")
                if handler.param:
                    error_obj = self.make_object()
                    error_obj.set("message", error.raw_message)
                    error_obj.set("name", type(error).__name__)
                    handler_env.declare_let(handler.param, error_obj)
                self._exec(handler.body, handler_env)
            else:
                raise
        finally:
            if node.finalizer is not None:
                self._exec(node.finalizer, env)
        return UNDEFINED

    def _stmt_switch(self, node: ast.SwitchStatement, env: Environment) -> Any:
        value = self._eval(node.discriminant, env)
        matched = False
        try:
            for case in node.cases:
                if not matched and case.test is not None:
                    if strict_equals(value, self._eval(case.test, env)):
                        matched = True
                        if self.trace_mask & EV_BRANCH:
                            self.hooks.branch(self, case, True)
                if matched:
                    for statement in case.body:
                        self._exec(statement, env)
            if not matched:
                for case in node.cases:
                    if case.test is None:
                        matched = True
                    if matched:
                        for statement in case.body:
                            self._exec(statement, env)
        except BreakSignal:
            pass
        return UNDEFINED

    def _stmt_empty(self, node: ast.EmptyStatement, env: Environment) -> Any:
        return UNDEFINED

    # ------------------------------------------------------------- expressions
    def _eval(self, node: ast.Node, env: Environment) -> Any:
        method = _EXPRESSIONS.get(type(node))
        if method is not None:
            return method(self, node, env)
        # Statement node in expression position (e.g. a for-init declaration):
        # one charge, then the statement body without counter or hook.
        self._charge()
        body = _STATEMENTS.get(type(node))
        if body is None:
            raise JSRuntimeError(f"cannot evaluate node {node.kind}", node.line)
        return body(self, node, env)

    def _member_key(self, node: ast.MemberExpression, env: Environment) -> str:
        if node.computed:
            return to_property_key(self._eval(node.property, env))
        return node.property.value

    def _read_identifier_unchecked(self, node: ast.Identifier, env: Environment) -> Any:
        """Uncharged identifier read (update/compound-assignment targets)."""
        holder = env.lookup_env(node.name)
        if holder is None:
            raise JSReferenceError(f"{node.name} is not defined", node.line)
        if self.trace_mask & EV_VAR:
            self.hooks.var_read(self, node.name, holder, node)
        return holder.bindings[node.name]

    def _expr_number(self, node: ast.NumberLiteral, env: Environment) -> Any:
        self._charge()
        return node.value

    def _expr_string(self, node: ast.StringLiteral, env: Environment) -> Any:
        self._charge()
        return node.value

    def _expr_boolean(self, node: ast.BooleanLiteral, env: Environment) -> Any:
        self._charge()
        return node.value

    def _expr_null(self, node: ast.NullLiteral, env: Environment) -> Any:
        self._charge()
        return NULL

    def _expr_undefined(self, node: ast.UndefinedLiteral, env: Environment) -> Any:
        self._charge()
        return UNDEFINED

    def _expr_identifier(self, node: ast.Identifier, env: Environment) -> Any:
        self._charge()
        holder = env.lookup_env(node.name)
        if holder is None:
            raise JSReferenceError(f"{node.name} is not defined", node.line)
        if self.trace_mask & EV_VAR:
            self.hooks.var_read(self, node.name, holder, node)
        return holder.bindings[node.name]

    def _expr_this(self, node: ast.ThisExpression, env: Environment) -> Any:
        self._charge()
        holder = env.lookup_env("this")
        return holder.bindings["this"] if holder is not None else UNDEFINED

    def _expr_array(self, node: ast.ArrayLiteral, env: Environment) -> Any:
        self._charge()
        values = [self._eval(element, env) for element in node.elements]
        return self.make_array(values, creation_site=node.node_id, node=node)

    def _expr_object(self, node: ast.ObjectLiteral, env: Environment) -> Any:
        self._charge()
        obj = self.make_object(creation_site=node.node_id, node=node)
        for prop in node.properties:
            obj.set(prop.key, self._eval(prop.value, env))
        return obj

    def _expr_function(self, node: ast.FunctionExpression, env: Environment) -> Any:
        self._charge()
        func = self.make_function(node.name or "<anonymous>", node.params, node.body, env, node)
        if node.name:
            func.closure = Environment(parent=env, is_function_scope=False, label="fnexpr")
            func.closure.declare_let(node.name, func)
        return func

    def _expr_unary(self, node: ast.UnaryExpression, env: Environment) -> Any:
        operator = node.operator
        if operator == "typeof":
            self._charge()
            operand = node.operand
            if isinstance(operand, ast.Identifier) and not env.has(operand.name):
                return "undefined"
            return type_of(self._eval(operand, env))
        if operator == "delete":
            self._charge()
            if isinstance(node.operand, ast.MemberExpression):
                member = node.operand
                obj = self._eval(member.object, env)
                key = self._member_key(member, env)
                if isinstance(obj, JSObject):
                    return obj.delete(key)
            return True
        self._charge()
        operand_value = self._eval(node.operand, env)
        if operator == "!":
            return not to_boolean(operand_value)
        if operator == "-":
            return -to_number(operand_value)
        if operator == "+":
            return to_number(operand_value)
        if operator == "~":
            from .compiler import _to_int32

            return float(~_to_int32(to_number(operand_value)))
        if operator == "void":
            return UNDEFINED
        raise JSRuntimeError(f"unsupported unary operator {operator!r}", node.line)

    def _expr_update(self, node: ast.UpdateExpression, env: Environment) -> Any:
        self._charge()
        delta = 1.0 if node.operator == "++" else -1.0
        target = node.target
        if isinstance(target, ast.Identifier):
            old = to_number(self._read_identifier_unchecked(target, env))
            new = old + delta
            self._set_variable(target.name, new, env, node)
            return new if node.prefix else old
        if isinstance(target, ast.MemberExpression):
            obj = self._eval(target.object, env)
            key = self._member_key(target, env)
            old = to_number(self._get_property(obj, key, target))
            new = old + delta
            self._set_property(obj, key, new, target)
            return new if node.prefix else old
        raise JSRuntimeError("invalid update target", node.line)

    def _expr_binary(self, node: ast.BinaryExpression, env: Environment) -> Any:
        self._charge()
        op = resolve_binary(node.operator, node)
        return op(self._eval(node.left, env), self._eval(node.right, env))

    def _expr_logical(self, node: ast.LogicalExpression, env: Environment) -> Any:
        self._charge()
        operator = node.operator
        left = self._eval(node.left, env)
        if operator == "&&":
            if not to_boolean(left):
                if self.trace_mask & EV_BRANCH:
                    self.hooks.branch(self, node, False)
                return left
            if self.trace_mask & EV_BRANCH:
                self.hooks.branch(self, node, True)
            return self._eval(node.right, env)
        if operator == "||":
            if to_boolean(left):
                if self.trace_mask & EV_BRANCH:
                    self.hooks.branch(self, node, True)
                return left
            if self.trace_mask & EV_BRANCH:
                self.hooks.branch(self, node, False)
            return self._eval(node.right, env)
        raise JSRuntimeError(f"unsupported logical operator {operator!r}", node.line)

    def _expr_assignment(self, node: ast.AssignmentExpression, env: Environment) -> Any:
        self._charge()
        operator = node.operator
        target = node.target
        if operator == "=":
            value = self._eval(node.value, env)
            if isinstance(target, ast.Identifier):
                self._set_variable(target.name, value, env, node)
                return value
            if isinstance(target, ast.MemberExpression):
                obj = self._eval(target.object, env)
                key = self._member_key(target, env)
                self._set_property(obj, key, value, target)
                return value
            raise JSRuntimeError("invalid assignment target", node.line)
        op = resolve_binary(operator[:-1], node)
        if isinstance(target, ast.Identifier):
            current = self._read_identifier_unchecked(target, env)
            value = op(current, self._eval(node.value, env))
            self._set_variable(target.name, value, env, node)
            return value
        if isinstance(target, ast.MemberExpression):
            obj = self._eval(target.object, env)
            key = self._member_key(target, env)
            current = self._get_property(obj, key, target)
            value = op(current, self._eval(node.value, env))
            # The compiled path re-evaluates the target for the write-back
            # (seed parity); mirror it.
            obj = self._eval(target.object, env)
            key = self._member_key(target, env)
            self._set_property(obj, key, value, target)
            return value
        raise JSRuntimeError("invalid assignment target", node.line)

    def _expr_conditional(self, node: ast.ConditionalExpression, env: Environment) -> Any:
        self._charge()
        taken = to_boolean(self._eval(node.test, env))
        if self.trace_mask & EV_BRANCH:
            self.hooks.branch(self, node, taken)
        return self._eval(node.consequent if taken else node.alternate, env)

    def _expr_sequence(self, node: ast.SequenceExpression, env: Environment) -> Any:
        self._charge()
        result: Any = UNDEFINED
        for expression in node.expressions:
            result = self._eval(expression, env)
        return result

    def _expr_call(self, node: ast.CallExpression, env: Environment) -> Any:
        self._charge()
        callee = node.callee
        if isinstance(callee, ast.MemberExpression):
            this = self._eval(callee.object, env)
            key = self._member_key(callee, env)
            func = self._get_property(this, key, callee)
            args = [self._eval(argument, env) for argument in node.arguments]
            if not is_callable(func):
                raise JSTypeError(f"{to_string(func)} is not a function", node.line)
            return self.call_function(func, this, args, call_node=node)
        func = self._eval(callee, env)
        args = [self._eval(argument, env) for argument in node.arguments]
        if not is_callable(func):
            name = callee.name if isinstance(callee, ast.Identifier) else to_string(func)
            raise JSTypeError(f"{name} is not a function", node.line)
        return self.call_function(func, UNDEFINED, args, call_node=node)

    def _expr_new(self, node: ast.NewExpression, env: Environment) -> Any:
        self._charge()
        constructor = self._eval(node.callee, env)
        args = [self._eval(argument, env) for argument in node.arguments]
        return self._construct(constructor, args, node)

    def _expr_member(self, node: ast.MemberExpression, env: Environment) -> Any:
        self._charge()
        obj = self._eval(node.object, env)
        return self._get_property(obj, self._member_key(node, env), node)


_STATEMENTS = {
    ast.VariableDeclaration: ReferenceInterpreter._stmt_variable_declaration,
    ast.FunctionDeclaration: ReferenceInterpreter._stmt_function_declaration,
    ast.BlockStatement: ReferenceInterpreter._stmt_block,
    ast.ExpressionStatement: ReferenceInterpreter._stmt_expression,
    ast.IfStatement: ReferenceInterpreter._stmt_if,
    ast.ForStatement: ReferenceInterpreter._stmt_for,
    ast.ForInStatement: ReferenceInterpreter._stmt_for_in,
    ast.WhileStatement: ReferenceInterpreter._stmt_while,
    ast.DoWhileStatement: ReferenceInterpreter._stmt_do_while,
    ast.ReturnStatement: ReferenceInterpreter._stmt_return,
    ast.BreakStatement: ReferenceInterpreter._stmt_break,
    ast.ContinueStatement: ReferenceInterpreter._stmt_continue,
    ast.ThrowStatement: ReferenceInterpreter._stmt_throw,
    ast.TryStatement: ReferenceInterpreter._stmt_try,
    ast.SwitchStatement: ReferenceInterpreter._stmt_switch,
    ast.EmptyStatement: ReferenceInterpreter._stmt_empty,
}

_EXPRESSIONS = {
    ast.NumberLiteral: ReferenceInterpreter._expr_number,
    ast.StringLiteral: ReferenceInterpreter._expr_string,
    ast.BooleanLiteral: ReferenceInterpreter._expr_boolean,
    ast.NullLiteral: ReferenceInterpreter._expr_null,
    ast.UndefinedLiteral: ReferenceInterpreter._expr_undefined,
    ast.Identifier: ReferenceInterpreter._expr_identifier,
    ast.ThisExpression: ReferenceInterpreter._expr_this,
    ast.ArrayLiteral: ReferenceInterpreter._expr_array,
    ast.ObjectLiteral: ReferenceInterpreter._expr_object,
    ast.FunctionExpression: ReferenceInterpreter._expr_function,
    ast.UnaryExpression: ReferenceInterpreter._expr_unary,
    ast.UpdateExpression: ReferenceInterpreter._expr_update,
    ast.BinaryExpression: ReferenceInterpreter._expr_binary,
    ast.LogicalExpression: ReferenceInterpreter._expr_logical,
    ast.AssignmentExpression: ReferenceInterpreter._expr_assignment,
    ast.ConditionalExpression: ReferenceInterpreter._expr_conditional,
    ast.CallExpression: ReferenceInterpreter._expr_call,
    ast.NewExpression: ReferenceInterpreter._expr_new,
    ast.MemberExpression: ReferenceInterpreter._expr_member,
    ast.SequenceExpression: ReferenceInterpreter._expr_sequence,
}
