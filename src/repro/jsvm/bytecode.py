"""Register-bytecode execution tier.

The closure tier (:mod:`repro.jsvm.compiler`) lowers the resolved AST once
into a tree of Python closures; this module lowers the same resolved AST a
step further into a compact **register bytecode**: flat tuples dispatched by
a single threaded loop, with expression temporaries in a per-invocation
register file and identifier reads slot-addressed from the resolver's
(``hops``, ``index``) classification.

Two properties drive the design:

* **Byte-identity with the closure tier.**  Every native instruction
  replicates the closure tier's exact semantics — charge order (pre-order:
  one clock charge *before* the operands run), counter increments, and
  :class:`~repro.jsvm.hooks.HookBus` dispatch gated on the same cached
  ``rt.trace_mask`` — so instrumented runs produce the same event streams.
  Constructs outside the native subset (loops, calls, ``try``, ``switch``,
  ``for``-``in``, member accesses, …) lower to *escape* instructions that
  invoke the closure-compiled code for that exact subtree, making identity
  structural rather than aspirational.  Counted ``for`` loops reached
  through an escape still enter the numeric fast tier
  (:mod:`repro.jsvm.fasttier`) — the ``bytecode`` tier policy enables it.

* **Serializability.**  A :class:`CodeObject` is a pure tree of tuples,
  scalars and operator *names*: no closures, no AST references, no heap
  values.  :meth:`CodeObject.to_bytes` pickles that tree so the engine can
  cache compiled scripts by fingerprint and ship them to fan-out workers;
  :meth:`CodeObject.from_bytes` + :meth:`CodeObject.rehydrate` re-bind the
  escape instructions against the worker's own parsed AST via the parser's
  deterministic ``node_id`` numbering.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List, Optional, Tuple

from . import ast_nodes as ast
from .compiler import (
    _PURE_BINARY_OPS,
    ReturnSignal,
    _dict_read,
    build_hoist_plan,
    compile_expr,
    compile_stmt,
    resolve_program,
    run_hoist_plan,
)
from .hooks import EV_BRANCH, EV_ENV, EV_STATEMENT, EV_VAR
from .scope import HOLE, Environment
from .values import NULL, UNDEFINED, to_boolean, to_number

__all__ = [
    "CodeObject",
    "build_node_map",
    "ensure_bytecode_body",
    "ensure_bytecode_program",
    "execute",
    "lower_statements",
]

#: Serialization format version (bump on any incompatible layout change).
BYTECODE_VERSION = 1

# --- opcodes ---------------------------------------------------------------
OP_CHARGE = 1  # ()                 rt._charge()
OP_CONST = 2  # (dst, k)            regs[dst] = consts[k]
OP_LOAD = 3  # (dst, hops, idx, ni) slot-addressed identifier read
OP_LOADN = 4  # (dst, ni)           dict-chain identifier read (no slot res)
OP_BIN = 5  # (dst, oi, a, b)       regs[dst] = ops[oi](regs[a], regs[b])
OP_NOT = 6  # (dst, a)              regs[dst] = not to_boolean(regs[a])
OP_NEG = 7  # (dst, a)              regs[dst] = -to_number(regs[a])
OP_POS = 8  # (dst, a)              regs[dst] = to_number(regs[a])
OP_EVAL = 9  # (dst, ni)            escape: closure-compiled expression
OP_STMT = 10  # (ni,)               escape: closure-compiled statement
OP_PRE = 11  # (ni,)                statement wrapper: charge + count + hook
OP_IF = 12  # (t, ci, ai, ni)       branch into child code objects
OP_RET = 13  # (a,)                 raise ReturnSignal(regs[a])
OP_RETU = 14  # ()                  raise ReturnSignal(UNDEFINED)
OP_RESULT = 15  # (a,)              statement result = regs[a]
OP_BLOCK = 16  # (ci, ni)           block statement body in a fresh env

def _encode_const(value: Any) -> Tuple[str, Any]:
    """Pickle-safe const encoding: UNDEFINED/NULL are process singletons
    compared by identity, so they travel as tags, not pickled instances."""
    if value is UNDEFINED:
        return ("u", None)
    if value is NULL:
        return ("n", None)
    return ("v", value)


def _decode_const(entry: Tuple[str, Any]) -> Any:
    tag, value = entry
    if tag == "u":
        return UNDEFINED
    if tag == "n":
        return NULL
    return value


_OP_NAMES = {
    OP_CHARGE: "CHARGE",
    OP_CONST: "CONST",
    OP_LOAD: "LOAD",
    OP_LOADN: "LOADN",
    OP_BIN: "BIN",
    OP_NOT: "NOT",
    OP_NEG: "NEG",
    OP_POS: "POS",
    OP_EVAL: "EVAL",
    OP_STMT: "STMT",
    OP_PRE: "PRE",
    OP_IF: "IF",
    OP_RET: "RET",
    OP_RETU: "RETU",
    OP_RESULT: "RESULT",
    OP_BLOCK: "BLOCK",
}


class CodeObject:
    """One lowered statement list: instructions + operand tables.

    The serializable state is ``(n_regs, instrs, consts, op_names,
    node_ids, children)``; the runtime state (``nodes`` — AST nodes the
    escape/hook instructions reference, ``ops`` — resolved binary operator
    functions, ``codes``/``stmts`` — lazily compiled closure escapes) is
    rebuilt by :meth:`rehydrate`.
    """

    __slots__ = (
        "n_regs",
        "instrs",
        "consts",
        "op_names",
        "node_ids",
        "children",
        "nodes",
        "ops",
        "hydrated",
    )

    def __init__(self) -> None:
        self.n_regs = 0
        self.instrs: List[Tuple[int, ...]] = []
        self.consts: List[Any] = []
        self.op_names: List[str] = []
        self.node_ids: List[int] = []
        self.children: List["CodeObject"] = []
        self.nodes: List[Any] = []
        self.ops: List[Any] = []
        self.hydrated = False

    # ------------------------------------------------------- serialization
    def to_tree(self) -> Tuple:
        return (
            self.n_regs,
            tuple(self.instrs),
            tuple(_encode_const(c) for c in self.consts),
            tuple(self.op_names),
            tuple(self.node_ids),
            tuple(child.to_tree() for child in self.children),
        )

    @classmethod
    def from_tree(cls, tree: Tuple) -> "CodeObject":
        code = cls()
        code.n_regs, instrs, consts, op_names, node_ids, children = tree
        code.instrs = list(instrs)
        code.consts = [_decode_const(c) for c in consts]
        code.op_names = list(op_names)
        code.node_ids = list(node_ids)
        code.children = [cls.from_tree(child) for child in children]
        return code

    def to_bytes(self) -> bytes:
        return pickle.dumps((BYTECODE_VERSION, self.to_tree()), protocol=4)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CodeObject":
        version, tree = pickle.loads(data)
        if version != BYTECODE_VERSION:
            raise ValueError(f"bytecode version mismatch: {version} != {BYTECODE_VERSION}")
        return cls.from_tree(tree)

    def rehydrate(self, node_map: Dict[int, ast.Node]) -> "CodeObject":
        """Bind escape/hook instructions to this process's AST nodes."""
        self.nodes = [node_map[node_id] for node_id in self.node_ids]
        self.ops = [_PURE_BINARY_OPS[name] for name in self.op_names]
        for child in self.children:
            child.rehydrate(node_map)
        self.hydrated = True
        return self

    def dis(self, indent: str = "") -> str:
        """Human-readable disassembly (debugging aid)."""
        out = []
        for i, ins in enumerate(self.instrs):
            out.append(f"{indent}{i:3d} {_OP_NAMES.get(ins[0], '?'):7s} {ins[1:]}")
        for ci, child in enumerate(self.children):
            out.append(f"{indent}child {ci}:")
            out.append(child.dis(indent + "  "))
        return "\n".join(out)


def build_node_map(program: ast.Program) -> Dict[int, ast.Node]:
    """``node_id`` -> node for every node reachable from ``program``."""
    node_map: Dict[int, ast.Node] = {}
    stack: List[Any] = [program]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Node):
            node_map[current.node_id] = current
            stack.extend(vars(current).values())
        elif isinstance(current, (list, tuple)):
            stack.extend(current)
    return node_map


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------
class _Lowerer:
    def __init__(self) -> None:
        self.code = CodeObject()
        self.reg = 0
        self.max_reg = 0

    # -- operand tables
    def const(self, value: Any) -> int:
        self.code.consts.append(value)
        return len(self.code.consts) - 1

    def node_ref(self, node: ast.Node) -> int:
        self.code.node_ids.append(node.node_id)
        self.code.nodes.append(node)
        return len(self.code.node_ids) - 1

    def op_ref(self, name: str) -> int:
        self.code.op_names.append(name)
        self.code.ops.append(_PURE_BINARY_OPS[name])
        return len(self.code.op_names) - 1

    def child(self, code: CodeObject) -> int:
        self.code.children.append(code)
        return len(self.code.children) - 1

    def emit(self, *ins: int) -> None:
        self.code.instrs.append(ins)

    def alloc(self) -> int:
        r = self.reg
        self.reg += 1
        if self.reg > self.max_reg:
            self.max_reg = self.reg
        return r

    # -- statements
    def lower_stmt(self, stmt: ast.Node) -> None:
        """Lower one statement; leaves the statement result installed."""
        self.reg = 0
        if isinstance(stmt, ast.ExpressionStatement) and self.can_lower_expr(stmt.expression):
            self.emit(OP_PRE, self.node_ref(stmt))
            value = self.lower_expr(stmt.expression)
            self.emit(OP_RESULT, value)
            return
        if isinstance(stmt, ast.ReturnStatement):
            self.emit(OP_PRE, self.node_ref(stmt))
            if stmt.argument is None:
                self.emit(OP_RETU)
            elif self.can_lower_expr(stmt.argument):
                self.emit(OP_RET, self.lower_expr(stmt.argument))
            else:
                value = self.alloc()
                self.emit(OP_EVAL, value, self.node_ref(stmt.argument))
                self.emit(OP_RET, value)
            return
        if isinstance(stmt, ast.IfStatement) and self.can_lower_expr(stmt.test):
            self.emit(OP_PRE, self.node_ref(stmt))
            test = self.lower_expr(stmt.test)
            consequent = lower_statement(stmt.consequent)
            alternate = lower_statement(stmt.alternate) if stmt.alternate is not None else None
            ci = self.child(consequent)
            ai = self.child(alternate) if alternate is not None else -1
            self.emit(OP_IF, test, ci, ai, self.node_ref(stmt))
            return
        if isinstance(stmt, ast.BlockStatement):
            self.emit(OP_PRE, self.node_ref(stmt))
            block = lower_statements(stmt.body)
            self.emit(OP_BLOCK, self.child(block), self.node_ref(stmt))
            return
        if isinstance(stmt, ast.EmptyStatement):
            self.emit(OP_PRE, self.node_ref(stmt))
            return
        # Everything else escapes to the closure tier whole (the compiled
        # statement carries its own wrapper charge + hook).
        self.emit(OP_STMT, self.node_ref(stmt))

    # -- expressions
    def can_lower_expr(self, node: ast.Node) -> bool:
        if isinstance(
            node,
            (
                ast.NumberLiteral,
                ast.StringLiteral,
                ast.BooleanLiteral,
                ast.NullLiteral,
                ast.UndefinedLiteral,
                ast.Identifier,
            ),
        ):
            return True
        if isinstance(node, ast.BinaryExpression):
            return node.operator in _PURE_BINARY_OPS and (
                self.can_lower_expr(node.left) and self.can_lower_expr(node.right)
            )
        if isinstance(node, ast.UnaryExpression):
            return node.operator in ("!", "-", "+") and self.can_lower_expr(node.operand)
        return False

    def lower_expr(self, node: ast.Node) -> int:
        """Lower an expression; returns the register holding its value.

        Mirrors the closure tier's pre-order charging: one ``OP_CHARGE``
        per node *before* its operands execute.
        """
        if isinstance(node, (ast.NumberLiteral, ast.StringLiteral, ast.BooleanLiteral)):
            self.emit(OP_CHARGE)
            dst = self.alloc()
            self.emit(OP_CONST, dst, self.const(node.value))
            return dst
        if isinstance(node, (ast.NullLiteral, ast.UndefinedLiteral)):
            self.emit(OP_CHARGE)
            dst = self.alloc()
            value = NULL if isinstance(node, ast.NullLiteral) else UNDEFINED
            self.emit(OP_CONST, dst, self.const(value))
            return dst
        if isinstance(node, ast.Identifier):
            dst = self.alloc()
            res = getattr(node, "_res", None)
            if res is not None:
                hops, idx, _maybe_hole, _is_const = res
                self.emit(OP_LOAD, dst, hops, idx, self.node_ref(node))
            else:
                self.emit(OP_LOADN, dst, self.node_ref(node))
            return dst
        if isinstance(node, ast.BinaryExpression):
            self.emit(OP_CHARGE)
            left = self.lower_expr(node.left)
            right = self.lower_expr(node.right)
            dst = self.alloc()
            self.emit(OP_BIN, dst, self.op_ref(node.operator), left, right)
            return dst
        if isinstance(node, ast.UnaryExpression):
            self.emit(OP_CHARGE)
            operand = self.lower_expr(node.operand)
            dst = self.alloc()
            opcode = {"!": OP_NOT, "-": OP_NEG, "+": OP_POS}[node.operator]
            self.emit(opcode, dst, operand)
            return dst
        # Escape: closure-compiled expression (charges itself).
        dst = self.alloc()
        self.emit(OP_EVAL, dst, self.node_ref(node))
        return dst

    def finish(self) -> CodeObject:
        self.code.n_regs = max(self.max_reg, 1)
        self.code.hydrated = True
        return self.code


def lower_statement(stmt: ast.Node) -> CodeObject:
    lowerer = _Lowerer()
    lowerer.lower_stmt(stmt)
    return lowerer.finish()


def lower_statements(statements: List[ast.Node]) -> CodeObject:
    lowerer = _Lowerer()
    for stmt in statements:
        lowerer.lower_stmt(stmt)
    return lowerer.finish()


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------
def execute(code: CodeObject, rt, env: Environment) -> Any:
    """Threaded-dispatch loop over ``code``; returns the last statement value."""
    instrs = code.instrs
    consts = code.consts
    nodes = code.nodes
    ops = code.ops
    children = code.children
    regs = [UNDEFINED] * code.n_regs
    result: Any = UNDEFINED
    i = 0
    n = len(instrs)
    while i < n:
        ins = instrs[i]
        op = ins[0]
        if op == OP_CHARGE:
            rt._charge()
        elif op == OP_CONST:
            regs[ins[1]] = consts[ins[2]]
        elif op == OP_LOAD:
            rt._charge()
            frame = env
            hops = ins[2]
            while hops:
                frame = frame.parent
                hops -= 1
            value = frame.slots[ins[3]]
            node = nodes[ins[4]]
            if value is not HOLE:
                if rt.trace_mask & EV_VAR:
                    rt.hooks.var_read(rt, node.name, frame, node)
                regs[ins[1]] = value
            else:
                regs[ins[1]] = _dict_read(rt, env, node.name, node.line, node)
        elif op == OP_LOADN:
            rt._charge()
            node = nodes[ins[2]]
            regs[ins[1]] = _dict_read(rt, env, node.name, node.line, node)
        elif op == OP_BIN:
            regs[ins[1]] = ops[ins[2]](regs[ins[3]], regs[ins[4]])
        elif op == OP_NOT:
            regs[ins[1]] = not to_boolean(regs[ins[2]])
        elif op == OP_NEG:
            regs[ins[1]] = -to_number(regs[ins[2]])
        elif op == OP_POS:
            regs[ins[1]] = to_number(regs[ins[2]])
        elif op == OP_EVAL:
            node = nodes[ins[2]]
            expr_code = getattr(node, "_code", None)
            if expr_code is None:
                expr_code = compile_expr(node)
            regs[ins[1]] = expr_code(rt, env)
        elif op == OP_STMT:
            node = nodes[ins[1]]
            stmt_code = getattr(node, "_stmt", None)
            if stmt_code is None:
                stmt_code = compile_stmt(node)
            result = stmt_code(rt, env)
        elif op == OP_PRE:
            rt._charge()
            rt.stats.statements += 1
            if rt.trace_mask & EV_STATEMENT:
                rt.hooks.statement(rt, nodes[ins[1]])
            result = UNDEFINED
        elif op == OP_IF:
            taken = to_boolean(regs[ins[1]])
            if rt.trace_mask & EV_BRANCH:
                rt.hooks.branch(rt, nodes[ins[4]], taken)
            if taken:
                result = execute(children[ins[2]], rt, env)
            elif ins[3] >= 0:
                result = execute(children[ins[3]], rt, env)
            else:
                result = UNDEFINED
        elif op == OP_BLOCK:
            layout = getattr(nodes[ins[2]], "_layout", None)
            block_env = Environment(parent=env, is_function_scope=False, label="block", layout=layout)
            if rt.trace_mask & EV_ENV:
                rt.hooks.env_created(rt, block_env, "block")
            result = execute(children[ins[1]], rt, block_env)
        elif op == OP_RET:
            raise ReturnSignal(regs[ins[1]])
        elif op == OP_RETU:
            raise ReturnSignal(UNDEFINED)
        elif op == OP_RESULT:
            result = regs[ins[1]]
        else:  # pragma: no cover - lowering only emits known opcodes
            raise RuntimeError(f"unknown opcode {op}")
        i += 1
    return result


# ---------------------------------------------------------------------------
# cached entry points
# ---------------------------------------------------------------------------
def ensure_bytecode_program(program: ast.Program):
    """Hoist plan + lowered bytecode for a program (cached on the node)."""
    cached = getattr(program, "_bc_body", None)
    if cached is None:
        resolve_program(program)
        plan = build_hoist_plan(program.body)
        cached = (plan, lower_statements(program.body))
        program._bc_body = cached
    return cached


def ensure_bytecode_body(body: ast.BlockStatement):
    """Hoist plan + lowered bytecode for a function body (cached)."""
    cached = getattr(body, "_bc_body", None)
    if cached is None:
        plan = build_hoist_plan(body.body)
        cached = (plan, lower_statements(body.body))
        body._bc_body = cached
    return cached


def seed_program_bytecode(program: ast.Program, data: bytes) -> bool:
    """Install serialized program bytecode (engine cache path).

    Returns True when the payload bound cleanly against ``program``'s AST;
    a failed bind (stale cache entry) leaves the program unseeded so the
    normal lowering path runs instead.
    """
    try:
        code = CodeObject.from_bytes(data)
        resolve_program(program)
        code.rehydrate(build_node_map(program))
    except Exception:
        return False
    plan = build_hoist_plan(program.body)
    program._bc_body = (plan, code)
    return True


def serialize_program_bytecode(program: ast.Program) -> bytes:
    """Serialized bytecode for ``program`` (lowering it if needed)."""
    _plan, code = ensure_bytecode_program(program)
    return code.to_bytes()
