"""Execution-tier policy for the mini-JavaScript VM.

The VM has three ways to execute a resolved AST:

* the **closure tier** (:mod:`repro.jsvm.compiler`) — every node compiled
  once into a Python closure; the reference semantics all other tiers are
  measured against;
* the **bytecode tier** (:mod:`repro.jsvm.bytecode`) — a compact register
  bytecode with a threaded-dispatch loop, lowered from the same resolved
  AST (and serializable, so the engine can ship compiled code to fan-out
  workers);
* the **numeric fast tier** (:mod:`repro.jsvm.fasttier`) — guarded fused
  execution of hot numeric ``for`` nests, entered from either general tier
  and deoptimizing back to the closure tier on any guard failure.

A *tier policy* names the general tier and whether the fast tier may
engage:

* ``"auto"`` (the default): closure general tier + numeric fast nests;
* ``"bytecode"``: bytecode general tier + numeric fast nests;
* ``"closure"``: closure tier only — exactly the pre-tier behaviour, with
  the fast tier disabled.

``REPRO_FORCE_CLOSURE_TIER=1`` forces the ``closure`` policy process-wide
(mirroring ``REPRO_FORCE_DICT_SCOPES``); the CI fallback job runs the whole
tier-1 suite in that configuration.
"""

from __future__ import annotations

import os
from typing import Optional

TIER_AUTO = "auto"
TIER_BYTECODE = "bytecode"
TIER_CLOSURE = "closure"

#: Every valid tier policy name, in documentation order.
ALL_TIERS = (TIER_AUTO, TIER_BYTECODE, TIER_CLOSURE)

#: Environment escape hatch: force the closure tier everywhere.
FORCE_CLOSURE_ENV_VAR = "REPRO_FORCE_CLOSURE_TIER"


def closure_tier_forced() -> bool:
    """True when ``REPRO_FORCE_CLOSURE_TIER`` disables the new tiers."""
    return os.environ.get(FORCE_CLOSURE_ENV_VAR, "") not in ("", "0")


def validate_tier(tier: Optional[str]) -> Optional[str]:
    """Validate a tier policy name (``None`` means "session default")."""
    if tier is not None and tier not in ALL_TIERS:
        raise ValueError(f"unknown execution tier {tier!r}; known: {list(ALL_TIERS)}")
    return tier


def resolve_tier(tier: Optional[str]) -> str:
    """Resolve a requested tier against the environment escape hatch."""
    validate_tier(tier)
    if closure_tier_forced():
        return TIER_CLOSURE
    return tier if tier is not None else TIER_AUTO
