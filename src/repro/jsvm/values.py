"""Runtime value model for the mini-JavaScript engine.

Guest values map onto host Python values as follows:

===================  =====================================================
JS type              Python representation
===================  =====================================================
``number``           ``float``
``string``           ``str``
``boolean``          ``bool``
``undefined``        the :data:`UNDEFINED` singleton
``null``             the :data:`NULL` singleton
object               :class:`JSObject`
array                :class:`JSArray`
function             :class:`JSFunction` (guest) or :class:`NativeFunction`
===================  =====================================================

Objects carry a ``creation_site`` (AST node id) and a ``creation_stamp``
slot used by the JS-CERES dependence analysis.  The stamp plays the role of
the ``Proxy`` wrapper described in Section 3.3 of the paper: it records the
loop-characterization stack at the moment the object was instantiated.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from .errors import JSTypeError


class _Undefined:
    """Singleton type for the JS ``undefined`` value."""

    _instance: Optional["_Undefined"] = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


class _Null:
    """Singleton type for the JS ``null`` value."""

    _instance: Optional["_Null"] = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "null"

    def __bool__(self) -> bool:
        return False


UNDEFINED = _Undefined()
NULL = _Null()


class Shape:
    """A hidden class: identifies the *own-property key set* of an object.

    Objects constructed with the same prototype that add the same property
    names in the same order share one Shape (transitions form a tree rooted
    at a per-prototype root shape).  The compiled core's per-site inline
    caches validate against shape identity: a matching shape proves the
    cached own-property hit (or own-property absence) is still valid without
    touching the property dict.  ``delete`` leaves the transition tree and
    moves the object to a fresh unique shape, so stale caches can never match.
    """

    __slots__ = ("transitions",)

    def __init__(self) -> None:
        self.transitions: Dict[str, "Shape"] = {}

    def transition(self, name: str) -> "Shape":
        transitions = self.transitions
        nxt = transitions.get(name)
        if nxt is None:
            nxt = Shape()
            transitions[name] = nxt
        return nxt


#: Root shape for objects with no prototype (Object.prototype itself...).
_NULL_PROTO_ROOT = Shape()

#: Global invalidation epoch for prototype-sensitive inline caches.  Bumped
#: whenever an object that serves as somebody's prototype changes shape
#: (property added or deleted): caches that encode "this name is absent from
#: the whole prototype chain" validate against it.  Conservative — any
#: prototype mutation anywhere invalidates all absence caches — but prototype
#: shapes are effectively frozen after startup in real workloads.
_PROTO_EPOCH = [0]


class JSObject:
    """A guest object: a property map plus a prototype link."""

    __slots__ = (
        "properties",
        "prototype",
        "class_name",
        "creation_site",
        "creation_stamp",
        "extra",
        "shape",
        "is_proto",
        "child_root_shape",
        # Inline caches reference prototype holders weakly so a per-site
        # cache living on a (session-cached) AST cannot retain a finished
        # interpreter run's heap.
        "__weakref__",
    )

    def __init__(
        self,
        prototype: Optional["JSObject"] = None,
        class_name: str = "Object",
        creation_site: int = -1,
    ) -> None:
        self.properties: Dict[str, Any] = {}
        self.prototype = prototype
        self.class_name = class_name
        #: AST node id of the syntactic location that created this object.
        self.creation_site = creation_site
        #: Loop-characterization stamp attached by the dependence analysis.
        self.creation_stamp: Any = None
        #: Free-form slot for host-side companions (DOM elements, canvases...).
        self.extra: Dict[str, Any] = {}
        #: True once this object serves as another object's prototype.
        self.is_proto = False
        #: Lazily created root shape for objects using *this* object as
        #: their prototype (prototype links are fixed at construction).
        self.child_root_shape: Optional[Shape] = None
        if prototype is None:
            self.shape = _NULL_PROTO_ROOT
        else:
            root = prototype.child_root_shape
            if root is None:
                root = Shape()
                prototype.child_root_shape = root
                prototype.is_proto = True
            self.shape = root

    # -- property protocol -------------------------------------------------
    def get(self, name: str) -> Any:
        obj: Optional[JSObject] = self
        while obj is not None:
            if name in obj.properties:
                return obj.properties[name]
            obj = obj.prototype
        return UNDEFINED

    def has(self, name: str) -> bool:
        obj: Optional[JSObject] = self
        while obj is not None:
            if name in obj.properties:
                return True
            obj = obj.prototype
        return False

    def has_own(self, name: str) -> bool:
        return name in self.properties

    def set(self, name: str, value: Any) -> None:
        properties = self.properties
        if name not in properties:
            self.shape = self.shape.transition(name)
            if self.is_proto:
                _PROTO_EPOCH[0] += 1
        properties[name] = value

    def delete(self, name: str) -> bool:
        if self.properties.pop(name, None) is None:
            return False
        # Off the transition tree: a fresh shape no cache has ever seen.
        self.shape = Shape()
        if self.is_proto:
            _PROTO_EPOCH[0] += 1
        return True

    def own_keys(self) -> List[str]:
        return list(self.properties.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JSObject {self.class_name} {list(self.properties)[:6]}>"


class JSArray(JSObject):
    """A guest array.  Elements live in a dense Python list."""

    __slots__ = ("elements",)

    def __init__(
        self,
        elements: Optional[List[Any]] = None,
        prototype: Optional[JSObject] = None,
        creation_site: int = -1,
    ) -> None:
        super().__init__(prototype=prototype, class_name="Array", creation_site=creation_site)
        self.elements: List[Any] = list(elements) if elements is not None else []

    # Array index access is routed through get/set so instrumentation sees a
    # single property protocol for both named and indexed properties.
    def get(self, name: str) -> Any:
        if name == "length":
            return float(len(self.elements))
        index = _as_array_index(name)
        if index is not None:
            if 0 <= index < len(self.elements):
                return self.elements[index]
            return UNDEFINED
        return super().get(name)

    def set(self, name: str, value: Any) -> None:
        if name == "length":
            new_length = int(to_number(value))
            if new_length < 0:
                raise JSTypeError("invalid array length")
            current = len(self.elements)
            if new_length < current:
                del self.elements[new_length:]
            else:
                self.elements.extend([UNDEFINED] * (new_length - current))
            return
        index = _as_array_index(name)
        if index is not None:
            if index >= len(self.elements):
                self.elements.extend([UNDEFINED] * (index + 1 - len(self.elements)))
            self.elements[index] = value
            return
        super().set(name, value)

    def has(self, name: str) -> bool:
        if name == "length":
            return True
        index = _as_array_index(name)
        if index is not None:
            return 0 <= index < len(self.elements)
        return super().has(name)

    def own_keys(self) -> List[str]:
        return [str(i) for i in range(len(self.elements))] + list(self.properties.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JSArray len={len(self.elements)}>"


class JSFunction(JSObject):
    """A guest function (closure over its defining environment)."""

    __slots__ = ("name", "params", "body", "closure", "is_arrow", "declaration_node")

    def __init__(
        self,
        name: str,
        params: List[str],
        body: Any,
        closure: Any,
        prototype: Optional[JSObject] = None,
        creation_site: int = -1,
        declaration_node: Any = None,
    ) -> None:
        super().__init__(prototype=prototype, class_name="Function", creation_site=creation_site)
        self.name = name or "<anonymous>"
        self.params = params
        self.body = body
        self.closure = closure
        self.is_arrow = False
        self.declaration_node = declaration_node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JSFunction {self.name}({', '.join(self.params)})>"


class NativeFunction(JSObject):
    """A host (Python) function exposed to guest code.

    The wrapped callable receives ``(interpreter, this, args)`` and returns a
    guest value.
    """

    __slots__ = ("name", "func")

    def __init__(self, name: str, func: Callable[..., Any], prototype: Optional[JSObject] = None) -> None:
        super().__init__(prototype=prototype, class_name="Function")
        self.name = name
        self.func = func

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NativeFunction {self.name}>"


def _as_array_index(name: str) -> Optional[int]:
    """Return the integer index encoded by ``name``, or None."""
    if isinstance(name, str) and name.isdigit():
        return int(name)
    return None


# --------------------------------------------------------------------------
# Conversions (subset of the ECMAScript abstract operations)
# --------------------------------------------------------------------------


def is_callable(value: Any) -> bool:
    return isinstance(value, (JSFunction, NativeFunction))


def type_of(value: Any) -> str:
    """The guest ``typeof`` operator."""
    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "object"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, float) or isinstance(value, int):
        return "number"
    if isinstance(value, str):
        return "string"
    if is_callable(value):
        return "function"
    return "object"


def to_boolean(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if value is UNDEFINED or value is NULL:
        return False
    if isinstance(value, (int, float)):
        number = float(value)
        return not (number == 0.0 or math.isnan(number))
    if isinstance(value, str):
        return len(value) > 0
    return True


def to_number(value: Any) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if value is UNDEFINED:
        return float("nan")
    if value is NULL:
        return 0.0
    if isinstance(value, str):
        text = value.strip()
        if text == "":
            return 0.0
        try:
            if text.lower().startswith("0x"):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return float("nan")
    if isinstance(value, JSArray):
        if len(value.elements) == 0:
            return 0.0
        if len(value.elements) == 1:
            return to_number(value.elements[0])
        return float("nan")
    return float("nan")


def format_number(number: float) -> str:
    """Format a guest number roughly like JavaScript's ``String(n)``."""
    if math.isnan(number):
        return "NaN"
    if number == math.inf:
        return "Infinity"
    if number == -math.inf:
        return "-Infinity"
    if number == int(number) and abs(number) < 1e21:
        return str(int(number))
    return repr(number)


def to_string(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return format_number(float(value))
    if value is UNDEFINED:
        return "undefined"
    if value is NULL:
        return "null"
    if isinstance(value, JSArray):
        return ",".join("" if el is UNDEFINED or el is NULL else to_string(el) for el in value.elements)
    if isinstance(value, (JSFunction, NativeFunction)):
        return f"function {getattr(value, 'name', '')}() {{ [code] }}"
    if isinstance(value, JSObject):
        return "[object Object]"
    return str(value)


def to_property_key(value: Any) -> str:
    """Convert a computed property key expression result to a property name."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return format_number(float(value))
    return to_string(value)


def strict_equals(a: Any, b: Any) -> bool:
    if a is UNDEFINED and b is UNDEFINED:
        return True
    if a is NULL and b is NULL:
        return True
    if isinstance(a, bool) or isinstance(b, bool):
        if isinstance(a, bool) and isinstance(b, bool):
            return a == b
        # A bool and a number are different JS types under ===.
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            return False
        return False
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    return a is b


def loose_equals(a: Any, b: Any) -> bool:
    """The guest ``==`` operator (subset of the abstract equality algorithm)."""
    if (a is UNDEFINED or a is NULL) and (b is UNDEFINED or b is NULL):
        return True
    if a is UNDEFINED or a is NULL or b is UNDEFINED or b is NULL:
        return False
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    if isinstance(a, JSObject) and isinstance(b, JSObject):
        return a is b
    if isinstance(a, JSObject) or isinstance(b, JSObject):
        # Compare via string/number coercion of the primitive side.
        if isinstance(a, JSObject):
            return loose_equals(to_string(a), b)
        return loose_equals(a, to_string(b))
    number_a, number_b = to_number(a), to_number(b)
    if math.isnan(number_a) or math.isnan(number_b):
        return False
    return number_a == number_b
