"""Recursive-descent parser for the mini-JavaScript language.

The parser produces the AST defined in :mod:`repro.jsvm.ast_nodes`.  It
implements the expression grammar with standard ECMAScript precedence and a
pragmatic form of automatic semicolon insertion (a missing ``;`` is accepted
when the next token starts on a new line, is ``}`` or is end-of-file).

Every node receives a unique ``node_id`` so downstream passes (JS-CERES loop
identification, creation-site stamping) can refer to syntactic locations
without re-walking source text.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .errors import JSSyntaxError
from .lexer import tokenize
from .tokens import Token, TokenType

# Binary operator precedence (higher binds tighter).  Mirrors ECMAScript.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "instanceof": 7,
    "in": 7,
    "<<": 8,
    ">>": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGNMENT_OPERATORS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>="}


class Parser:
    """Parses a token stream into a :class:`~repro.jsvm.ast_nodes.Program`."""

    def __init__(self, source: str, name: str = "<program>") -> None:
        self.source = source
        self.name = name
        self.tokens: List[Token] = tokenize(source)
        self.pos = 0
        self._next_node_id = 0

    # ------------------------------------------------------------------ api
    def parse(self) -> ast.Program:
        body: List[ast.Node] = []
        while not self._at_end():
            body.append(self._parse_statement())
        program = self._make(ast.Program, self.tokens[0] if self.tokens else None)
        program.body = body
        program.source = self.source
        program.name = self.name
        return program

    # ------------------------------------------------------------ utilities
    def _make(self, cls, token: Optional[Token], **kwargs) -> ast.Node:
        node = cls(**kwargs)
        if token is not None:
            node.line = token.line
            node.column = token.column
        node.node_id = self._next_node_id
        self._next_node_id += 1
        return node

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at_end(self) -> bool:
        return self._peek().type is TokenType.EOF

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _check_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _check_keyword(self, word: str) -> bool:
        return self._peek().is_keyword(word)

    def _match_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _match_keyword(self, word: str) -> bool:
        if self._check_keyword(word):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise JSSyntaxError(
                f"expected {text!r} but found {token.value!r}", token.line, token.column
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise JSSyntaxError(
                f"expected keyword {word!r} but found {token.value!r}", token.line, token.column
            )
        return self._advance()

    def _expect_identifier(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise JSSyntaxError(
                f"expected identifier but found {token.value!r}", token.line, token.column
            )
        return self._advance()

    def _consume_semicolon(self, previous: Token) -> None:
        """Consume a statement terminator, applying simple semicolon insertion."""
        if self._match_punct(";"):
            return
        token = self._peek()
        if token.type is TokenType.EOF or token.is_punct("}"):
            return
        if token.line > previous.line:
            return
        raise JSSyntaxError(
            f"expected ';' but found {token.value!r}", token.line, token.column
        )

    # ------------------------------------------------------------ statements
    def _parse_statement(self) -> ast.Node:
        token = self._peek()
        if token.type is TokenType.KEYWORD:
            word = token.value
            if word in ("var", "let", "const"):
                return self._parse_variable_declaration()
            if word == "function":
                return self._parse_function_declaration()
            if word == "if":
                return self._parse_if()
            if word == "for":
                return self._parse_for()
            if word == "while":
                return self._parse_while()
            if word == "do":
                return self._parse_do_while()
            if word == "return":
                return self._parse_return()
            if word == "break":
                start = self._advance()
                node = self._make(ast.BreakStatement, start)
                self._consume_semicolon(start)
                return node
            if word == "continue":
                start = self._advance()
                node = self._make(ast.ContinueStatement, start)
                self._consume_semicolon(start)
                return node
            if word == "throw":
                return self._parse_throw()
            if word == "try":
                return self._parse_try()
            if word == "switch":
                return self._parse_switch()
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_punct(";"):
            start = self._advance()
            return self._make(ast.EmptyStatement, start)
        return self._parse_expression_statement()

    def _parse_block(self) -> ast.BlockStatement:
        start = self._expect_punct("{")
        body: List[ast.Node] = []
        while not self._check_punct("}"):
            if self._at_end():
                raise JSSyntaxError("unterminated block", start.line, start.column)
            body.append(self._parse_statement())
        self._expect_punct("}")
        node = self._make(ast.BlockStatement, start)
        node.body = body
        return node

    def _parse_variable_declaration(self, consume_semicolon: bool = True) -> ast.VariableDeclaration:
        start = self._advance()  # var/let/const keyword
        kind = start.value
        declarations: List[ast.VariableDeclarator] = []
        while True:
            name_token = self._expect_identifier()
            declarator = self._make(ast.VariableDeclarator, name_token)
            declarator.name = name_token.value
            if self._match_punct("="):
                declarator.init = self._parse_assignment()
            declarations.append(declarator)
            if not self._match_punct(","):
                break
        node = self._make(ast.VariableDeclaration, start)
        node.kind_keyword = kind
        node.declarations = declarations
        if consume_semicolon:
            self._consume_semicolon(start)
        return node

    def _parse_function_declaration(self) -> ast.FunctionDeclaration:
        start = self._expect_keyword("function")
        name_token = self._expect_identifier()
        params = self._parse_params()
        body = self._parse_block()
        node = self._make(ast.FunctionDeclaration, start)
        node.name = name_token.value
        node.params = params
        node.body = body
        return node

    def _parse_params(self) -> List[str]:
        self._expect_punct("(")
        params: List[str] = []
        if not self._check_punct(")"):
            while True:
                params.append(self._expect_identifier().value)
                if not self._match_punct(","):
                    break
        self._expect_punct(")")
        return params

    def _parse_if(self) -> ast.IfStatement:
        start = self._expect_keyword("if")
        self._expect_punct("(")
        test = self._parse_expression()
        self._expect_punct(")")
        consequent = self._parse_statement()
        alternate = None
        if self._match_keyword("else"):
            alternate = self._parse_statement()
        node = self._make(ast.IfStatement, start)
        node.test = test
        node.consequent = consequent
        node.alternate = alternate
        return node

    def _parse_for(self) -> ast.Node:
        start = self._expect_keyword("for")
        self._expect_punct("(")

        # Distinguish `for (... in/of ...)` from a classic three-clause for.
        if self._looks_like_for_in():
            return self._finish_for_in(start)

        init: Optional[ast.Node] = None
        if not self._check_punct(";"):
            if self._peek().type is TokenType.KEYWORD and self._peek().value in ("var", "let", "const"):
                init = self._parse_variable_declaration(consume_semicolon=False)
            else:
                expr = self._parse_expression()
                init = self._make(ast.ExpressionStatement, start)
                init.expression = expr
        self._expect_punct(";")
        test = None if self._check_punct(";") else self._parse_expression()
        self._expect_punct(";")
        update = None if self._check_punct(")") else self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        node = self._make(ast.ForStatement, start)
        node.init = init
        node.test = test
        node.update = update
        node.body = body
        return node

    def _looks_like_for_in(self) -> bool:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value in ("var", "let", "const"):
            ident = self._peek(1)
            keyword = self._peek(2)
            return (
                ident.type is TokenType.IDENTIFIER
                and keyword.type is TokenType.KEYWORD
                and keyword.value in ("in", "of")
            )
        if token.type is TokenType.IDENTIFIER:
            keyword = self._peek(1)
            return keyword.type is TokenType.KEYWORD and keyword.value in ("in", "of")
        return False

    def _finish_for_in(self, start: Token) -> ast.ForInStatement:
        declaration_kind: Optional[str] = None
        if self._peek().type is TokenType.KEYWORD and self._peek().value in ("var", "let", "const"):
            declaration_kind = self._advance().value
        target_name = self._expect_identifier().value
        keyword = self._advance()  # `in` or `of`
        of_loop = keyword.value == "of"
        iterable = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        node = self._make(ast.ForInStatement, start)
        node.declaration_kind = declaration_kind
        node.target_name = target_name
        node.iterable = iterable
        node.body = body
        node.of_loop = of_loop
        return node

    def _parse_while(self) -> ast.WhileStatement:
        start = self._expect_keyword("while")
        self._expect_punct("(")
        test = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        node = self._make(ast.WhileStatement, start)
        node.test = test
        node.body = body
        return node

    def _parse_do_while(self) -> ast.DoWhileStatement:
        start = self._expect_keyword("do")
        body = self._parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        test = self._parse_expression()
        self._expect_punct(")")
        self._consume_semicolon(start)
        node = self._make(ast.DoWhileStatement, start)
        node.body = body
        node.test = test
        return node

    def _parse_return(self) -> ast.ReturnStatement:
        start = self._expect_keyword("return")
        argument = None
        token = self._peek()
        if (
            not token.is_punct(";")
            and not token.is_punct("}")
            and token.type is not TokenType.EOF
            and token.line == start.line
        ):
            argument = self._parse_expression()
        self._consume_semicolon(start)
        node = self._make(ast.ReturnStatement, start)
        node.argument = argument
        return node

    def _parse_throw(self) -> ast.ThrowStatement:
        start = self._expect_keyword("throw")
        argument = self._parse_expression()
        self._consume_semicolon(start)
        node = self._make(ast.ThrowStatement, start)
        node.argument = argument
        return node

    def _parse_try(self) -> ast.TryStatement:
        start = self._expect_keyword("try")
        block = self._parse_block()
        handler = None
        finalizer = None
        if self._check_keyword("catch"):
            catch_token = self._advance()
            param = None
            if self._match_punct("("):
                param = self._expect_identifier().value
                self._expect_punct(")")
            handler_body = self._parse_block()
            handler = self._make(ast.CatchClause, catch_token)
            handler.param = param
            handler.body = handler_body
        if self._match_keyword("finally"):
            finalizer = self._parse_block()
        if handler is None and finalizer is None:
            raise JSSyntaxError("try without catch or finally", start.line, start.column)
        node = self._make(ast.TryStatement, start)
        node.block = block
        node.handler = handler
        node.finalizer = finalizer
        return node

    def _parse_switch(self) -> ast.SwitchStatement:
        start = self._expect_keyword("switch")
        self._expect_punct("(")
        discriminant = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[ast.SwitchCase] = []
        while not self._check_punct("}"):
            case_token = self._peek()
            if self._match_keyword("case"):
                test = self._parse_expression()
            elif self._match_keyword("default"):
                test = None
            else:
                raise JSSyntaxError(
                    "expected 'case' or 'default' in switch", case_token.line, case_token.column
                )
            self._expect_punct(":")
            body: List[ast.Node] = []
            while not (
                self._check_punct("}") or self._check_keyword("case") or self._check_keyword("default")
            ):
                body.append(self._parse_statement())
            case_node = self._make(ast.SwitchCase, case_token)
            case_node.test = test
            case_node.body = body
            cases.append(case_node)
        self._expect_punct("}")
        node = self._make(ast.SwitchStatement, start)
        node.discriminant = discriminant
        node.cases = cases
        return node

    def _parse_expression_statement(self) -> ast.ExpressionStatement:
        start = self._peek()
        expression = self._parse_expression()
        self._consume_semicolon(start)
        node = self._make(ast.ExpressionStatement, start)
        node.expression = expression
        return node

    # ----------------------------------------------------------- expressions
    def _parse_expression(self) -> ast.Node:
        expr = self._parse_assignment()
        if self._check_punct(","):
            start = self._peek()
            expressions = [expr]
            while self._match_punct(","):
                expressions.append(self._parse_assignment())
            node = self._make(ast.SequenceExpression, start)
            node.expressions = expressions
            return node
        return expr

    def _parse_assignment(self) -> ast.Node:
        left = self._parse_conditional()
        token = self._peek()
        if token.type is TokenType.PUNCTUATOR and token.value in _ASSIGNMENT_OPERATORS:
            if not isinstance(left, (ast.Identifier, ast.MemberExpression)):
                raise JSSyntaxError("invalid assignment target", token.line, token.column)
            self._advance()
            value = self._parse_assignment()
            node = self._make(ast.AssignmentExpression, token)
            node.operator = token.value
            node.target = left
            node.value = value
            return node
        return left

    def _parse_conditional(self) -> ast.Node:
        test = self._parse_binary(0)
        if self._check_punct("?"):
            token = self._advance()
            consequent = self._parse_assignment()
            self._expect_punct(":")
            alternate = self._parse_assignment()
            node = self._make(ast.ConditionalExpression, token)
            node.test = test
            node.consequent = consequent
            node.alternate = alternate
            return node
        return test

    def _binary_op_at(self) -> Optional[str]:
        token = self._peek()
        if token.type is TokenType.PUNCTUATOR and token.value in _BINARY_PRECEDENCE:
            return token.value
        if token.type is TokenType.KEYWORD and token.value in ("instanceof", "in"):
            return token.value
        return None

    def _parse_binary(self, min_precedence: int) -> ast.Node:
        left = self._parse_unary()
        while True:
            operator = self._binary_op_at()
            if operator is None:
                return left
            precedence = _BINARY_PRECEDENCE[operator]
            if precedence < min_precedence:
                return left
            token = self._advance()
            right = self._parse_binary(precedence + 1)
            if operator in ("&&", "||"):
                node = self._make(ast.LogicalExpression, token)
            else:
                node = self._make(ast.BinaryExpression, token)
            node.operator = operator
            node.left = left
            node.right = right
            left = node

    def _parse_unary(self) -> ast.Node:
        token = self._peek()
        if token.type is TokenType.PUNCTUATOR and token.value in ("!", "-", "+", "~"):
            self._advance()
            operand = self._parse_unary()
            node = self._make(ast.UnaryExpression, token)
            node.operator = token.value
            node.operand = operand
            return node
        if token.type is TokenType.KEYWORD and token.value in ("typeof", "void", "delete"):
            self._advance()
            operand = self._parse_unary()
            node = self._make(ast.UnaryExpression, token)
            node.operator = token.value
            node.operand = operand
            return node
        if token.type is TokenType.PUNCTUATOR and token.value in ("++", "--"):
            self._advance()
            target = self._parse_unary()
            node = self._make(ast.UpdateExpression, token)
            node.operator = token.value
            node.target = target
            node.prefix = True
            return node
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Node:
        expr = self._parse_call_member()
        token = self._peek()
        if (
            token.type is TokenType.PUNCTUATOR
            and token.value in ("++", "--")
            and token.line == self._previous_line()
        ):
            self._advance()
            node = self._make(ast.UpdateExpression, token)
            node.operator = token.value
            node.target = expr
            node.prefix = False
            return node
        return expr

    def _previous_line(self) -> int:
        if self.pos == 0:
            return self._peek().line
        return self.tokens[self.pos - 1].line

    def _parse_call_member(self) -> ast.Node:
        if self._check_keyword("new"):
            return self._parse_new()
        expr = self._parse_primary()
        return self._parse_call_member_tail(expr)

    def _parse_call_member_tail(self, expr: ast.Node) -> ast.Node:
        while True:
            if self._check_punct("."):
                token = self._advance()
                prop_token = self._peek()
                if prop_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                    raise JSSyntaxError(
                        "expected property name after '.'", prop_token.line, prop_token.column
                    )
                self._advance()
                prop = self._make(ast.StringLiteral, prop_token)
                prop.value = str(prop_token.value)
                node = self._make(ast.MemberExpression, token)
                node.object = expr
                node.property = prop
                node.computed = False
                expr = node
            elif self._check_punct("["):
                token = self._advance()
                prop = self._parse_expression()
                self._expect_punct("]")
                node = self._make(ast.MemberExpression, token)
                node.object = expr
                node.property = prop
                node.computed = True
                expr = node
            elif self._check_punct("("):
                token = self._peek()
                arguments = self._parse_arguments()
                node = self._make(ast.CallExpression, token)
                node.callee = expr
                node.arguments = arguments
                expr = node
            else:
                return expr

    def _parse_new(self) -> ast.Node:
        start = self._expect_keyword("new")
        callee = self._parse_primary()
        # Allow member access on the constructor (`new lib.Thing(...)`).
        while self._check_punct(".") or self._check_punct("["):
            if self._match_punct("."):
                prop_token = self._peek()
                if prop_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                    raise JSSyntaxError(
                        "expected property name after '.'", prop_token.line, prop_token.column
                    )
                self._advance()
                prop = self._make(ast.StringLiteral, prop_token)
                prop.value = str(prop_token.value)
                member = self._make(ast.MemberExpression, prop_token)
                member.object = callee
                member.property = prop
                member.computed = False
                callee = member
            else:
                self._expect_punct("[")
                prop = self._parse_expression()
                self._expect_punct("]")
                member = self._make(ast.MemberExpression, start)
                member.object = callee
                member.property = prop
                member.computed = True
                callee = member
        arguments: List[ast.Node] = []
        if self._check_punct("("):
            arguments = self._parse_arguments()
        node = self._make(ast.NewExpression, start)
        node.callee = callee
        node.arguments = arguments
        return self._parse_call_member_tail(node)

    def _parse_arguments(self) -> List[ast.Node]:
        self._expect_punct("(")
        arguments: List[ast.Node] = []
        if not self._check_punct(")"):
            while True:
                arguments.append(self._parse_assignment())
                if not self._match_punct(","):
                    break
        self._expect_punct(")")
        return arguments

    def _parse_primary(self) -> ast.Node:
        token = self._peek()

        if token.type is TokenType.NUMBER:
            self._advance()
            node = self._make(ast.NumberLiteral, token)
            node.value = float(token.value)
            return node
        if token.type is TokenType.STRING:
            self._advance()
            node = self._make(ast.StringLiteral, token)
            node.value = str(token.value)
            return node
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            node = self._make(ast.Identifier, token)
            node.name = token.value
            return node
        if token.type is TokenType.KEYWORD:
            word = token.value
            if word == "true" or word == "false":
                self._advance()
                node = self._make(ast.BooleanLiteral, token)
                node.value = word == "true"
                return node
            if word == "null":
                self._advance()
                return self._make(ast.NullLiteral, token)
            if word == "undefined":
                self._advance()
                return self._make(ast.UndefinedLiteral, token)
            if word == "this":
                self._advance()
                return self._make(ast.ThisExpression, token)
            if word == "function":
                return self._parse_function_expression()
            raise JSSyntaxError(f"unexpected keyword {word!r}", token.line, token.column)
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        if token.is_punct("["):
            return self._parse_array_literal()
        if token.is_punct("{"):
            return self._parse_object_literal()
        raise JSSyntaxError(f"unexpected token {token.value!r}", token.line, token.column)

    def _parse_function_expression(self) -> ast.FunctionExpression:
        start = self._expect_keyword("function")
        name = None
        if self._peek().type is TokenType.IDENTIFIER:
            name = self._advance().value
        params = self._parse_params()
        body = self._parse_block()
        node = self._make(ast.FunctionExpression, start)
        node.name = name
        node.params = params
        node.body = body
        return node

    def _parse_array_literal(self) -> ast.ArrayLiteral:
        start = self._expect_punct("[")
        elements: List[ast.Node] = []
        while not self._check_punct("]"):
            elements.append(self._parse_assignment())
            if not self._match_punct(","):
                break
        self._expect_punct("]")
        node = self._make(ast.ArrayLiteral, start)
        node.elements = elements
        return node

    def _parse_object_literal(self) -> ast.ObjectLiteral:
        start = self._expect_punct("{")
        properties: List[ast.Property] = []
        while not self._check_punct("}"):
            key_token = self._peek()
            if key_token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                key = str(key_token.value)
                self._advance()
            elif key_token.type is TokenType.STRING:
                key = str(key_token.value)
                self._advance()
            elif key_token.type is TokenType.NUMBER:
                key = _number_to_key(float(key_token.value))
                self._advance()
            else:
                raise JSSyntaxError(
                    f"invalid property key {key_token.value!r}", key_token.line, key_token.column
                )
            self._expect_punct(":")
            value = self._parse_assignment()
            prop = self._make(ast.Property, key_token)
            prop.key = key
            prop.value = value
            properties.append(prop)
            if not self._match_punct(","):
                break
        self._expect_punct("}")
        node = self._make(ast.ObjectLiteral, start)
        node.properties = properties
        return node


def _number_to_key(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def parse(source: str, name: str = "<program>") -> ast.Program:
    """Parse ``source`` and return the :class:`Program` AST."""
    return Parser(source, name=name).parse()
