"""Scope/heap snapshot-and-fork primitives for speculative execution.

The speculative executor (:mod:`repro.parallel.speculative`) re-executes a
loop instance in *isolated* contexts: each worker gets a private, structurally
identical copy of every environment frame and guest object reachable from the
loop's scope chain.  This module provides the three primitives that make that
possible:

* :func:`fork_state` — an identity-preserving deep copy of the reachable
  environment/heap graph.  Guest objects, arrays, functions and environment
  frames are copied (cycles included); :class:`~repro.jsvm.values.NativeFunction`
  instances and AST nodes are shared (host code and syntax are immutable from
  the guest's point of view).
* :func:`diff_forks` — given two forks of the *same* pre-state (an untouched
  baseline and an executed worker), the per-location write-set the worker
  produced, keyed by the identity of the original object.
* :func:`merge_diff` / :func:`heap_digest` — apply a worker's write-set to the
  baseline fork, and compute a canonical content digest of a reachable state
  so that two isomorphic heaps (e.g. the merged speculative state and the
  serially produced state) can be compared bit-for-bit.

Everything here is deterministic and purely in-process; nothing touches the
virtual clock or the hook bus.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .scope import Environment
from .values import NULL, UNDEFINED, JSArray, JSFunction, JSObject, NativeFunction

#: Sentinel used in write-sets for deleted properties/bindings.
DELETED = object()

#: Location key: (id of *original* object or environment, property/binding name).
Location = Tuple[int, str]


def _is_guest_container(value: Any) -> bool:
    """True for values that are copied by a fork (objects and scopes)."""
    if isinstance(value, NativeFunction):
        return False
    return isinstance(value, (JSObject, Environment))


class HeapFork:
    """One identity-preserving copy of a reachable environment/heap graph.

    ``memo`` maps ``id(original) -> copy`` and ``reverse`` maps
    ``id(copy) -> original``; both sides are kept alive by the fork so the
    ``id``-based keys stay unambiguous for the fork's lifetime.
    """

    def __init__(self) -> None:
        self.memo: Dict[int, Any] = {}
        self.reverse: Dict[int, Any] = {}
        #: Strong references keeping every original (and copy) alive.
        self._originals: List[Any] = []
        #: ids of every copy — the write barrier's membership set seed.
        self.membership: Set[int] = set()
        self.root: Optional[Environment] = None

    # ------------------------------------------------------------- mapping
    def copy_of(self, original: Any) -> Any:
        """The fork-side copy of ``original`` (identity for non-containers)."""
        if _is_guest_container(original):
            return self.memo[id(original)]
        return original

    def original_of(self, copy: Any) -> Optional[Any]:
        """The original behind a fork-side ``copy`` (None for new objects)."""
        return self.reverse.get(id(copy))

    def oid(self, copy: Any) -> Optional[int]:
        """Identity key of the original behind ``copy`` (None for new objects)."""
        original = self.reverse.get(id(copy))
        return id(original) if original is not None else None


def fork_state(root_env: Environment, extra_roots: Iterable[Any] = ()) -> HeapFork:
    """Deep-copy everything reachable from ``root_env`` (and ``extra_roots``).

    The copy preserves aliasing and cycles.  Shared immutables — native
    functions, AST bodies, loop-characterization stamps — are referenced, not
    copied; the ``extra`` host-companion dict of guest objects is shallow
    copied (host companions are shared, which is safe because speculative
    chunks abort on any host access).
    """
    fork = HeapFork()
    memo = fork.memo
    pending: List[Any] = []

    def shell_for(original: Any) -> Any:
        if not _is_guest_container(original):
            return original
        key = id(original)
        copy = memo.get(key)
        if copy is None:
            if isinstance(original, Environment):
                copy = Environment.__new__(Environment)
            elif isinstance(original, JSFunction):
                copy = JSFunction.__new__(JSFunction)
            elif isinstance(original, JSArray):
                copy = JSArray.__new__(JSArray)
            else:
                copy = JSObject.__new__(JSObject)
            memo[key] = copy
            fork.reverse[id(copy)] = original
            fork.membership.add(id(copy))
            fork._originals.append(original)
            pending.append(original)
        return copy

    root_copy = shell_for(root_env)
    for extra in extra_roots:
        shell_for(extra)

    while pending:
        original = pending.pop()
        copy = memo[id(original)]
        if isinstance(original, Environment):
            copy.bindings = {name: shell_for(v) for name, v in original.bindings.items()}
            copy.parent = shell_for(original.parent) if original.parent is not None else None
            copy.is_function_scope = original.is_function_scope
            copy.consts = set(original.consts)
            copy.label = original.label
            # Slot-addressed frames: the layout is immutable compile-time
            # metadata (shared); the flat slot list mirrors the dict and must
            # alias the same copies (HOLE passes through shell_for untouched).
            copy.layout = original.layout
            slots = original.slots
            copy.slots = None if slots is None else [shell_for(v) for v in slots]
            continue
        # JSObject family: shared slots first, subclass slots after.
        copy.properties = {name: shell_for(v) for name, v in original.properties.items()}
        copy.prototype = shell_for(original.prototype) if original.prototype is not None else None
        copy.class_name = original.class_name
        copy.creation_site = original.creation_site
        copy.creation_stamp = original.creation_stamp
        copy.extra = dict(original.extra)
        # Shapes are immutable metadata shared across forks; inline caches pin
        # prototype *identity*, so sharing shapes cannot leak cached holders
        # between forked heaps.
        copy.shape = original.shape
        copy.is_proto = original.is_proto
        copy.child_root_shape = original.child_root_shape
        if isinstance(original, JSArray):
            copy.elements = [shell_for(v) for v in original.elements]
        elif isinstance(original, JSFunction):
            copy.name = original.name
            copy.params = original.params
            copy.body = original.body
            copy.closure = shell_for(original.closure) if original.closure is not None else None
            copy.is_arrow = original.is_arrow
            copy.declaration_node = original.declaration_node

    fork.root = root_copy
    return fork


# ---------------------------------------------------------------------------
# canonical digests
# ---------------------------------------------------------------------------
def _primitive_token(value: Any) -> Optional[str]:
    """Canonical token for a guest primitive; None when ``value`` is not one."""
    if value is UNDEFINED:
        return "undef"
    if value is NULL:
        return "null"
    if isinstance(value, bool):
        return "bool:true" if value else "bool:false"
    if isinstance(value, (int, float)):
        return f"num:{float(value)!r}"
    if isinstance(value, str):
        return f"str:{len(value)}:{value}"
    return None


def heap_digest(root_env: Environment, extra_roots: Iterable[Any] = ()) -> str:
    """Content digest of the guest-visible state reachable from ``root_env``.

    The digest canonicalizes object identity by first-visit numbering, so two
    *isomorphic* states (e.g. a merged speculative fork and the serially
    produced original) digest identically even though they are distinct
    Python object graphs.  Property order is guest-visible (``for...in``
    enumeration) and therefore hashed in insertion order; environment binding
    names are sorted (scopes are not enumerable from guest code).  Host
    companions (``extra``) and analysis stamps are excluded.
    """
    hasher = hashlib.sha256()
    seen: Dict[int, int] = {}
    stack: List[Any] = [root_env]
    for extra in reversed(list(extra_roots)):
        stack.append(extra)

    def emit(token: str) -> None:
        hasher.update(token.encode("utf-8", "surrogatepass"))
        hasher.update(b"\x00")

    # Structural markers are 1-tuples so they can never be confused with a
    # guest string value.
    def marker(text: str) -> Tuple[str]:
        return (text,)

    while stack:
        item = stack.pop()
        if type(item) is tuple:
            emit(item[0])
            continue
        token = _primitive_token(item)
        if token is not None:
            emit(token)
            continue
        if isinstance(item, NativeFunction):
            emit(f"native:{item.name}")
            continue
        key = id(item)
        index = seen.get(key)
        if index is not None:
            emit(f"ref:{index}")
            continue
        seen[key] = len(seen)
        if isinstance(item, Environment):
            emit(f"env:{len(seen) - 1}:{int(item.is_function_scope)}")
            children: List[Any] = []
            for name in sorted(item.bindings):
                children.append(marker("bind:" + name))
                children.append(item.bindings[name])
            children.append(marker("parent"))
            children.append(item.parent if item.parent is not None else marker("none"))
            stack.extend(reversed(children))
            continue
        if isinstance(item, JSFunction):
            node_id = getattr(item.declaration_node, "node_id", -1)
            emit(f"func:{item.name}:{','.join(item.params)}:{node_id}")
        elif isinstance(item, JSArray):
            emit(f"array:{len(item.elements)}")
        elif isinstance(item, JSObject):
            emit(f"object:{item.class_name}:{item.creation_site}")
        else:  # pragma: no cover - host values never reach guest state
            emit(f"host:{type(item).__name__}")
            continue
        children = []
        if isinstance(item, JSArray):
            children.extend(item.elements)
        for name, value in item.properties.items():
            children.append(marker("prop:" + name))
            children.append(value)
        if isinstance(item, JSFunction) and item.closure is not None:
            children.append(marker("closure"))
            children.append(item.closure)
        children.append(marker("proto"))
        children.append(item.prototype if item.prototype is not None else marker("none"))
        stack.extend(reversed(children))
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# write-set extraction (diff of two forks of the same pre-state)
# ---------------------------------------------------------------------------
def _refs_equal(value_a: Any, value_b: Any, fork_a: HeapFork, fork_b: HeapFork) -> bool:
    """True when two fork-side values denote the same guest value.

    Container references are equal when both sides map back to the *same*
    original; a reference to a chunk-created object is never equal to
    anything on the other side.
    """
    token_a, token_b = _primitive_token(value_a), _primitive_token(value_b)
    if token_a is not None or token_b is not None:
        return token_a == token_b
    if isinstance(value_a, NativeFunction) or isinstance(value_b, NativeFunction):
        return value_a is value_b
    if _is_guest_container(value_a) and _is_guest_container(value_b):
        original_a = fork_a.original_of(value_a)
        original_b = fork_b.original_of(value_b)
        if original_a is None or original_b is None:
            return False
        return original_a is original_b
    return value_a is value_b  # pragma: no cover - host values


def diff_forks(baseline: HeapFork, executed: HeapFork) -> Dict[Location, Any]:
    """Write-set of ``executed`` relative to the untouched ``baseline`` fork.

    Both forks must come from :func:`fork_state` over the same pre-state, so
    their memos share one key space (the ids of the originals).  Returned
    values are *executed*-side values (possibly chunk-created objects); array
    element locations use the stringified index and array length changes the
    ``"length"`` key, matching the property keys the interpreter's hook layer
    reports.  Locations are emitted in the executed fork's insertion order so
    that merging preserves guest-visible enumeration order.
    """
    writes: Dict[Location, Any] = {}
    for original_id, base_copy in baseline.memo.items():
        exec_copy = executed.memo[original_id]
        if isinstance(base_copy, Environment):
            for name, value in exec_copy.bindings.items():
                if name not in base_copy.bindings or not _refs_equal(
                    base_copy.bindings[name], value, baseline, executed
                ):
                    writes[(original_id, name)] = value
            for name in base_copy.bindings:
                if name not in exec_copy.bindings:  # pragma: no cover - no guest path deletes bindings
                    writes[(original_id, name)] = DELETED
            continue
        if isinstance(base_copy, JSArray):
            base_elements, exec_elements = base_copy.elements, exec_copy.elements
            common = min(len(base_elements), len(exec_elements))
            for index in range(common):
                if not _refs_equal(base_elements[index], exec_elements[index], baseline, executed):
                    writes[(original_id, str(index))] = exec_elements[index]
            for index in range(common, len(exec_elements)):
                writes[(original_id, str(index))] = exec_elements[index]
            if len(exec_elements) != len(base_elements):
                writes[(original_id, "length")] = float(len(exec_elements))
        for name, value in exec_copy.properties.items():
            if name not in base_copy.properties or not _refs_equal(
                base_copy.properties[name], value, baseline, executed
            ):
                writes[(original_id, name)] = value
        for name in base_copy.properties:
            if name not in exec_copy.properties:
                writes[(original_id, name)] = DELETED
        # Note: the internal ``.prototype`` slot is fixed at construction in
        # this VM (no setPrototypeOf; ``__proto__`` is an ordinary property),
        # so prototype pointers never need diffing.
    return writes


# ---------------------------------------------------------------------------
# merging
# ---------------------------------------------------------------------------
class _Transplanter:
    """Rewrites executed-fork values into baseline-fork values.

    References to forked pre-state objects translate through the shared
    original ids; objects *created* during the chunk are cloned into the
    baseline world (recursively, cycles included).
    """

    def __init__(self, executed: HeapFork, baseline: HeapFork) -> None:
        self.executed = executed
        self.baseline = baseline
        self._clones: Dict[int, Any] = {}

    def translate(self, value: Any) -> Any:
        if not _is_guest_container(value):
            return value
        original = self.executed.original_of(value)
        if original is not None:
            return self.baseline.memo[id(original)]
        return self._clone_new(value)

    def _clone_new(self, value: Any) -> Any:
        existing = self._clones.get(id(value))
        if existing is not None:
            return existing
        if isinstance(value, Environment):
            clone = Environment.__new__(Environment)
            self._clones[id(value)] = clone
            clone.bindings = {}
            clone.parent = self.translate(value.parent) if value.parent is not None else None
            clone.is_function_scope = value.is_function_scope
            clone.consts = set(value.consts)
            clone.label = value.label
            clone.layout = value.layout
            clone.slots = None if value.slots is None else [self.translate(v) for v in value.slots]
            for name, bound in value.bindings.items():
                clone.bindings[name] = self.translate(bound)
            return clone
        if isinstance(value, JSFunction):
            clone = JSFunction.__new__(JSFunction)
        elif isinstance(value, JSArray):
            clone = JSArray.__new__(JSArray)
        else:
            clone = JSObject.__new__(JSObject)
        self._clones[id(value)] = clone
        clone.properties = {}
        clone.prototype = self.translate(value.prototype) if value.prototype is not None else None
        clone.class_name = value.class_name
        clone.creation_site = value.creation_site
        clone.creation_stamp = value.creation_stamp
        clone.extra = dict(value.extra)
        clone.shape = value.shape
        clone.is_proto = value.is_proto
        clone.child_root_shape = value.child_root_shape
        if isinstance(value, JSArray):
            clone.elements = [self.translate(element) for element in value.elements]
        elif isinstance(value, JSFunction):
            clone.name = value.name
            clone.params = value.params
            clone.body = value.body
            clone.closure = self.translate(value.closure) if value.closure is not None else None
            clone.is_arrow = value.is_arrow
            clone.declaration_node = value.declaration_node
        for name, prop in value.properties.items():
            clone.properties[name] = self.translate(prop)
        return clone


def merge_diff(baseline: HeapFork, executed: HeapFork, writes: Dict[Location, Any]) -> None:
    """Apply one worker's write-set onto the baseline fork, in place.

    ``writes`` must come from :func:`diff_forks` over the same fork pair.
    Array ``"length"`` records are applied after the element records the dict
    already orders before them, so growth and truncation both land correctly.
    """
    transplanter = _Transplanter(executed, baseline)
    for (original_id, key), value in writes.items():
        target = baseline.memo[original_id]
        if isinstance(target, Environment):
            if value is DELETED:  # pragma: no cover - no guest path deletes bindings
                target.drop_binding(key)
            else:
                # store_binding keeps the slot mirror of slot-addressed
                # frames in sync with the authoritative dict.
                target.store_binding(key, transplanter.translate(value))
            continue
        if value is DELETED:
            target.delete(key)
            continue
        if isinstance(target, JSArray) and key == "length":
            # JSArray.set already implements length truncate/extend.
            target.set("length", float(value))
            continue
        target.set(key, transplanter.translate(value))
