"""Lexical environments for the mini-JavaScript interpreter.

JavaScript (ES5) ``var`` declarations have *function* scope: a ``var``
declared inside a loop body is hoisted to the top of the enclosing function.
The paper's dependence-analysis walkthrough (Figure 6) relies on exactly this
behaviour — the ``var p = bodies[i]`` inside the ``for`` loop is shared by
every iteration, producing an output dependence.  ``let``/``const`` introduce
block-scoped bindings.

The environment model therefore distinguishes *function* environments (the
hoisting target for ``var``) from *block* environments.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from .errors import JSReferenceError, JSTypeError
from .values import UNDEFINED


class Environment:
    """A single lexical environment frame."""

    __slots__ = ("bindings", "parent", "is_function_scope", "consts", "label")

    def __init__(
        self,
        parent: Optional["Environment"] = None,
        is_function_scope: bool = False,
        label: str = "",
    ) -> None:
        self.bindings: Dict[str, Any] = {}
        self.parent = parent
        self.is_function_scope = is_function_scope
        self.consts: set = set()
        self.label = label

    # ------------------------------------------------------------ declaring
    def declare_var(self, name: str, value: Any = UNDEFINED) -> None:
        """Declare a ``var`` binding: hoisted to the nearest function scope."""
        target = self.nearest_function_scope()
        if name not in target.bindings:
            target.bindings[name] = value
        elif value is not UNDEFINED:
            target.bindings[name] = value

    def declare_let(self, name: str, value: Any = UNDEFINED, constant: bool = False) -> None:
        """Declare a block-scoped binding in this environment."""
        self.bindings[name] = value
        if constant:
            self.consts.add(name)

    def nearest_function_scope(self) -> "Environment":
        env: Environment = self
        while not env.is_function_scope and env.parent is not None:
            env = env.parent
        return env

    # ------------------------------------------------------------ accessing
    def lookup_env(self, name: str) -> Optional["Environment"]:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.bindings:
                return env
            env = env.parent
        return None

    def get(self, name: str) -> Any:
        env = self.lookup_env(name)
        if env is None:
            raise JSReferenceError(f"{name} is not defined")
        return env.bindings[name]

    def has(self, name: str) -> bool:
        return self.lookup_env(name) is not None

    def set(self, name: str, value: Any) -> "Environment":
        """Assign to an existing binding; returns the environment that holds it.

        Assignment to an undeclared identifier creates a global binding (JS
        sloppy-mode semantics), which is exactly the "global variable" pattern
        the survey section of the paper discusses.
        """
        env = self.lookup_env(name)
        if env is None:
            global_env = self.global_env()
            global_env.bindings[name] = value
            return global_env
        if name in env.consts:
            raise JSTypeError(f"assignment to constant variable {name!r}")
        env.bindings[name] = value
        return env

    def global_env(self) -> "Environment":
        env: Environment = self
        while env.parent is not None:
            env = env.parent
        return env

    def depth_of(self, name: str) -> int:
        """Number of frames between this environment and the one holding ``name``."""
        depth = 0
        env: Optional[Environment] = self
        while env is not None:
            if name in env.bindings:
                return depth
            env = env.parent
            depth += 1
        raise JSReferenceError(f"{name} is not defined")

    def frames(self) -> Iterator["Environment"]:
        env: Optional[Environment] = self
        while env is not None:
            yield env
            env = env.parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "fn" if self.is_function_scope else "block"
        return f"<Environment {kind} {self.label} {list(self.bindings)[:6]}>"
