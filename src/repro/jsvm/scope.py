"""Lexical environments for the mini-JavaScript interpreter.

JavaScript (ES5) ``var`` declarations have *function* scope: a ``var``
declared inside a loop body is hoisted to the top of the enclosing function.
The paper's dependence-analysis walkthrough (Figure 6) relies on exactly this
behaviour — the ``var p = bodies[i]`` inside the ``for`` loop is shared by
every iteration, producing an output dependence.  ``let``/``const`` introduce
block-scoped bindings.

The environment model therefore distinguishes *function* environments (the
hoisting target for ``var``) from *block* environments.

Two-tier storage
----------------

Every frame owns an authoritative ``bindings`` dict — the representation all
reflective consumers (heap digests, speculation forks/diffs, tracers, the
reference interpreter) read.  Frames whose shape was classified statically
(:mod:`repro.jsvm.resolver`) additionally carry a shared
:class:`~repro.jsvm.resolver.ScopeLayout` and a flat ``slots`` list the
compiled execution core addresses by index; the two views are kept in sync
by every declaring/assigning method here.  ``slots`` entries start as the
:data:`HOLE` sentinel, meaning "binding does not exist yet in this frame"
(``let``/``const`` before their declaration statement runs) — slot-addressed
readers fall back to the dict walk on a HOLE, which reproduces dict-mode
semantics exactly.

``REPRO_FORCE_DICT_SCOPES=1`` disables slot addressing process-wide (every
frame stays dict-only); the CI fallback job runs the whole tier-1 suite in
that configuration.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, Optional

from .errors import JSReferenceError, JSTypeError
from .values import UNDEFINED

#: Slot sentinel: "this binding does not exist in this frame (yet)".
HOLE = object()

#: declare_var() default: "declaration without an initializer" — distinct
#: from an explicit ``var x = undefined`` initializer (which must re-assign).
_UNSET = object()

#: Shared empty const-name container; upgraded to a real set on first const.
_NO_CONSTS: frozenset = frozenset()

_SLOT_SCOPES = [os.environ.get("REPRO_FORCE_DICT_SCOPES", "") in ("", "0")]


def slot_scopes_enabled() -> bool:
    """True when static resolution may emit slot-addressed frames/accesses."""
    return _SLOT_SCOPES[0]


def set_slot_scopes(enabled: bool) -> bool:
    """Toggle slot addressing (tests); returns the previous setting.

    The mode is baked into an AST when it is resolved/compiled, so switching
    only affects programs parsed *after* the call.
    """
    previous = _SLOT_SCOPES[0]
    _SLOT_SCOPES[0] = bool(enabled)
    return previous


class Environment:
    """A single lexical environment frame."""

    __slots__ = ("bindings", "parent", "is_function_scope", "consts", "label", "layout", "slots")

    def __init__(
        self,
        parent: Optional["Environment"] = None,
        is_function_scope: bool = False,
        label: str = "",
        layout: Any = None,
    ) -> None:
        self.bindings: Dict[str, Any] = {}
        self.parent = parent
        self.is_function_scope = is_function_scope
        self.consts = _NO_CONSTS
        self.label = label
        self.layout = layout
        self.slots = None if layout is None else [HOLE] * layout.size

    # ------------------------------------------------------------ declaring
    def declare_var(self, name: str, value: Any = _UNSET) -> None:
        """Declare a ``var`` binding: hoisted to the nearest function scope.

        Without an explicit ``value`` this is a bare re-declaration: it
        creates the binding as ``undefined`` if absent and otherwise leaves
        the current value alone.  With a ``value`` — *including an explicit
        ``undefined``*, as in ``var x = undefined;`` — the binding is
        (re-)assigned.  The seed conflated the two, silently ignoring
        explicit ``undefined`` initializers on re-declarations.
        """
        target = self.nearest_function_scope()
        if value is _UNSET:
            if name in target.bindings:
                return
            value = UNDEFINED
        target.bindings[name] = value
        layout = target.layout
        if layout is not None:
            idx = layout.index.get(name)
            if idx is not None:
                target.slots[idx] = value

    def declare_let(self, name: str, value: Any = UNDEFINED, constant: bool = False) -> None:
        """Declare a block-scoped binding in this environment."""
        self.bindings[name] = value
        layout = self.layout
        if layout is not None:
            idx = layout.index.get(name)
            if idx is not None:
                self.slots[idx] = value
        if constant:
            if type(self.consts) is frozenset:
                self.consts = set()
            self.consts.add(name)

    def nearest_function_scope(self) -> "Environment":
        env: Environment = self
        while not env.is_function_scope and env.parent is not None:
            env = env.parent
        return env

    # ------------------------------------------------------------ accessing
    def lookup_env(self, name: str) -> Optional["Environment"]:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.bindings:
                return env
            env = env.parent
        return None

    def get(self, name: str) -> Any:
        env = self.lookup_env(name)
        if env is None:
            raise JSReferenceError(f"{name} is not defined")
        return env.bindings[name]

    def has(self, name: str) -> bool:
        return self.lookup_env(name) is not None

    def set(self, name: str, value: Any) -> "Environment":
        """Assign to an existing binding; returns the environment that holds it.

        Assignment to an undeclared identifier creates a global binding (JS
        sloppy-mode semantics), which is exactly the "global variable" pattern
        the survey section of the paper discusses.
        """
        env = self.lookup_env(name)
        if env is None:
            global_env = self.global_env()
            global_env.store_binding(name, value)
            return global_env
        if name in env.consts:
            raise JSTypeError(f"assignment to constant variable {name!r}")
        env.store_binding(name, value)
        return env

    def store_binding(self, name: str, value: Any) -> None:
        """Write ``name`` in *this* frame, keeping dict and slot in sync.

        This is the single low-level mutation primitive: the snapshot
        fork/merge machinery and the speculative reduction merge use it so
        slot-addressed frames never go stale.
        """
        self.bindings[name] = value
        layout = self.layout
        if layout is not None:
            idx = layout.index.get(name)
            if idx is not None:
                self.slots[idx] = value

    def drop_binding(self, name: str) -> None:
        """Remove ``name`` from this frame (slot becomes a HOLE again)."""
        self.bindings.pop(name, None)
        layout = self.layout
        if layout is not None:
            idx = layout.index.get(name)
            if idx is not None:
                self.slots[idx] = HOLE

    def global_env(self) -> "Environment":
        env: Environment = self
        while env.parent is not None:
            env = env.parent
        return env

    def depth_of(self, name: str) -> int:
        """Number of frames between this environment and the one holding ``name``."""
        depth = 0
        env: Optional[Environment] = self
        while env is not None:
            if name in env.bindings:
                return depth
            env = env.parent
            depth += 1
        raise JSReferenceError(f"{name} is not defined")

    def frames(self) -> Iterator["Environment"]:
        env: Optional[Environment] = self
        while env is not None:
            yield env
            env = env.parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "fn" if self.is_function_scope else "block"
        return f"<Environment {kind} {self.label} {list(self.bindings)[:6]}>"
