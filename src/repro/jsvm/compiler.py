"""Closure compilation of the mini-JavaScript AST.

The seed interpreter walked the AST with a per-node ``dict`` dispatch
(``type(node) -> bound method``) and re-resolved operators, member keys and
instrumentation flags on every visit.  This module compiles each AST node
*once* into a Python closure specialized for its node kind: child closures,
operator functions and constant keys are bound at compile time, so executing
a node is a single call with no dispatch lookups left on the hot path.

Semantics are intentionally bit-identical to the seed tree-walker:

* every node evaluation charges exactly one operation on the virtual clock
  (statements executed in statement position additionally bump
  ``stats.statements``, and expression nodes in statement position charge
  twice — once for the statement step, once for the expression — exactly as
  the old ``_exec``/``_eval`` pair did);
* instrumentation events fire in the same order with the same arguments.
  Compiled code consults the interpreter's cached ``trace_mask`` integer
  (kept in sync by the :class:`~repro.jsvm.hooks.HookBus`) once per
  construct, so uninstrumented runs never build event arguments at all.

Compiled closures take ``(rt, env)`` where ``rt`` is the interpreter: they
capture no interpreter state, so a compiled program is shared freely between
interpreter instances (the analysis engine caches ASTs — and therefore
compiled code — across pipeline stages and instrumentation modes).

Compiled code is cached directly on the AST nodes (``_code`` for expression
position, ``_stmt`` for statement position; ``_hoist_plan``/``_body_code``
on function bodies and programs).
"""

from __future__ import annotations

import math
from sys import intern
from typing import Any, Callable, List, Optional, Tuple
from weakref import ref as _weakref

from . import ast_nodes as ast
from .errors import (
    JSReferenceError,
    JSRuntimeError,
    JSThrownValue,
    JSTypeError,
)
from .hooks import EV_BRANCH, EV_ENV, EV_LOOP, EV_PROP, EV_STATEMENT, EV_VAR
from .resolver import build_hoist_plan, resolve_program
from .scope import HOLE, Environment
from .values import (
    _PROTO_EPOCH,
    NULL,
    UNDEFINED,
    JSArray,
    JSObject,
    is_callable,
    loose_equals,
    strict_equals,
    to_boolean,
    to_number,
    to_property_key,
    to_string,
    type_of,
)

Code = Callable[[Any, Any], Any]


class BreakSignal(Exception):
    pass


class ContinueSignal(Exception):
    pass


class ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


_BREAK = BreakSignal
_CONTINUE = ContinueSignal


# ---------------------------------------------------------------------------
# numeric helpers (identical to the seed interpreter's module helpers)
# ---------------------------------------------------------------------------
def _to_int32(number: float) -> int:
    if math.isnan(number) or math.isinf(number):
        return 0
    value = int(number) & 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value


def _to_uint32(number: float) -> int:
    if math.isnan(number) or math.isinf(number):
        return 0
    return int(number) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# binary operators, resolved once at compile time
# ---------------------------------------------------------------------------
def _op_add(left, right):
    # Numbers are floats end to end in this VM; the typed fast path skips
    # four isinstance checks on the dominant numeric case.
    if type(left) is float and type(right) is float:
        return left + right
    if isinstance(left, str) or isinstance(right, str):
        return to_string(left) + to_string(right)
    if isinstance(left, JSObject) or isinstance(right, JSObject):
        return to_string(left) + to_string(right)
    return to_number(left) + to_number(right)


def _op_sub(left, right):
    if type(left) is float and type(right) is float:
        return left - right
    return to_number(left) - to_number(right)


def _op_mul(left, right):
    if type(left) is float and type(right) is float:
        return left * right
    return to_number(left) * to_number(right)


def _op_div(left, right):
    denominator = to_number(right)
    numerator = to_number(left)
    if denominator == 0.0:
        if numerator == 0.0 or math.isnan(numerator):
            return float("nan")
        return math.inf if numerator > 0 else -math.inf
    return numerator / denominator


def _op_mod(left, right):
    denominator = to_number(right)
    numerator = to_number(left)
    if denominator == 0.0 or math.isnan(denominator) or math.isnan(numerator):
        return float("nan")
    if math.isinf(numerator):
        # JS: Infinity % x is NaN (math.fmod would raise a domain error).
        return float("nan")
    return math.fmod(numerator, denominator)


def _compare(operator: str):
    def compare(left, right):
        if type(left) is float and type(right) is float:
            # float comparisons are NaN-correct natively (NaN -> False).
            if operator == "<":
                return left < right
            if operator == ">":
                return left > right
            if operator == "<=":
                return left <= right
            return left >= right
        if isinstance(left, str) and isinstance(right, str):
            if operator == "<":
                return left < right
            if operator == ">":
                return left > right
            if operator == "<=":
                return left <= right
            return left >= right
        a, b = to_number(left), to_number(right)
        if math.isnan(a) or math.isnan(b):
            return False
        if operator == "<":
            return a < b
        if operator == ">":
            return a > b
        if operator == "<=":
            return a <= b
        return a >= b

    return compare


def _op_strict_eq(left, right):
    return strict_equals(left, right)


def _op_strict_ne(left, right):
    return not strict_equals(left, right)


def _op_loose_eq(left, right):
    return loose_equals(left, right)


def _op_loose_ne(left, right):
    return not loose_equals(left, right)


def _op_bitand(left, right):
    return float(_to_int32(to_number(left)) & _to_int32(to_number(right)))


def _op_bitor(left, right):
    return float(_to_int32(to_number(left)) | _to_int32(to_number(right)))


def _op_bitxor(left, right):
    return float(_to_int32(to_number(left)) ^ _to_int32(to_number(right)))


def _op_shl(left, right):
    return float(_to_int32(_to_int32(to_number(left)) << (_to_uint32(to_number(right)) & 31)))


def _op_shr(left, right):
    return float(_to_int32(to_number(left)) >> (_to_uint32(to_number(right)) & 31))


def _op_ushr(left, right):
    return float(_to_uint32(to_number(left)) >> (_to_uint32(to_number(right)) & 31))


_PURE_BINARY_OPS = {
    "+": _op_add,
    "-": _op_sub,
    "*": _op_mul,
    "/": _op_div,
    "%": _op_mod,
    "<": _compare("<"),
    ">": _compare(">"),
    "<=": _compare("<="),
    ">=": _compare(">="),
    "===": _op_strict_eq,
    "!==": _op_strict_ne,
    "==": _op_loose_eq,
    "!=": _op_loose_ne,
    "&": _op_bitand,
    "|": _op_bitor,
    "^": _op_bitxor,
    "<<": _op_shl,
    ">>": _op_shr,
    ">>>": _op_ushr,
}


def resolve_binary(operator: str, node: ast.Node) -> Callable[[Any, Any], Any]:
    """Resolve ``operator`` into a two-argument function (node gives lines)."""
    op = _PURE_BINARY_OPS.get(operator)
    if op is not None:
        return op
    if operator == "instanceof":

        def instance_of(left, right):
            if not is_callable(right):
                raise JSTypeError("right-hand side of instanceof is not callable", node.line)
            proto = right.get("prototype")
            current = left.prototype if isinstance(left, JSObject) else None
            while current is not None:
                if current is proto:
                    return True
                current = current.prototype
            return False

        return instance_of
    if operator == "in":

        def in_op(left, right):
            if isinstance(right, JSObject):
                return right.has(to_property_key(left))
            raise JSTypeError("'in' applied to a non-object", node.line)

        return in_op

    def unsupported(left, right):
        raise JSRuntimeError(f"unsupported binary operator {operator!r}", node.line)

    return unsupported


# ---------------------------------------------------------------------------
# hoisting (the plan builder lives in the resolver; re-exported above)
# ---------------------------------------------------------------------------
def run_hoist_plan(plan: List[Tuple[str, Any]], rt, env: Environment) -> None:
    """Apply a precomputed hoist plan to ``env`` (fresh closures per call)."""
    for kind, payload in plan:
        if kind == "var":
            env.declare_var(payload)
        else:
            func = rt.make_function(payload.name, payload.params, payload.body, env, payload)
            env.declare_var(payload.name, func)


# ---------------------------------------------------------------------------
# expression compilers
# ---------------------------------------------------------------------------
def compile_expr(node: ast.Node) -> Code:
    """Compile ``node`` for expression position (charges one op per eval)."""
    code = getattr(node, "_code", None)
    if code is None:
        compiler = _EXPR_COMPILERS.get(type(node))
        if compiler is not None:
            code = compiler(node)
        else:
            code = _compile_stmt_in_expr_position(node)
        node._code = code
    return code


def _compile_stmt_in_expr_position(node: ast.Node) -> Code:
    """Statement node in expression position (e.g. a for-init declaration).

    Mirrors the seed ``_eval`` fallback: one charge, then the statement body
    — without the statement counter or the statement hook.
    """
    body_compiler = _STMT_BODY_COMPILERS.get(type(node))
    if body_compiler is None:
        kind, line = node.kind, node.line

        def invalid(rt, env):
            rt._charge()
            raise JSRuntimeError(f"cannot evaluate node {kind}", line)

        return invalid
    body = body_compiler(node)

    def run(rt, env):
        rt._charge()
        return body(rt, env)

    return run


def _compile_constant(node: ast.Node, value: Any) -> Code:
    def run(rt, env):
        rt._charge()
        return value

    return run


def _compile_number(node: ast.NumberLiteral) -> Code:
    return _compile_constant(node, node.value)


def _compile_string(node: ast.StringLiteral) -> Code:
    return _compile_constant(node, node.value)


def _compile_boolean(node: ast.BooleanLiteral) -> Code:
    return _compile_constant(node, node.value)


def _compile_null(node: ast.NullLiteral) -> Code:
    return _compile_constant(node, NULL)


def _compile_undefined(node: ast.UndefinedLiteral) -> Code:
    return _compile_constant(node, UNDEFINED)


def _dict_read(rt, env, name, line, node):
    """The dict-chain identifier read: the dynamic/global/HOLE-fallback path."""
    holder = env
    while holder is not None:
        bindings = holder.bindings
        if name in bindings:
            if rt.trace_mask & EV_VAR:
                rt.hooks.var_read(rt, name, holder, node)
            return bindings[name]
        holder = holder.parent
    raise JSReferenceError(f"{name} is not defined", line)


def _slot_read(node: ast.Identifier, charged: bool):
    """Slot-addressed identifier read closure, or None if not resolvable.

    ``charged`` selects expression-position semantics (one clock charge on
    entry) versus the uncharged read used by update/compound-assignment
    targets.  Specialized per hop count: the scope chain is not walked and no
    dict is touched on the fast path.
    """
    res = getattr(node, "_res", None)
    if res is None:
        return None
    hops, idx, _maybe_hole, _is_const = res
    name = node.name
    line = node.line

    if charged:
        if hops == 0:

            def run(rt, env):
                rt._charge()
                value = env.slots[idx]
                if value is not HOLE:
                    if rt.trace_mask & EV_VAR:
                        rt.hooks.var_read(rt, name, env, node)
                    return value
                return _dict_read(rt, env, name, line, node)

        elif hops == 1:

            def run(rt, env):
                rt._charge()
                frame = env.parent
                value = frame.slots[idx]
                if value is not HOLE:
                    if rt.trace_mask & EV_VAR:
                        rt.hooks.var_read(rt, name, frame, node)
                    return value
                return _dict_read(rt, env, name, line, node)

        elif hops == 2:

            def run(rt, env):
                rt._charge()
                frame = env.parent.parent
                value = frame.slots[idx]
                if value is not HOLE:
                    if rt.trace_mask & EV_VAR:
                        rt.hooks.var_read(rt, name, frame, node)
                    return value
                return _dict_read(rt, env, name, line, node)

        elif hops == 3:
            # Loop bodies are blocks: block frame -> iteration frame -> loop
            # frame -> function frame makes 3 hops the hottest depth of all.
            def run(rt, env):
                rt._charge()
                frame = env.parent.parent.parent
                value = frame.slots[idx]
                if value is not HOLE:
                    if rt.trace_mask & EV_VAR:
                        rt.hooks.var_read(rt, name, frame, node)
                    return value
                return _dict_read(rt, env, name, line, node)

        else:
            remaining = hops - 4

            def run(rt, env):
                rt._charge()
                frame = env.parent.parent.parent.parent
                hop = remaining
                while hop:
                    frame = frame.parent
                    hop -= 1
                value = frame.slots[idx]
                if value is not HOLE:
                    if rt.trace_mask & EV_VAR:
                        rt.hooks.var_read(rt, name, frame, node)
                    return value
                return _dict_read(rt, env, name, line, node)

    else:

        def run(rt, env):
            frame = env
            hop = hops
            while hop:
                frame = frame.parent
                hop -= 1
            value = frame.slots[idx]
            if value is not HOLE:
                if rt.trace_mask & EV_VAR:
                    rt.hooks.var_read(rt, name, frame, node)
                return value
            return _dict_read(rt, env, name, line, node)

    return run


def _slot_write(node: ast.Identifier):
    """Slot-addressed identifier assignment closure, or None.

    Falls back to the generic :meth:`Interpreter._set_variable` walk for
    const bindings (exact error parity) and for HOLE slots (the binding does
    not exist yet in its frame: the write must land in an outer scope or
    create a sloppy global, exactly as the dict walk decides).
    """
    res = getattr(node, "_res", None)
    if res is None:
        return None
    hops, idx, _maybe_hole, is_const = res
    if is_const:
        return None
    name = node.name

    def write(rt, env, value):
        frame = env
        hop = hops
        while hop:
            frame = frame.parent
            hop -= 1
        slots = frame.slots
        if slots[idx] is not HOLE:
            slots[idx] = value
            frame.bindings[name] = value
            if rt.trace_mask & EV_VAR:
                rt.hooks.var_write(rt, name, frame, value, node)
        else:
            rt._set_variable(name, value, env, node)

    return write


def _read_identifier(node: ast.Identifier):
    """Uncharged identifier read used by update/compound assignment targets."""
    slot = _slot_read(node, charged=False)
    if slot is not None:
        return slot
    name = node.name
    line = node.line

    def read(rt, env):
        holder = env.lookup_env(name)
        if holder is None:
            raise JSReferenceError(f"{name} is not defined", line)
        if rt.trace_mask & EV_VAR:
            rt.hooks.var_read(rt, name, holder, node)
        return holder.bindings[name]

    return read


def _compile_identifier(node: ast.Identifier) -> Code:
    slot = _slot_read(node, charged=True)
    if slot is not None:
        return slot
    name = node.name
    line = node.line

    def run(rt, env):
        rt._charge()
        # Inline scope walk (Environment.lookup_env): identifier reads are the
        # single most frequent operation in guest code.
        holder = env
        while holder is not None:
            bindings = holder.bindings
            if name in bindings:
                if rt.trace_mask & EV_VAR:
                    rt.hooks.var_read(rt, name, holder, node)
                return bindings[name]
            holder = holder.parent
        raise JSReferenceError(f"{name} is not defined", line)

    return run


def _compile_this(node: ast.ThisExpression) -> Code:
    res = getattr(node, "_res", None)
    if res is not None:
        hops, idx, _maybe_hole, _is_const = res

        def run_slot(rt, env):
            rt._charge()
            frame = env
            hop = hops
            while hop:
                frame = frame.parent
                hop -= 1
            return frame.slots[idx]

        return run_slot

    def run(rt, env):
        rt._charge()
        holder = env.lookup_env("this")
        return holder.bindings["this"] if holder is not None else UNDEFINED

    return run


def _compile_array_literal(node: ast.ArrayLiteral) -> Code:
    elements = [compile_expr(element) for element in node.elements]
    node_id = node.node_id

    def run(rt, env):
        rt._charge()
        values = [element(rt, env) for element in elements]
        return rt.make_array(values, creation_site=node_id, node=node)

    return run


def _compile_object_literal(node: ast.ObjectLiteral) -> Code:
    properties = [(prop.key, compile_expr(prop.value)) for prop in node.properties]
    node_id = node.node_id

    def run(rt, env):
        rt._charge()
        obj = rt.make_object(creation_site=node_id, node=node)
        for key, value_code in properties:
            obj.set(key, value_code(rt, env))
        return obj

    return run


def _compile_function_expression(node: ast.FunctionExpression) -> Code:
    name = node.name
    display_name = name or "<anonymous>"
    params = node.params
    body = node.body
    fnexpr_layout = getattr(node, "_fnexpr_layout", None)

    def run(rt, env):
        rt._charge()
        func = rt.make_function(display_name, params, body, env, node)
        if name:
            # Named function expressions can refer to themselves.
            func.closure = Environment(
                parent=env, is_function_scope=False, label="fnexpr", layout=fnexpr_layout
            )
            func.closure.declare_let(name, func)
        return func

    return run


def _member_key_code(node: ast.MemberExpression):
    """Return ``f(rt, env) -> key`` for a member expression's key.

    Non-computed keys are constants (the parser synthesizes a StringLiteral);
    computed keys evaluate their expression (charging, as the seed did).
    """
    if node.computed:
        property_code = compile_expr(node.property)

        def computed_key(rt, env):
            return to_property_key(property_code(rt, env))

        return computed_key
    constant = intern(node.property.value)

    def constant_key(rt, env):
        return constant

    return constant_key


# ---------------------------------------------------------------------------
# per-site inline caches for member access
# ---------------------------------------------------------------------------
# A cache is a 4-element list mutated in place by its compiled site:
#   [shape, kind, holder-weakref, guard]
# kind 0: own-property hit     — valid while obj.shape is cache[0]; the shape
#         pins the exact own-key set, so the key is provably present.
# kind 1: prototype hit (depth 1) — additionally pins the holder (identity)
#         and the holder's shape; identity pinning keeps caches from leaking
#         across speculation forks (a forked object's prototype is a
#         different object, so the cache misses and refills).  The holder is
#         referenced *weakly*: compiled code (and its caches) is itself
#         cached on session-shared ASTs, and a strong holder reference would
#         retain a finished interpreter run's entire heap between runs.
# kind 2: whole-chain absence  — valid while obj.shape matches and no
#         prototype anywhere changed shape (the _PROTO_EPOCH guard).
# Deeper prototype hits stay generic (rare; monomorphic caches only).
def _ic_lookup(cache, obj, key):
    """Slow path of a read site: full lookup + (monomorphic) cache refill."""
    properties = obj.properties
    if key in properties:
        cache[0] = obj.shape
        cache[1] = 0
        return properties[key]
    holder = obj.prototype
    while holder is not None:
        if key in holder.properties:
            if holder is obj.prototype and type(holder) is JSObject:
                cache[0] = obj.shape
                cache[1] = 1
                cache[2] = _weakref(holder)
                cache[3] = holder.shape
            else:
                cache[0] = None
            return holder.properties[key]
        holder = holder.prototype
    cache[0] = obj.shape
    cache[1] = 2
    cache[3] = _PROTO_EPOCH[0]
    return UNDEFINED


def _compile_unary(node: ast.UnaryExpression) -> Code:
    operator = node.operator
    line = node.line

    if operator == "typeof":
        operand = node.operand
        operand_code = compile_expr(operand)
        if isinstance(operand, ast.Identifier):
            identifier_name = operand.name

            def run_typeof_identifier(rt, env):
                rt._charge()
                if not env.has(identifier_name):
                    return "undefined"
                return type_of(operand_code(rt, env))

            return run_typeof_identifier

        def run_typeof(rt, env):
            rt._charge()
            return type_of(operand_code(rt, env))

        return run_typeof

    if operator == "delete":
        if isinstance(node.operand, ast.MemberExpression):
            member = node.operand
            object_code = compile_expr(member.object)
            key_code = _member_key_code(member)

            def run_delete_member(rt, env):
                rt._charge()
                obj = object_code(rt, env)
                key = key_code(rt, env)
                if isinstance(obj, JSObject):
                    return obj.delete(key)
                return True

            return run_delete_member

        def run_delete(rt, env):
            rt._charge()
            return True

        return run_delete

    operand_code = compile_expr(node.operand)
    if operator == "!":

        def run_not(rt, env):
            rt._charge()
            return not to_boolean(operand_code(rt, env))

        return run_not
    if operator == "-":

        def run_neg(rt, env):
            rt._charge()
            return -to_number(operand_code(rt, env))

        return run_neg
    if operator == "+":

        def run_pos(rt, env):
            rt._charge()
            return to_number(operand_code(rt, env))

        return run_pos
    if operator == "~":

        def run_bitnot(rt, env):
            rt._charge()
            return float(~_to_int32(to_number(operand_code(rt, env))))

        return run_bitnot
    if operator == "void":

        def run_void(rt, env):
            rt._charge()
            operand_code(rt, env)
            return UNDEFINED

        return run_void

    def run_unsupported(rt, env):
        rt._charge()
        operand_code(rt, env)
        raise JSRuntimeError(f"unsupported unary operator {operator!r}", line)

    return run_unsupported


def _compile_update(node: ast.UpdateExpression) -> Code:
    delta = 1.0 if node.operator == "++" else -1.0
    prefix = node.prefix
    target = node.target
    line = node.line

    if isinstance(target, ast.Identifier):
        read = _read_identifier(target)
        name = target.name
        slot_write = _slot_write(target)
        if slot_write is not None:

            def run_slot_identifier(rt, env):
                rt._charge()
                old = to_number(read(rt, env))
                new = old + delta
                slot_write(rt, env, new)
                return new if prefix else old

            return run_slot_identifier

        def run_identifier(rt, env):
            rt._charge()
            old = to_number(read(rt, env))
            new = old + delta
            rt._set_variable(name, new, env, node)
            return new if prefix else old

        return run_identifier

    if isinstance(target, ast.MemberExpression):
        object_code = compile_expr(target.object)
        key_code = _member_key_code(target)

        def run_member(rt, env):
            rt._charge()
            obj = object_code(rt, env)
            key = key_code(rt, env)
            old = to_number(rt._get_property(obj, key, target))
            new = old + delta
            rt._set_property(obj, key, new, target)
            return new if prefix else old

        return run_member

    def run_invalid(rt, env):
        rt._charge()
        raise JSRuntimeError("invalid update target", line)

    return run_invalid


def _compile_binary(node: ast.BinaryExpression) -> Code:
    left_code = compile_expr(node.left)
    right_code = compile_expr(node.right)
    op = resolve_binary(node.operator, node)

    def run(rt, env):
        rt._charge()
        return op(left_code(rt, env), right_code(rt, env))

    return run


def _compile_logical(node: ast.LogicalExpression) -> Code:
    operator = node.operator
    left_code = compile_expr(node.left)
    right_code = compile_expr(node.right)
    line = node.line

    if operator == "&&":

        def run_and(rt, env):
            rt._charge()
            left = left_code(rt, env)
            if not to_boolean(left):
                if rt.trace_mask & EV_BRANCH:
                    rt.hooks.branch(rt, node, False)
                return left
            if rt.trace_mask & EV_BRANCH:
                rt.hooks.branch(rt, node, True)
            return right_code(rt, env)

        return run_and
    if operator == "||":

        def run_or(rt, env):
            rt._charge()
            left = left_code(rt, env)
            if to_boolean(left):
                if rt.trace_mask & EV_BRANCH:
                    rt.hooks.branch(rt, node, True)
                return left
            if rt.trace_mask & EV_BRANCH:
                rt.hooks.branch(rt, node, False)
            return right_code(rt, env)

        return run_or

    def run_unsupported(rt, env):
        rt._charge()
        raise JSRuntimeError(f"unsupported logical operator {operator!r}", line)

    return run_unsupported


def _compile_assignment(node: ast.AssignmentExpression) -> Code:
    operator = node.operator
    target = node.target
    value_code = compile_expr(node.value)
    line = node.line

    if operator == "=":
        if isinstance(target, ast.Identifier):
            name = target.name
            slot_write = _slot_write(target)
            if slot_write is not None:

                def run_slot_identifier(rt, env):
                    rt._charge()
                    value = value_code(rt, env)
                    slot_write(rt, env, value)
                    return value

                return run_slot_identifier

            def run_simple_identifier(rt, env):
                rt._charge()
                value = value_code(rt, env)
                rt._set_variable(name, value, env, node)
                return value

            return run_simple_identifier
        if isinstance(target, ast.MemberExpression):
            object_code = compile_expr(target.object)
            if not target.computed:
                constant_key = intern(target.property.value)

                def run_member_const_key(rt, env):
                    rt._charge()
                    value = value_code(rt, env)
                    obj = object_code(rt, env)
                    if type(obj) is JSObject:
                        rt.stats.property_writes += 1
                        if rt.trace_mask & EV_PROP:
                            rt.hooks.prop_write(rt, obj, constant_key, value, target)
                        properties = obj.properties
                        if constant_key in properties:
                            properties[constant_key] = value
                        else:
                            obj.set(constant_key, value)
                    else:
                        rt._set_property(obj, constant_key, value, target)
                    return value

                return run_member_const_key

            property_code = compile_expr(target.property)

            def run_simple_member(rt, env):
                rt._charge()
                value = value_code(rt, env)
                obj = object_code(rt, env)
                raw = property_code(rt, env)
                if type(obj) is JSArray and not rt.trace_mask & EV_PROP:
                    # In-bounds indexed stores bypass key stringification.
                    rt.stats.property_writes += 1
                    elements = obj.elements
                    if type(raw) is float and 0.0 <= raw < len(elements):
                        index = int(raw)
                        if index == raw:
                            elements[index] = value
                            return value
                    obj.set(to_property_key(raw), value)
                    return value
                rt._set_property(obj, to_property_key(raw), value, target)
                return value

            return run_simple_member

        def run_invalid(rt, env):
            rt._charge()
            value_code(rt, env)
            raise JSRuntimeError("invalid assignment target", line)

        return run_invalid

    # Compound assignment: read-modify-write.
    op = resolve_binary(operator[:-1], node)
    if isinstance(target, ast.Identifier):
        read = _read_identifier(target)
        name = target.name
        slot_write = _slot_write(target)
        if slot_write is not None:

            def run_compound_slot(rt, env):
                rt._charge()
                current = read(rt, env)
                value = op(current, value_code(rt, env))
                slot_write(rt, env, value)
                return value

            return run_compound_slot

        def run_compound_identifier(rt, env):
            rt._charge()
            current = read(rt, env)
            value = op(current, value_code(rt, env))
            rt._set_variable(name, value, env, node)
            return value

        return run_compound_identifier
    if isinstance(target, ast.MemberExpression):
        object_code = compile_expr(target.object)
        key_code = _member_key_code(target)

        def run_compound_member(rt, env):
            rt._charge()
            obj = object_code(rt, env)
            key = key_code(rt, env)
            current = rt._get_property(obj, key, target)
            value = op(current, value_code(rt, env))
            # The seed evaluated the target object (and key) a second time for
            # the write-back; keep that behaviour for clock/hook parity.
            obj = object_code(rt, env)
            key = key_code(rt, env)
            rt._set_property(obj, key, value, target)
            return value

        return run_compound_member

    def run_invalid_compound(rt, env):
        rt._charge()
        raise JSRuntimeError("invalid assignment target", line)

    return run_invalid_compound


def _compile_conditional(node: ast.ConditionalExpression) -> Code:
    test_code = compile_expr(node.test)
    consequent_code = compile_expr(node.consequent)
    alternate_code = compile_expr(node.alternate)

    def run(rt, env):
        rt._charge()
        taken = to_boolean(test_code(rt, env))
        if rt.trace_mask & EV_BRANCH:
            rt.hooks.branch(rt, node, taken)
        return consequent_code(rt, env) if taken else alternate_code(rt, env)

    return run


def _compile_sequence(node: ast.SequenceExpression) -> Code:
    expressions = [compile_expr(expression) for expression in node.expressions]

    def run(rt, env):
        rt._charge()
        result: Any = UNDEFINED
        for expression in expressions:
            result = expression(rt, env)
        return result

    return run


def _compile_call(node: ast.CallExpression) -> Code:
    callee = node.callee
    argument_codes = [compile_expr(argument) for argument in node.arguments]
    line = node.line

    if isinstance(callee, ast.MemberExpression):
        object_code = compile_expr(callee.object)
        if not callee.computed:
            method_key = intern(callee.property.value)
            cache = [None, 0, None, None]

            def run_method_const(rt, env):
                rt._charge()
                this = object_code(rt, env)
                if type(this) is JSObject:
                    rt.stats.property_reads += 1
                    if rt.trace_mask & EV_PROP:
                        rt.hooks.prop_read(rt, this, method_key, callee)
                    if this.shape is cache[0]:
                        kind = cache[1]
                        if kind == 0:
                            func = this.properties[method_key]
                        else:
                            holder = cache[2]() if kind == 1 else None
                            if (
                                holder is not None
                                and this.prototype is holder
                                and holder.shape is cache[3]
                            ):
                                func = holder.properties[method_key]
                            else:
                                func = _ic_lookup(cache, this, method_key)
                    else:
                        func = _ic_lookup(cache, this, method_key)
                else:
                    func = rt._get_property(this, method_key, callee)
                args = [argument(rt, env) for argument in argument_codes]
                if not is_callable(func):
                    raise JSTypeError(f"{to_string(func)} is not a function", line)
                return rt.call_function(func, this, args, call_node=node)

            return run_method_const

        key_code = _member_key_code(callee)

        def run_method(rt, env):
            rt._charge()
            this = object_code(rt, env)
            key = key_code(rt, env)
            func = rt._get_property(this, key, callee)
            args = [argument(rt, env) for argument in argument_codes]
            if not is_callable(func):
                raise JSTypeError(f"{to_string(func)} is not a function", line)
            return rt.call_function(func, this, args, call_node=node)

        return run_method

    callee_code = compile_expr(callee)
    callee_name = callee.name if isinstance(callee, ast.Identifier) else None

    def run_call(rt, env):
        rt._charge()
        func = callee_code(rt, env)
        args = [argument(rt, env) for argument in argument_codes]
        if not is_callable(func):
            name = callee_name if callee_name is not None else to_string(func)
            raise JSTypeError(f"{name} is not a function", line)
        return rt.call_function(func, UNDEFINED, args, call_node=node)

    return run_call


def _compile_new(node: ast.NewExpression) -> Code:
    callee_code = compile_expr(node.callee)
    argument_codes = [compile_expr(argument) for argument in node.arguments]

    def run(rt, env):
        rt._charge()
        constructor = callee_code(rt, env)
        args = [argument(rt, env) for argument in argument_codes]
        return rt._construct(constructor, args, node)

    return run


def _compile_member(node: ast.MemberExpression) -> Code:
    object_code = compile_expr(node.object)
    if not node.computed:
        key = intern(node.property.value)

        if key == "length":
            # Array length is by far the most common fixed-name read.
            def run_length(rt, env):
                rt._charge()
                obj = object_code(rt, env)
                if type(obj) is JSArray:
                    rt.stats.property_reads += 1
                    if rt.trace_mask & EV_PROP:
                        rt.hooks.prop_read(rt, obj, key, node)
                    return float(len(obj.elements))
                return rt._get_property(obj, key, node)

            return run_length

        cache = [None, 0, None, None]

        def run_static(rt, env):
            rt._charge()
            obj = object_code(rt, env)
            if type(obj) is JSObject:
                rt.stats.property_reads += 1
                if rt.trace_mask & EV_PROP:
                    rt.hooks.prop_read(rt, obj, key, node)
                if obj.shape is cache[0]:
                    kind = cache[1]
                    if kind == 0:
                        return obj.properties[key]
                    if kind == 1:
                        holder = cache[2]()
                        if holder is not None and obj.prototype is holder and holder.shape is cache[3]:
                            return holder.properties[key]
                    elif cache[3] == _PROTO_EPOCH[0]:
                        return UNDEFINED
                return _ic_lookup(cache, obj, key)
            return rt._get_property(obj, key, node)

        return run_static

    property_code = compile_expr(node.property)

    def run_computed(rt, env):
        rt._charge()
        obj = object_code(rt, env)
        raw = property_code(rt, env)
        if type(obj) is JSArray and not rt.trace_mask & EV_PROP:
            # Indexed array reads skip the float -> string -> int round trip
            # when nothing observes property events (stats still count).
            rt.stats.property_reads += 1
            if type(raw) is float and 0.0 <= raw < len(obj.elements):
                index = int(raw)
                if index == raw:
                    return obj.elements[index]
            return obj.get(to_property_key(raw))
        return rt._get_property(obj, to_property_key(raw), node)

    return run_computed


_EXPR_COMPILERS = {
    ast.NumberLiteral: _compile_number,
    ast.StringLiteral: _compile_string,
    ast.BooleanLiteral: _compile_boolean,
    ast.NullLiteral: _compile_null,
    ast.UndefinedLiteral: _compile_undefined,
    ast.Identifier: _compile_identifier,
    ast.ThisExpression: _compile_this,
    ast.ArrayLiteral: _compile_array_literal,
    ast.ObjectLiteral: _compile_object_literal,
    ast.FunctionExpression: _compile_function_expression,
    ast.UnaryExpression: _compile_unary,
    ast.UpdateExpression: _compile_update,
    ast.BinaryExpression: _compile_binary,
    ast.LogicalExpression: _compile_logical,
    ast.AssignmentExpression: _compile_assignment,
    ast.ConditionalExpression: _compile_conditional,
    ast.CallExpression: _compile_call,
    ast.NewExpression: _compile_new,
    ast.MemberExpression: _compile_member,
    ast.SequenceExpression: _compile_sequence,
}


# ---------------------------------------------------------------------------
# statement compilers
# ---------------------------------------------------------------------------
def compile_stmt(node: ast.Node) -> Code:
    """Compile ``node`` for statement position (full ``_exec`` semantics)."""
    code = getattr(node, "_stmt", None)
    if code is None:
        body_compiler = _STMT_BODY_COMPILERS.get(type(node))
        if body_compiler is not None:
            body = body_compiler(node)
        else:
            # Expression in a statement list: the seed charged once for the
            # statement step and again inside ``_eval``.
            body = compile_expr(node)

        def run(rt, env):
            rt._charge()
            rt.stats.statements += 1
            if rt.trace_mask & EV_STATEMENT:
                rt.hooks.statement(rt, node)
            return body(rt, env)

        code = run
        node._stmt = code
    return code


def _body_variable_declaration(node: ast.VariableDeclaration) -> Code:
    kind_keyword = node.kind_keyword
    is_var = kind_keyword == "var"
    is_const = kind_keyword == "const"
    declarators = [
        (declarator.name, compile_expr(declarator.init) if declarator.init is not None else None, declarator)
        for declarator in node.declarations
    ]

    def run(rt, env):
        for name, init_code, declarator in declarators:
            value = UNDEFINED if init_code is None else init_code(rt, env)
            if is_var:
                if init_code is not None:
                    env.declare_var(name, value)
                else:
                    env.declare_var(name)
                target_env = env.nearest_function_scope()
            else:
                env.declare_let(name, value, constant=is_const)
                target_env = env
            if rt.trace_mask & EV_VAR and init_code is not None:
                rt.hooks.var_write(rt, name, target_env, value, declarator)
        return UNDEFINED

    return run


def _body_function_declaration(node: ast.FunctionDeclaration) -> Code:
    name = node.name
    params = node.params
    body = node.body

    def run(rt, env):
        # Already handled during hoisting; re-declaring keeps later definitions
        # authoritative when the same name is declared twice.
        if not env.has(name):
            func = rt.make_function(name, params, body, env, node)
            env.declare_var(name, func)
        return UNDEFINED

    return run


def _body_block(node: ast.BlockStatement) -> Code:
    statements = [compile_stmt(statement) for statement in node.body]
    layout = getattr(node, "_layout", None)

    def run(rt, env):
        block_env = Environment(parent=env, is_function_scope=False, label="block", layout=layout)
        if rt.trace_mask & EV_ENV:
            rt.hooks.env_created(rt, block_env, "block")
        result: Any = UNDEFINED
        for statement in statements:
            result = statement(rt, block_env)
        return result

    return run


def _body_expression_statement(node: ast.ExpressionStatement) -> Code:
    return compile_expr(node.expression)


def _body_if(node: ast.IfStatement) -> Code:
    test_code = compile_expr(node.test)
    consequent_code = compile_stmt(node.consequent)
    alternate_code = compile_stmt(node.alternate) if node.alternate is not None else None

    def run(rt, env):
        taken = to_boolean(test_code(rt, env))
        if rt.trace_mask & EV_BRANCH:
            rt.hooks.branch(rt, node, taken)
        if taken:
            return consequent_code(rt, env)
        if alternate_code is not None:
            return alternate_code(rt, env)
        return UNDEFINED

    return run


def _fast_nest(rt, env, node):
    """Bridge to the numeric fast tier (imported lazily: cycle with fasttier)."""
    global _fast_nest
    from .fasttier import try_fast_nest

    _fast_nest = try_fast_nest
    return try_fast_nest(rt, env, node)


def _body_for(node: ast.ForStatement) -> Code:
    init_code = compile_stmt(node.init) if node.init is not None else None
    test_code = compile_expr(node.test) if node.test is not None else None
    update_code = compile_expr(node.update) if node.update is not None else None
    body_code = compile_stmt(node.body)
    node_id = node.node_id
    loop_layout = getattr(node, "_loop_layout", None)
    iter_layout = getattr(node, "_iter_layout", None)

    def run(rt, env):
        controller = rt.speculation
        if controller is not None and controller.should_intercept(node):
            return controller.run_instance(rt, env, node, run)
        filters = rt.iteration_filter
        ifilter = filters.get(node_id) if filters is not None else None
        # Numeric fast tier: only when nothing can observe intermediate
        # states (no hooks, no clock listeners, no speculation, no filter).
        if (
            ifilter is None
            and rt.fast_nests
            and rt.trace_mask == 0
            and rt.speculation is None
            and not rt.clock._listeners
            and _fast_nest(rt, env, node)
        ):
            return UNDEFINED
        loop_env = Environment(parent=env, is_function_scope=False, label="for", layout=loop_layout)
        mask = rt.trace_mask
        if mask & EV_ENV:
            rt.hooks.env_created(rt, loop_env, "block")
        if init_code is not None:
            init_code(rt, loop_env)
        wants_loops = mask & EV_LOOP
        wants_envs = mask & EV_ENV
        hooks = rt.hooks
        stats = rt.stats
        if wants_loops:
            hooks.loop_enter(rt, node)
        trip = 0
        try:
            while True:
                if test_code is not None and not to_boolean(test_code(rt, loop_env)):
                    break
                if wants_loops:
                    hooks.loop_iteration(rt, node, trip)
                run_body = ifilter is None or trip in ifilter
                trip += 1
                stats.loop_iterations += 1
                if run_body:
                    iteration_env = Environment(
                        parent=loop_env, is_function_scope=False, label="for-iter", layout=iter_layout
                    )
                    if wants_envs:
                        hooks.env_created(rt, iteration_env, "block")
                    try:
                        body_code(rt, iteration_env)
                    except _CONTINUE:
                        pass
                    except _BREAK:
                        break
                if update_code is not None:
                    update_code(rt, loop_env)
        finally:
            if wants_loops:
                hooks.loop_exit(rt, node, trip)
        return UNDEFINED

    return run


def _body_for_in(node: ast.ForInStatement) -> Code:
    iterable_code = compile_expr(node.iterable)
    body_code = compile_stmt(node.body)
    declaration_kind = node.declaration_kind
    target_name = node.target_name
    of_loop = node.of_loop
    line = node.line
    node_id = node.node_id
    loop_layout = getattr(node, "_loop_layout", None)
    iter_layout = getattr(node, "_iter_layout", None)
    target_res = getattr(node, "_target_res", None)
    target_hops, target_idx = (target_res[0], target_res[1]) if target_res is not None and not target_res[3] else (None, None)

    def run(rt, env):
        controller = rt.speculation
        if controller is not None and controller.should_intercept(node):
            return controller.run_instance(rt, env, node, run)
        filters = rt.iteration_filter
        ifilter = filters.get(node_id) if filters is not None else None
        iterable = iterable_code(rt, env)
        if of_loop:
            if isinstance(iterable, JSArray):
                keys: List[Any] = list(iterable.elements)
            elif isinstance(iterable, str):
                keys = list(iterable)
            else:
                raise JSTypeError("for...of target is not iterable", line)
        else:
            if isinstance(iterable, JSArray):
                keys = [str(i) for i in range(len(iterable.elements))]
            elif isinstance(iterable, JSObject):
                keys = iterable.own_keys()
            elif isinstance(iterable, str):
                keys = [str(i) for i in range(len(iterable))]
            else:
                keys = []

        loop_env = Environment(parent=env, is_function_scope=False, label="for-in", layout=loop_layout)
        mask = rt.trace_mask
        if mask & EV_ENV:
            rt.hooks.env_created(rt, loop_env, "block")
        if declaration_kind == "var":
            loop_env.declare_var(target_name)
        elif declaration_kind in ("let", "const"):
            loop_env.declare_let(target_name, UNDEFINED)

        wants_loops = mask & EV_LOOP
        wants_envs = mask & EV_ENV
        hooks = rt.hooks
        stats = rt.stats
        if wants_loops:
            hooks.loop_enter(rt, node)
        trip = 0
        try:
            for key in keys:
                if wants_loops:
                    hooks.loop_iteration(rt, node, trip)
                run_body = ifilter is None or trip in ifilter
                trip += 1
                stats.loop_iterations += 1
                # The induction binding is scaffolding: it is assigned even for
                # iterations a chunk replay skips, so every worker ends the
                # loop with the same (serial) final value.
                if target_hops is not None:
                    frame = loop_env
                    hop = target_hops
                    while hop:
                        frame = frame.parent
                        hop -= 1
                    if frame.slots[target_idx] is not HOLE:
                        frame.slots[target_idx] = key
                        frame.bindings[target_name] = key
                        if rt.trace_mask & EV_VAR:
                            hooks.var_write(rt, target_name, frame, key, node)
                    else:
                        rt._set_variable(target_name, key, loop_env, node)
                else:
                    rt._set_variable(target_name, key, loop_env, node)
                if not run_body:
                    continue
                iteration_env = Environment(
                    parent=loop_env, is_function_scope=False, label="forin-iter", layout=iter_layout
                )
                if wants_envs:
                    hooks.env_created(rt, iteration_env, "block")
                try:
                    body_code(rt, iteration_env)
                except _CONTINUE:
                    continue
                except _BREAK:
                    break
        finally:
            if wants_loops:
                hooks.loop_exit(rt, node, trip)
        return UNDEFINED

    return run


def _body_while(node: ast.WhileStatement) -> Code:
    test_code = compile_expr(node.test)
    body_code = compile_stmt(node.body)
    iter_layout = getattr(node, "_iter_layout", None)

    def run(rt, env):
        mask = rt.trace_mask
        wants_loops = mask & EV_LOOP
        wants_envs = mask & EV_ENV
        hooks = rt.hooks
        stats = rt.stats
        if wants_loops:
            hooks.loop_enter(rt, node)
        trip = 0
        try:
            while to_boolean(test_code(rt, env)):
                if wants_loops:
                    hooks.loop_iteration(rt, node, trip)
                trip += 1
                stats.loop_iterations += 1
                iteration_env = Environment(
                    parent=env, is_function_scope=False, label="while-iter", layout=iter_layout
                )
                if wants_envs:
                    hooks.env_created(rt, iteration_env, "block")
                try:
                    body_code(rt, iteration_env)
                except _CONTINUE:
                    continue
                except _BREAK:
                    break
        finally:
            if wants_loops:
                hooks.loop_exit(rt, node, trip)
        return UNDEFINED

    return run


def _body_do_while(node: ast.DoWhileStatement) -> Code:
    test_code = compile_expr(node.test)
    body_code = compile_stmt(node.body)
    iter_layout = getattr(node, "_iter_layout", None)

    def run(rt, env):
        mask = rt.trace_mask
        wants_loops = mask & EV_LOOP
        wants_envs = mask & EV_ENV
        hooks = rt.hooks
        stats = rt.stats
        if wants_loops:
            hooks.loop_enter(rt, node)
        trip = 0
        try:
            while True:
                if wants_loops:
                    hooks.loop_iteration(rt, node, trip)
                trip += 1
                stats.loop_iterations += 1
                iteration_env = Environment(
                    parent=env, is_function_scope=False, label="do-iter", layout=iter_layout
                )
                if wants_envs:
                    hooks.env_created(rt, iteration_env, "block")
                try:
                    body_code(rt, iteration_env)
                except _CONTINUE:
                    pass
                except _BREAK:
                    break
                if not to_boolean(test_code(rt, env)):
                    break
        finally:
            if wants_loops:
                hooks.loop_exit(rt, node, trip)
        return UNDEFINED

    return run


def _body_return(node: ast.ReturnStatement) -> Code:
    argument_code = compile_expr(node.argument) if node.argument is not None else None

    def run(rt, env):
        value = UNDEFINED if argument_code is None else argument_code(rt, env)
        raise ReturnSignal(value)

    return run


def _body_break(node: ast.BreakStatement) -> Code:
    def run(rt, env):
        raise BreakSignal()

    return run


def _body_continue(node: ast.ContinueStatement) -> Code:
    def run(rt, env):
        raise ContinueSignal()

    return run


def _body_throw(node: ast.ThrowStatement) -> Code:
    argument_code = compile_expr(node.argument)
    line = node.line

    def run(rt, env):
        value = argument_code(rt, env)
        raise JSThrownValue(value, line)

    return run


def _body_try(node: ast.TryStatement) -> Code:
    block_code = compile_stmt(node.block)
    handler = node.handler
    handler_code = compile_stmt(handler.body) if handler is not None else None
    handler_param = handler.param if handler is not None else None
    handler_layout = getattr(handler, "_layout", None) if handler is not None else None
    finalizer_code = compile_stmt(node.finalizer) if node.finalizer is not None else None

    def run(rt, env):
        try:
            block_code(rt, env)
        except JSThrownValue as thrown:
            if handler_code is not None:
                handler_env = Environment(
                    parent=env, is_function_scope=False, label="catch", layout=handler_layout
                )
                if rt.trace_mask & EV_ENV:
                    rt.hooks.env_created(rt, handler_env, "block")
                if handler_param:
                    handler_env.declare_let(handler_param, thrown.value)
                handler_code(rt, handler_env)
            else:
                # No handler: re-raise; the finally clause below runs the
                # finalizer exactly once, as in JS.  (The seed interpreter
                # ran it twice on this path.)
                raise
        except JSRuntimeError as error:
            if handler_code is not None:
                handler_env = Environment(
                    parent=env, is_function_scope=False, label="catch", layout=handler_layout
                )
                if handler_param:
                    error_obj = rt.make_object()
                    error_obj.set("message", error.raw_message)
                    error_obj.set("name", type(error).__name__)
                    handler_env.declare_let(handler_param, error_obj)
                handler_code(rt, handler_env)
            else:
                raise
        finally:
            if finalizer_code is not None:
                finalizer_code(rt, env)
        return UNDEFINED

    return run


def _body_switch(node: ast.SwitchStatement) -> Code:
    discriminant_code = compile_expr(node.discriminant)
    cases = [
        (
            case,
            compile_expr(case.test) if case.test is not None else None,
            [compile_stmt(statement) for statement in case.body],
        )
        for case in node.cases
    ]

    def run(rt, env):
        value = discriminant_code(rt, env)
        matched = False
        try:
            for case, test_code, body_codes in cases:
                if not matched and test_code is not None:
                    if strict_equals(value, test_code(rt, env)):
                        matched = True
                        if rt.trace_mask & EV_BRANCH:
                            rt.hooks.branch(rt, case, True)
                if matched:
                    for statement in body_codes:
                        statement(rt, env)
            if not matched:
                for case, test_code, body_codes in cases:
                    if test_code is None:
                        matched = True
                    if matched:
                        for statement in body_codes:
                            statement(rt, env)
        except _BREAK:
            pass
        return UNDEFINED

    return run


def _body_empty(node: ast.EmptyStatement) -> Code:
    def run(rt, env):
        return UNDEFINED

    return run


_STMT_BODY_COMPILERS = {
    ast.VariableDeclaration: _body_variable_declaration,
    ast.FunctionDeclaration: _body_function_declaration,
    ast.BlockStatement: _body_block,
    ast.ExpressionStatement: _body_expression_statement,
    ast.IfStatement: _body_if,
    ast.ForStatement: _body_for,
    ast.ForInStatement: _body_for_in,
    ast.WhileStatement: _body_while,
    ast.DoWhileStatement: _body_do_while,
    ast.ReturnStatement: _body_return,
    ast.BreakStatement: _body_break,
    ast.ContinueStatement: _body_continue,
    ast.ThrowStatement: _body_throw,
    ast.TryStatement: _body_try,
    ast.SwitchStatement: _body_switch,
    ast.EmptyStatement: _body_empty,
}


# ---------------------------------------------------------------------------
# program / function-body entry points
# ---------------------------------------------------------------------------
def ensure_statement_list(owner: ast.Node, statements: List[ast.Node]):
    """Compile (once) a hoist plan + statement closures for a statement list.

    ``owner`` is the Program or BlockStatement the compiled artifacts are
    cached on.
    """
    cached = getattr(owner, "_body_code", None)
    if cached is None:
        plan = build_hoist_plan(statements)
        codes = [compile_stmt(statement) for statement in statements]
        cached = (plan, codes)
        owner._body_code = cached
    return cached


def ensure_program(program: ast.Program):
    """Compile a whole :class:`Program` (idempotent, cached on the node).

    Static scope resolution runs first (once per AST): it annotates every
    identifier and frame-creating construct before any closure is compiled,
    so the compiled code can use slot addressing.
    """
    resolve_program(program)
    return ensure_statement_list(program, program.body)
