"""Static scope resolution for the compiled execution core.

The compiled closures (:mod:`repro.jsvm.compiler`) originally resolved every
identifier at runtime by walking the dict-based environment chain.  This
module performs that resolution *once, at compile time*: it walks a parsed
program mirroring exactly the environment frames the compiled code will
create at runtime (function frames, block frames, loop/iteration frames,
catch frames, named-function-expression frames) and classifies every
identifier occurrence as either

* **slot-addressed** — the binding lives a statically known number of frames
  up the chain (``hops``) at a statically known index (``slot``) into that
  frame's flat slot list; or
* **dynamic** — the name resolves to the global frame, to no frame at all
  (sloppy-mode global creation, builtins) or the construct is otherwise not
  statically analysable; the compiled code keeps the dict-chain walk.

Frames whose shape is statically known carry a shared :class:`ScopeLayout`
(name -> slot index) and a flat ``slots`` list next to the authoritative
``bindings`` dict (see :class:`repro.jsvm.scope.Environment`): reads and
writes of resolved identifiers go straight to the slot, while every
reflective consumer (heap digests, speculation forks/diffs, tracers, the
reference interpreter) keeps seeing the plain dict.

``let``/``const`` bindings come into existence only when their declaration
statement executes (this VM has no temporal dead zone: earlier reads see the
outer binding).  Their slots therefore start as the :data:`~repro.jsvm.scope.HOLE`
sentinel and resolved accesses carry a ``maybe_hole`` flag — on a HOLE the
compiled code falls back to the dict walk, reproducing the dict-mode
semantics bit for bit.

Resolution is skipped entirely (programs stay dict-mode) when
``REPRO_FORCE_DICT_SCOPES=1`` is set — the CI fallback configuration.
"""

from __future__ import annotations

from sys import intern
from typing import Any, Dict, List, Optional, Tuple

from . import ast_nodes as ast
from .scope import slot_scopes_enabled

__all__ = [
    "ScopeLayout",
    "FunctionScopeInfo",
    "build_hoist_plan",
    "resolve_program",
]


# ---------------------------------------------------------------------------
# hoisting (precomputed once per statement list; also used by the reference
# interpreter via the compiler's re-export)
# ---------------------------------------------------------------------------
def build_hoist_plan(statements: List[ast.Node]) -> List[Tuple[str, Any]]:
    """Precompute the seed's ``_hoist`` walk as a flat list of actions.

    Actions are ``("var", name)`` or ``("func", FunctionDeclaration node)``,
    in the exact order the recursive walk visited them.
    """
    plan: List[Tuple[str, Any]] = []
    for statement in statements:
        _hoist_statement(statement, plan)
    return plan


def _hoist_statement(node: Optional[ast.Node], plan: List[Tuple[str, Any]]) -> None:
    if node is None:
        return
    if isinstance(node, ast.VariableDeclaration):
        if node.kind_keyword == "var":
            for declarator in node.declarations:
                plan.append(("var", declarator.name))
    elif isinstance(node, ast.FunctionDeclaration):
        plan.append(("func", node))
    elif isinstance(node, ast.BlockStatement):
        for statement in node.body:
            _hoist_statement(statement, plan)
    elif isinstance(node, ast.IfStatement):
        _hoist_statement(node.consequent, plan)
        _hoist_statement(node.alternate, plan)
    elif isinstance(node, ast.ForStatement):
        _hoist_statement(node.init, plan)
        _hoist_statement(node.body, plan)
    elif isinstance(node, ast.ForInStatement):
        if node.declaration_kind == "var":
            plan.append(("var", node.target_name))
        _hoist_statement(node.body, plan)
    elif isinstance(node, (ast.WhileStatement, ast.DoWhileStatement)):
        _hoist_statement(node.body, plan)
    elif isinstance(node, ast.TryStatement):
        _hoist_statement(node.block, plan)
        if node.handler is not None:
            _hoist_statement(node.handler.body, plan)
        _hoist_statement(node.finalizer, plan)
    elif isinstance(node, ast.SwitchStatement):
        for case in node.cases:
            for statement in case.body:
                _hoist_statement(statement, plan)


# ---------------------------------------------------------------------------
# layouts
# ---------------------------------------------------------------------------
class ScopeLayout:
    """The static shape of one environment frame: name -> slot index."""

    __slots__ = ("names", "index", "size")

    def __init__(self, names: Tuple[str, ...]) -> None:
        self.names = names
        self.index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        self.size = len(names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScopeLayout {self.names}>"


class FunctionScopeInfo:
    """Everything the call prologue needs to build a slot-addressed frame.

    ``plan`` mirrors the hoist plan with slot indices attached:
    ``("var", idx, name)`` / ``("func", idx, name, FunctionDeclaration)``.
    """

    __slots__ = ("layout", "this_idx", "args_idx", "param_idx", "plan")

    def __init__(
        self,
        layout: ScopeLayout,
        this_idx: Optional[int],
        args_idx: Optional[int],
        param_idx: Tuple[int, ...],
        plan: Tuple[Tuple[Any, ...], ...],
    ) -> None:
        self.layout = layout
        self.this_idx = this_idx
        self.args_idx = args_idx
        self.param_idx = param_idx
        self.plan = plan


#: Resolution of one identifier use: (hops, slot, maybe_hole, is_const).
Resolution = Tuple[int, int, bool, bool]


class _Binding:
    __slots__ = ("idx", "maybe_hole", "is_const")

    def __init__(self, idx: int, maybe_hole: bool, is_const: bool) -> None:
        self.idx = idx
        self.maybe_hole = maybe_hole
        self.is_const = is_const


class _Scope:
    """One frame of the static scope chain (mirrors a runtime Environment)."""

    __slots__ = ("parent", "is_function", "dynamic", "bindings", "order")

    def __init__(self, parent: Optional["_Scope"], is_function: bool, dynamic: bool = False) -> None:
        self.parent = parent
        self.is_function = is_function
        self.dynamic = dynamic
        self.bindings: Dict[str, _Binding] = {}
        self.order: List[str] = []

    def declare(self, name: str, maybe_hole: bool, is_const: bool = False) -> _Binding:
        name = intern(name)
        binding = self.bindings.get(name)
        if binding is None:
            binding = _Binding(len(self.order), maybe_hole, is_const)
            self.bindings[name] = binding
            self.order.append(name)
        else:
            # Re-declaration (e.g. a param re-declared as var): the earlier
            # slot wins; the binding can only become *more* initialized.
            # Constness merges upward: if ANY declaration of the name in this
            # frame is const (e.g. `var x; const x = 5;`), writes must take
            # the generic path so the runtime const check can throw.
            binding.maybe_hole = binding.maybe_hole and maybe_hole
            binding.is_const = binding.is_const or is_const
        return binding

    def layout(self) -> Optional[ScopeLayout]:
        if not self.order:
            return None
        return ScopeLayout(tuple(self.order))

    def resolve(self, name: str) -> Optional[Resolution]:
        """Classify ``name``: slot coordinates, or None for dynamic/global."""
        hops = 0
        scope: Optional[_Scope] = self
        while scope is not None:
            if scope.dynamic:
                return None
            binding = scope.bindings.get(name)
            if binding is not None:
                return (hops, binding.idx, binding.maybe_hole, binding.is_const)
            scope = scope.parent
            hops += 1
        return None


# ---------------------------------------------------------------------------
# declaration collectors
# ---------------------------------------------------------------------------
def _collect_same_env_lets(node: Optional[ast.Node], out: List[Tuple[str, bool]]) -> None:
    """``let``/``const`` names a statement list declares into the *current*
    environment frame.

    Mirrors the compiled statement bodies: ``if`` arms, ``switch`` cases and
    bare (non-block) statements execute in the current frame, while blocks,
    loop bodies, ``try`` blocks and nested functions get frames of their own.
    """
    if node is None:
        return
    if isinstance(node, ast.VariableDeclaration):
        if node.kind_keyword in ("let", "const"):
            for declarator in node.declarations:
                out.append((declarator.name, node.kind_keyword == "const"))
    elif isinstance(node, ast.IfStatement):
        for arm in (node.consequent, node.alternate):
            if arm is not None and not isinstance(arm, ast.BlockStatement):
                _collect_same_env_lets(arm, out)
    elif isinstance(node, ast.SwitchStatement):
        for case in node.cases:
            for statement in case.body:
                if not isinstance(statement, ast.BlockStatement):
                    _collect_same_env_lets(statement, out)


def _statement_list_lets(statements: List[ast.Node]) -> List[Tuple[str, bool]]:
    out: List[Tuple[str, bool]] = []
    for statement in statements:
        _collect_same_env_lets(statement, out)
    return out


def _walk_own_level(node: Any, found: Dict[str, bool]) -> None:
    """Scan a function body without descending into nested functions,
    recording whether it uses ``this``, ``arguments`` or contains any inner
    function (which could capture — and thus expose — the frame)."""
    if isinstance(node, (ast.FunctionExpression, ast.FunctionDeclaration)):
        found["inner"] = True
        return
    if isinstance(node, ast.ThisExpression):
        found["this"] = True
    elif isinstance(node, ast.Identifier):
        if node.name == "arguments":
            found["arguments"] = True
    if not isinstance(node, ast.Node):
        return
    for field_name in node.__dataclass_fields__:
        if field_name in ("line", "column", "node_id"):
            continue
        value = getattr(node, field_name)
        if isinstance(value, ast.Node):
            _walk_own_level(value, found)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node):
                    _walk_own_level(item, found)


# ---------------------------------------------------------------------------
# the resolver
# ---------------------------------------------------------------------------
class _Resolver:
    def resolve_program(self, program: ast.Program) -> None:
        global_scope = _Scope(parent=None, is_function=True, dynamic=True)
        for statement in program.body:
            self._stmt(statement, global_scope)

    # -------------------------------------------------------------- scopes
    def _function_scope(
        self,
        params: List[str],
        body: ast.BlockStatement,
        parent: _Scope,
    ) -> _Scope:
        """Build the static scope of one function frame and annotate its body
        with the :class:`FunctionScopeInfo` the call prologue consumes."""
        scope = _Scope(parent=parent, is_function=True)
        usage: Dict[str, bool] = {}
        for statement in body.body:
            _walk_own_level(statement, usage)
        escapes = usage.get("inner", False)
        this_idx: Optional[int] = None
        args_idx: Optional[int] = None
        # Declaration (and dict-insertion) order mirrors the legacy prologue:
        # this, arguments, params, hoisted vars/functions, top-level lets.
        if escapes or usage.get("this", False):
            this_idx = scope.declare("this", maybe_hole=False).idx
        if escapes or usage.get("arguments", False):
            args_idx = scope.declare("arguments", maybe_hole=False).idx
        param_idx = tuple(scope.declare(param, maybe_hole=False).idx for param in params)
        hoist = build_hoist_plan(body.body)
        plan: List[Tuple[Any, ...]] = []
        for kind, payload in hoist:
            if kind == "var":
                name = intern(payload)
                plan.append(("var", scope.declare(name, maybe_hole=False).idx, name))
            else:
                name = intern(payload.name)
                plan.append(("func", scope.declare(name, maybe_hole=False).idx, name, payload))
        for name, is_const in _statement_list_lets(body.body):
            scope.declare(name, maybe_hole=True, is_const=is_const)
        layout = scope.layout()
        if layout is not None:
            body._fn_scope = FunctionScopeInfo(
                layout, this_idx, args_idx, param_idx, tuple(plan)
            )
        return scope

    def _block_scope(self, statements: List[ast.Node], parent: _Scope) -> _Scope:
        scope = _Scope(parent=parent, is_function=False)
        for name, is_const in _statement_list_lets(statements):
            scope.declare(name, maybe_hole=True, is_const=is_const)
        return scope

    # ----------------------------------------------------------- statements
    def _stmt(self, node: Optional[ast.Node], scope: _Scope) -> None:
        if node is None:
            return
        method = getattr(self, "_stmt_" + type(node).__name__, None)
        if method is not None:
            method(node, scope)
        else:
            self._expr(node, scope)

    def _stmt_VariableDeclaration(self, node: ast.VariableDeclaration, scope: _Scope) -> None:
        for declarator in node.declarations:
            declarator.name = intern(declarator.name)
            if declarator.init is not None:
                self._expr(declarator.init, scope)

    def _stmt_FunctionDeclaration(self, node: ast.FunctionDeclaration, scope: _Scope) -> None:
        # Hoisting creates the closure over the *function* frame, never over
        # intervening block frames (see run_hoist_plan).
        parent = scope
        while not parent.is_function:
            parent = parent.parent
        body_scope = self._function_scope(node.params, node.body, parent)
        for statement in node.body.body:
            self._stmt(statement, body_scope)

    def _stmt_BlockStatement(self, node: ast.BlockStatement, scope: _Scope) -> None:
        block = self._block_scope(node.body, scope)
        node._layout = block.layout()
        for statement in node.body:
            self._stmt(statement, block)

    def _stmt_ExpressionStatement(self, node: ast.ExpressionStatement, scope: _Scope) -> None:
        self._expr(node.expression, scope)

    def _stmt_IfStatement(self, node: ast.IfStatement, scope: _Scope) -> None:
        self._expr(node.test, scope)
        self._stmt(node.consequent, scope)
        self._stmt(node.alternate, scope)

    def _stmt_ForStatement(self, node: ast.ForStatement, scope: _Scope) -> None:
        loop_lets: List[Tuple[str, bool]] = []
        _collect_same_env_lets(node.init, loop_lets)
        loop = _Scope(parent=scope, is_function=False)
        for name, is_const in loop_lets:
            loop.declare(name, maybe_hole=True, is_const=is_const)
        node._loop_layout = loop.layout()
        self._stmt(node.init, loop)
        if node.test is not None:
            self._expr(node.test, loop)
        if node.update is not None:
            self._expr(node.update, loop)
        iter_scope = self._iteration_scope(node.body, loop)
        node._iter_layout = iter_scope.layout()
        self._stmt(node.body, iter_scope)

    def _stmt_ForInStatement(self, node: ast.ForInStatement, scope: _Scope) -> None:
        self._expr(node.iterable, scope)
        node.target_name = intern(node.target_name)
        loop = _Scope(parent=scope, is_function=False)
        if node.declaration_kind in ("let", "const"):
            # Declared (as plain let: the induction assignment must succeed)
            # at loop entry, before any iteration runs.
            loop.declare(node.target_name, maybe_hole=False)
        node._loop_layout = loop.layout()
        node._target_res = loop.resolve(node.target_name)
        iter_scope = self._iteration_scope(node.body, loop)
        node._iter_layout = iter_scope.layout()
        self._stmt(node.body, iter_scope)

    def _stmt_WhileStatement(self, node: ast.WhileStatement, scope: _Scope) -> None:
        self._expr(node.test, scope)
        iter_scope = self._iteration_scope(node.body, scope)
        node._iter_layout = iter_scope.layout()
        self._stmt(node.body, iter_scope)

    def _stmt_DoWhileStatement(self, node: ast.DoWhileStatement, scope: _Scope) -> None:
        iter_scope = self._iteration_scope(node.body, scope)
        node._iter_layout = iter_scope.layout()
        self._stmt(node.body, iter_scope)
        self._expr(node.test, scope)

    def _iteration_scope(self, body: Optional[ast.Node], parent: _Scope) -> _Scope:
        """The per-iteration frame: bare (non-block) declaration statements in
        loop-body position declare directly into it."""
        scope = _Scope(parent=parent, is_function=False)
        if body is not None and not isinstance(body, ast.BlockStatement):
            lets: List[Tuple[str, bool]] = []
            _collect_same_env_lets(body, lets)
            for name, is_const in lets:
                scope.declare(name, maybe_hole=True, is_const=is_const)
        return scope

    def _stmt_ReturnStatement(self, node: ast.ReturnStatement, scope: _Scope) -> None:
        if node.argument is not None:
            self._expr(node.argument, scope)

    def _stmt_BreakStatement(self, node: ast.BreakStatement, scope: _Scope) -> None:
        pass

    def _stmt_ContinueStatement(self, node: ast.ContinueStatement, scope: _Scope) -> None:
        pass

    def _stmt_EmptyStatement(self, node: ast.EmptyStatement, scope: _Scope) -> None:
        pass

    def _stmt_ThrowStatement(self, node: ast.ThrowStatement, scope: _Scope) -> None:
        self._expr(node.argument, scope)

    def _stmt_TryStatement(self, node: ast.TryStatement, scope: _Scope) -> None:
        self._stmt(node.block, scope)
        handler = node.handler
        if handler is not None:
            catch = _Scope(parent=scope, is_function=False)
            if handler.param:
                handler.param = intern(handler.param)
                catch.declare(handler.param, maybe_hole=False)
            handler._layout = catch.layout()
            self._stmt(handler.body, catch)
        self._stmt(node.finalizer, scope)

    def _stmt_SwitchStatement(self, node: ast.SwitchStatement, scope: _Scope) -> None:
        self._expr(node.discriminant, scope)
        for case in node.cases:
            if case.test is not None:
                self._expr(case.test, scope)
            for statement in case.body:
                self._stmt(statement, scope)

    # ----------------------------------------------------------- expressions
    def _expr(self, node: Optional[ast.Node], scope: _Scope) -> None:
        if node is None:
            return
        method = getattr(self, "_expr_" + type(node).__name__, None)
        if method is not None:
            method(node, scope)
        elif isinstance(node, ast.Node):
            # Statement in expression position (for-init declarations...).
            stmt = getattr(self, "_stmt_" + type(node).__name__, None)
            if stmt is not None:
                stmt(node, scope)

    def _expr_Identifier(self, node: ast.Identifier, scope: _Scope) -> None:
        node.name = intern(node.name)
        node._res = scope.resolve(node.name)

    def _expr_ThisExpression(self, node: ast.ThisExpression, scope: _Scope) -> None:
        node._res = scope.resolve("this")

    def _expr_FunctionExpression(self, node: ast.FunctionExpression, scope: _Scope) -> None:
        parent = scope
        if node.name:
            # Named function expressions close over an extra one-binding frame
            # holding the self-reference.
            fnexpr = _Scope(parent=scope, is_function=False)
            fnexpr.declare(node.name, maybe_hole=False)
            node._fnexpr_layout = fnexpr.layout()
            parent = fnexpr
        body_scope = self._function_scope(node.params, node.body, parent)
        for statement in node.body.body:
            self._stmt(statement, body_scope)

    def _expr_MemberExpression(self, node: ast.MemberExpression, scope: _Scope) -> None:
        self._expr(node.object, scope)
        if node.computed:
            self._expr(node.property, scope)
        else:
            node.property.value = intern(node.property.value)

    def _expr_AssignmentExpression(self, node: ast.AssignmentExpression, scope: _Scope) -> None:
        self._expr(node.target, scope)
        self._expr(node.value, scope)

    def _expr_UpdateExpression(self, node: ast.UpdateExpression, scope: _Scope) -> None:
        self._expr(node.target, scope)

    def _expr_UnaryExpression(self, node: ast.UnaryExpression, scope: _Scope) -> None:
        self._expr(node.operand, scope)

    def _expr_BinaryExpression(self, node: ast.BinaryExpression, scope: _Scope) -> None:
        self._expr(node.left, scope)
        self._expr(node.right, scope)

    def _expr_LogicalExpression(self, node: ast.LogicalExpression, scope: _Scope) -> None:
        self._expr(node.left, scope)
        self._expr(node.right, scope)

    def _expr_ConditionalExpression(self, node: ast.ConditionalExpression, scope: _Scope) -> None:
        self._expr(node.test, scope)
        self._expr(node.consequent, scope)
        self._expr(node.alternate, scope)

    def _expr_CallExpression(self, node: ast.CallExpression, scope: _Scope) -> None:
        self._expr(node.callee, scope)
        for argument in node.arguments:
            self._expr(argument, scope)

    def _expr_NewExpression(self, node: ast.NewExpression, scope: _Scope) -> None:
        self._expr(node.callee, scope)
        for argument in node.arguments:
            self._expr(argument, scope)

    def _expr_SequenceExpression(self, node: ast.SequenceExpression, scope: _Scope) -> None:
        for expression in node.expressions:
            self._expr(expression, scope)

    def _expr_ArrayLiteral(self, node: ast.ArrayLiteral, scope: _Scope) -> None:
        for element in node.elements:
            self._expr(element, scope)

    def _expr_ObjectLiteral(self, node: ast.ObjectLiteral, scope: _Scope) -> None:
        for prop in node.properties:
            prop.key = intern(prop.key)
            self._expr(prop.value, scope)

    def _expr_NumberLiteral(self, node: ast.NumberLiteral, scope: _Scope) -> None:
        pass

    def _expr_StringLiteral(self, node: ast.StringLiteral, scope: _Scope) -> None:
        pass

    def _expr_BooleanLiteral(self, node: ast.BooleanLiteral, scope: _Scope) -> None:
        pass

    def _expr_NullLiteral(self, node: ast.NullLiteral, scope: _Scope) -> None:
        pass

    def _expr_UndefinedLiteral(self, node: ast.UndefinedLiteral, scope: _Scope) -> None:
        pass


def resolve_program(program: ast.Program) -> None:
    """Annotate ``program`` (idempotent) with static scope information.

    When slot scopes are disabled (``REPRO_FORCE_DICT_SCOPES=1`` or
    :func:`repro.jsvm.scope.set_slot_scopes`), the program is marked resolved
    without annotations, so every construct compiles to the dict path.  The
    decision is baked per-AST: an AST resolved in one mode keeps that mode
    for its lifetime (re-parse to switch).
    """
    if getattr(program, "_resolved", False):
        return
    program._resolved = True
    if not slot_scopes_enabled():
        return
    _Resolver().resolve_program(program)
