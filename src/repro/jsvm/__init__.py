"""Mini-JavaScript engine substrate.

This package provides the lexer, parser, value model and tree-walking
interpreter that stand in for the browser's JavaScript engine in the
JS-CERES reproduction.  See :mod:`repro.jsvm.interpreter` for the entry
point.
"""

from .ast_nodes import LOOP_NODE_TYPES, Program, walk
from .clock import VirtualClock
from .errors import (
    InterpreterLimitError,
    JSError,
    JSReferenceError,
    JSRuntimeError,
    JSSyntaxError,
    JSThrownValue,
    JSTypeError,
)
from .hooks import HookBus, Tracer
from .interpreter import Interpreter
from .lexer import tokenize
from .parser import parse
from .values import (
    NULL,
    UNDEFINED,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    to_boolean,
    to_number,
    to_string,
    type_of,
)

__all__ = [
    "LOOP_NODE_TYPES",
    "Program",
    "walk",
    "VirtualClock",
    "InterpreterLimitError",
    "JSError",
    "JSReferenceError",
    "JSRuntimeError",
    "JSSyntaxError",
    "JSThrownValue",
    "JSTypeError",
    "HookBus",
    "Tracer",
    "Interpreter",
    "tokenize",
    "parse",
    "NULL",
    "UNDEFINED",
    "JSArray",
    "JSFunction",
    "JSObject",
    "NativeFunction",
    "to_boolean",
    "to_number",
    "to_string",
    "type_of",
]
