"""Built-in global objects for the mini-JavaScript realm.

Installs ``Math``, ``Object``, ``Array``, ``JSON``, ``console``, ``Date``,
``Number``/``parseInt``/``parseFloat``/``isNaN`` and the Array/Function
prototype methods used by the case-study workloads.  The high-level Array
operators (``map``, ``forEach``, ``reduce``, ``filter``, ``every``, ``some``)
matter for the paper's survey discussion of functional-style iteration, so
they are implemented completely and invoke guest callbacks through the
interpreter (which means instrumentation sees the callback's accesses).
"""

from __future__ import annotations

import math
from typing import Any, List

from .errors import JSRangeError, JSTypeError
from .values import (
    NULL,
    UNDEFINED,
    JSArray,
    JSObject,
    NativeFunction,
    is_callable,
    to_boolean,
    to_number,
    to_string,
)


def _native(name: str):
    """Decorator-style helper returning a NativeFunction around ``func``."""

    def wrap(func):
        return NativeFunction(name, func)

    return wrap


def _arg(args: List[Any], index: int, default: Any = UNDEFINED) -> Any:
    return args[index] if index < len(args) else default


# --------------------------------------------------------------------------
# Math
# --------------------------------------------------------------------------


def _install_math(interp) -> None:
    math_obj = JSObject(prototype=interp.object_prototype, class_name="Math")

    def unary(fn):
        def impl(interpreter, this, args):
            return float(fn(to_number(_arg(args, 0, 0.0))))

        return impl

    def guarded(fn):
        def impl(value: float) -> float:
            try:
                return fn(value)
            except (ValueError, OverflowError):
                return float("nan")

        return impl

    math_obj.set("PI", math.pi)
    math_obj.set("E", math.e)
    math_obj.set("LN2", math.log(2.0))
    math_obj.set("SQRT2", math.sqrt(2.0))
    def rounding(fn):
        # JS rounding functions pass non-finite inputs through unchanged
        # (Math.floor(NaN) is NaN, Math.floor(Infinity) is Infinity) where
        # Python's math.floor would raise.
        def impl(value: float) -> float:
            if not math.isfinite(value):
                return value
            return fn(value)

        return impl

    math_obj.set("abs", NativeFunction("abs", unary(abs)))
    math_obj.set("floor", NativeFunction("floor", unary(rounding(math.floor))))
    math_obj.set("ceil", NativeFunction("ceil", unary(rounding(math.ceil))))
    math_obj.set("round", NativeFunction("round", unary(rounding(lambda x: math.floor(x + 0.5)))))
    math_obj.set("sqrt", NativeFunction("sqrt", unary(guarded(math.sqrt))))
    math_obj.set("sin", NativeFunction("sin", unary(math.sin)))
    math_obj.set("cos", NativeFunction("cos", unary(math.cos)))
    math_obj.set("tan", NativeFunction("tan", unary(math.tan)))
    math_obj.set("asin", NativeFunction("asin", unary(guarded(math.asin))))
    math_obj.set("acos", NativeFunction("acos", unary(guarded(math.acos))))
    math_obj.set("atan", NativeFunction("atan", unary(math.atan)))
    math_obj.set("exp", NativeFunction("exp", unary(guarded(math.exp))))
    math_obj.set("log", NativeFunction("log", unary(guarded(math.log))))

    def math_atan2(interpreter, this, args):
        return math.atan2(to_number(_arg(args, 0, 0.0)), to_number(_arg(args, 1, 0.0)))

    def math_pow(interpreter, this, args):
        base = to_number(_arg(args, 0, 0.0))
        exponent = to_number(_arg(args, 1, 0.0))
        try:
            result = math.pow(base, exponent)
        except (ValueError, OverflowError):
            return float("nan")
        return float(result)

    def math_min(interpreter, this, args):
        if not args:
            return math.inf
        numbers = [to_number(a) for a in args]
        if any(math.isnan(n) for n in numbers):
            return float("nan")
        return min(numbers)

    def math_max(interpreter, this, args):
        if not args:
            return -math.inf
        numbers = [to_number(a) for a in args]
        if any(math.isnan(n) for n in numbers):
            return float("nan")
        return max(numbers)

    def math_random(interpreter, this, args):
        return interpreter.rng.random()

    math_obj.set("atan2", NativeFunction("atan2", math_atan2))
    math_obj.set("pow", NativeFunction("pow", math_pow))
    math_obj.set("min", NativeFunction("min", math_min))
    math_obj.set("max", NativeFunction("max", math_max))
    math_obj.set("random", NativeFunction("random", math_random))
    interp.global_env.declare_var("Math", math_obj)


# --------------------------------------------------------------------------
# Array prototype
# --------------------------------------------------------------------------


def _require_array(this: Any, method: str) -> JSArray:
    if not isinstance(this, JSArray):
        raise JSTypeError(f"Array.prototype.{method} called on a non-array")
    return this


def _install_array(interp) -> None:
    proto = interp.array_prototype

    def array_push(interpreter, this, args):
        arr = _require_array(this, "push")
        arr.elements.extend(args)
        return float(len(arr.elements))

    def array_pop(interpreter, this, args):
        arr = _require_array(this, "pop")
        return arr.elements.pop() if arr.elements else UNDEFINED

    def array_shift(interpreter, this, args):
        arr = _require_array(this, "shift")
        return arr.elements.pop(0) if arr.elements else UNDEFINED

    def array_unshift(interpreter, this, args):
        arr = _require_array(this, "unshift")
        arr.elements[0:0] = list(args)
        return float(len(arr.elements))

    def array_slice(interpreter, this, args):
        arr = _require_array(this, "slice")
        length = len(arr.elements)
        start = int(to_number(_arg(args, 0, 0.0))) if args else 0
        end_arg = _arg(args, 1, UNDEFINED)
        end = length if end_arg is UNDEFINED else int(to_number(end_arg))
        if start < 0:
            start = max(length + start, 0)
        if end < 0:
            end = max(length + end, 0)
        return interpreter.make_array(arr.elements[start:end])

    def array_concat(interpreter, this, args):
        arr = _require_array(this, "concat")
        elements = list(arr.elements)
        for value in args:
            if isinstance(value, JSArray):
                elements.extend(value.elements)
            else:
                elements.append(value)
        return interpreter.make_array(elements)

    def array_join(interpreter, this, args):
        arr = _require_array(this, "join")
        separator = to_string(_arg(args, 0, ","))
        if _arg(args, 0, UNDEFINED) is UNDEFINED:
            separator = ","
        return separator.join(
            "" if el is UNDEFINED or el is NULL else to_string(el) for el in arr.elements
        )

    def array_index_of(interpreter, this, args):
        arr = _require_array(this, "indexOf")
        target = _arg(args, 0)
        from .values import strict_equals

        for index, value in enumerate(arr.elements):
            if strict_equals(value, target):
                return float(index)
        return -1.0

    def array_reverse(interpreter, this, args):
        arr = _require_array(this, "reverse")
        arr.elements.reverse()
        return arr

    def array_fill(interpreter, this, args):
        arr = _require_array(this, "fill")
        value = _arg(args, 0)
        for index in range(len(arr.elements)):
            arr.elements[index] = value
        return arr

    def _iterate(interpreter, arr: JSArray, callback, collect=None, predicate=None):
        for index, value in enumerate(arr.elements):
            result = interpreter.call_function(callback, UNDEFINED, [value, float(index), arr])
            if collect is not None:
                collect(index, value, result)

    def array_for_each(interpreter, this, args):
        arr = _require_array(this, "forEach")
        callback = _arg(args, 0)
        if not is_callable(callback):
            raise JSTypeError("forEach callback is not a function")
        _iterate(interpreter, arr, callback)
        return UNDEFINED

    def array_map(interpreter, this, args):
        arr = _require_array(this, "map")
        callback = _arg(args, 0)
        if not is_callable(callback):
            raise JSTypeError("map callback is not a function")
        out: List[Any] = [UNDEFINED] * len(arr.elements)

        def collect(index, value, result):
            out[index] = result

        _iterate(interpreter, arr, callback, collect=collect)
        return interpreter.make_array(out)

    def array_filter(interpreter, this, args):
        arr = _require_array(this, "filter")
        callback = _arg(args, 0)
        if not is_callable(callback):
            raise JSTypeError("filter callback is not a function")
        out: List[Any] = []

        def collect(index, value, result):
            if to_boolean(result):
                out.append(value)

        _iterate(interpreter, arr, callback, collect=collect)
        return interpreter.make_array(out)

    def array_reduce(interpreter, this, args):
        arr = _require_array(this, "reduce")
        callback = _arg(args, 0)
        if not is_callable(callback):
            raise JSTypeError("reduce callback is not a function")
        elements = arr.elements
        if len(args) >= 2:
            accumulator = args[1]
            start = 0
        else:
            if not elements:
                raise JSTypeError("reduce of empty array with no initial value")
            accumulator = elements[0]
            start = 1
        for index in range(start, len(elements)):
            accumulator = interpreter.call_function(
                callback, UNDEFINED, [accumulator, elements[index], float(index), arr]
            )
        return accumulator

    def array_every(interpreter, this, args):
        arr = _require_array(this, "every")
        callback = _arg(args, 0)
        if not is_callable(callback):
            raise JSTypeError("every callback is not a function")
        for index, value in enumerate(arr.elements):
            if not to_boolean(interpreter.call_function(callback, UNDEFINED, [value, float(index), arr])):
                return False
        return True

    def array_some(interpreter, this, args):
        arr = _require_array(this, "some")
        callback = _arg(args, 0)
        if not is_callable(callback):
            raise JSTypeError("some callback is not a function")
        for index, value in enumerate(arr.elements):
            if to_boolean(interpreter.call_function(callback, UNDEFINED, [value, float(index), arr])):
                return True
        return False

    def array_sort(interpreter, this, args):
        arr = _require_array(this, "sort")
        comparator = _arg(args, 0)
        if is_callable(comparator):
            import functools

            def cmp(a, b):
                result = to_number(interpreter.call_function(comparator, UNDEFINED, [a, b]))
                if math.isnan(result):
                    return 0
                return -1 if result < 0 else (1 if result > 0 else 0)

            arr.elements.sort(key=functools.cmp_to_key(cmp))
        else:
            arr.elements.sort(key=to_string)
        return arr

    def array_splice(interpreter, this, args):
        arr = _require_array(this, "splice")
        length = len(arr.elements)
        start = int(to_number(_arg(args, 0, 0.0)))
        if start < 0:
            start = max(length + start, 0)
        start = min(start, length)
        delete_count = (
            length - start if len(args) < 2 else max(0, int(to_number(_arg(args, 1, 0.0))))
        )
        removed = arr.elements[start : start + delete_count]
        arr.elements[start : start + delete_count] = list(args[2:])
        return interpreter.make_array(removed)

    for name, func in [
        ("push", array_push),
        ("pop", array_pop),
        ("shift", array_shift),
        ("unshift", array_unshift),
        ("slice", array_slice),
        ("splice", array_splice),
        ("concat", array_concat),
        ("join", array_join),
        ("indexOf", array_index_of),
        ("reverse", array_reverse),
        ("fill", array_fill),
        ("forEach", array_for_each),
        ("map", array_map),
        ("filter", array_filter),
        ("reduce", array_reduce),
        ("every", array_every),
        ("some", array_some),
        ("sort", array_sort),
    ]:
        proto.set(name, NativeFunction(name, func))

    def array_constructor(interpreter, this, args):
        if len(args) == 1 and isinstance(args[0], (int, float)) and not isinstance(args[0], bool):
            length = int(to_number(args[0]))
            if length < 0:
                raise JSRangeError("invalid array length")
            return interpreter.make_array([UNDEFINED] * length)
        return interpreter.make_array(list(args))

    array_ctor = NativeFunction("Array", array_constructor)

    def array_is_array(interpreter, this, args):
        return isinstance(_arg(args, 0), JSArray)

    array_ctor.set("isArray", NativeFunction("isArray", array_is_array))
    array_ctor.set("prototype", proto)
    interp.global_env.declare_var("Array", array_ctor)


# --------------------------------------------------------------------------
# Object / Function / JSON / console / numeric globals
# --------------------------------------------------------------------------


def _install_object(interp) -> None:
    def object_keys(interpreter, this, args):
        target = _arg(args, 0)
        if not isinstance(target, JSObject):
            return interpreter.make_array([])
        return interpreter.make_array(list(target.own_keys()))

    def object_create(interpreter, this, args):
        proto = _arg(args, 0)
        prototype = proto if isinstance(proto, JSObject) else None
        obj = JSObject(prototype=prototype)
        interpreter.stats.objects_created += 1
        if interpreter.hooks.wants_objects:
            interpreter.hooks.object_created(interpreter, obj, None)
        return obj

    def object_constructor(interpreter, this, args):
        return interpreter.make_object()

    object_ctor = NativeFunction("Object", object_constructor)
    object_ctor.set("keys", NativeFunction("keys", object_keys))
    object_ctor.set("create", NativeFunction("create", object_create))
    object_ctor.set("prototype", interp.object_prototype)

    def object_has_own(interpreter, this, args):
        if isinstance(this, JSObject):
            return this.has_own(to_string(_arg(args, 0, "")))
        return False

    interp.object_prototype.set("hasOwnProperty", NativeFunction("hasOwnProperty", object_has_own))

    def object_to_string(interpreter, this, args):
        return to_string(this)

    interp.object_prototype.set("toString", NativeFunction("toString", object_to_string))
    interp.global_env.declare_var("Object", object_ctor)


def _install_function_prototype(interp) -> None:
    def function_call(interpreter, this, args):
        if not is_callable(this):
            raise JSTypeError("Function.prototype.call on non-function")
        bound_this = _arg(args, 0, UNDEFINED)
        return interpreter.call_function(this, bound_this, list(args[1:]))

    def function_apply(interpreter, this, args):
        if not is_callable(this):
            raise JSTypeError("Function.prototype.apply on non-function")
        bound_this = _arg(args, 0, UNDEFINED)
        arg_list = _arg(args, 1, UNDEFINED)
        call_args = list(arg_list.elements) if isinstance(arg_list, JSArray) else []
        return interpreter.call_function(this, bound_this, call_args)

    def function_bind(interpreter, this, args):
        if not is_callable(this):
            raise JSTypeError("Function.prototype.bind on non-function")
        bound_this = _arg(args, 0, UNDEFINED)
        bound_args = list(args[1:])
        target = this

        def bound(inner_interp, call_this, call_args):
            return inner_interp.call_function(target, bound_this, bound_args + list(call_args))

        name = getattr(target, "name", "bound")
        return NativeFunction(f"bound {name}", bound, prototype=interp.function_prototype)

    interp.function_prototype.set("call", NativeFunction("call", function_call))
    interp.function_prototype.set("apply", NativeFunction("apply", function_apply))
    interp.function_prototype.set("bind", NativeFunction("bind", function_bind))


def _json_stringify_value(value: Any, depth: int = 0) -> str:
    if depth > 16:
        return "null"
    if value is UNDEFINED:
        return "null"
    if value is NULL:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        number = float(value)
        if math.isnan(number) or math.isinf(number):
            return "null"
        return to_string(number)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    if isinstance(value, JSArray):
        return "[" + ",".join(_json_stringify_value(el, depth + 1) for el in value.elements) + "]"
    if isinstance(value, JSObject):
        parts = []
        for key in value.own_keys():
            item = value.get(key)
            if is_callable(item):
                continue
            parts.append(f'"{key}":{_json_stringify_value(item, depth + 1)}')
        return "{" + ",".join(parts) + "}"
    return "null"


def _install_json_console(interp) -> None:
    json_obj = JSObject(prototype=interp.object_prototype, class_name="JSON")

    def json_stringify(interpreter, this, args):
        return _json_stringify_value(_arg(args, 0))

    json_obj.set("stringify", NativeFunction("stringify", json_stringify))
    interp.global_env.declare_var("JSON", json_obj)

    console = JSObject(prototype=interp.object_prototype, class_name="Console")

    def console_log(interpreter, this, args):
        interpreter.console_output.append(" ".join(to_string(a) for a in args))
        return UNDEFINED

    console.set("log", NativeFunction("log", console_log))
    console.set("warn", NativeFunction("warn", console_log))
    console.set("error", NativeFunction("error", console_log))
    interp.global_env.declare_var("console", console)


def _install_numeric_globals(interp) -> None:
    def parse_int(interpreter, this, args):
        text = to_string(_arg(args, 0, "")).strip()
        radix_arg = _arg(args, 1, UNDEFINED)
        radix = int(to_number(radix_arg)) if radix_arg is not UNDEFINED else 10
        if radix == 0:
            radix = 10
        sign = 1
        if text.startswith("-"):
            sign, text = -1, text[1:]
        elif text.startswith("+"):
            text = text[1:]
        if radix == 16 and text.lower().startswith("0x"):
            text = text[2:]
        digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:radix]
        accumulated = ""
        for ch in text.lower():
            if ch in digits:
                accumulated += ch
            else:
                break
        if not accumulated:
            return float("nan")
        return float(sign * int(accumulated, radix))

    def parse_float(interpreter, this, args):
        text = to_string(_arg(args, 0, "")).strip()
        matched = ""
        seen_dot = seen_exp = False
        for index, ch in enumerate(text):
            if ch.isdigit():
                matched += ch
            elif ch == "." and not seen_dot and not seen_exp:
                matched += ch
                seen_dot = True
            elif ch in "eE" and not seen_exp and matched:
                matched += ch
                seen_exp = True
            elif ch in "+-" and (index == 0 or matched[-1:].lower() == "e"):
                matched += ch
            else:
                break
        try:
            return float(matched)
        except ValueError:
            return float("nan")

    def is_nan(interpreter, this, args):
        return math.isnan(to_number(_arg(args, 0)))

    def is_finite(interpreter, this, args):
        number = to_number(_arg(args, 0))
        return not (math.isnan(number) or math.isinf(number))

    interp.global_env.declare_var("parseInt", NativeFunction("parseInt", parse_int))
    interp.global_env.declare_var("parseFloat", NativeFunction("parseFloat", parse_float))
    interp.global_env.declare_var("isNaN", NativeFunction("isNaN", is_nan))
    interp.global_env.declare_var("isFinite", NativeFunction("isFinite", is_finite))
    interp.global_env.declare_var("NaN", float("nan"))
    interp.global_env.declare_var("Infinity", math.inf)
    interp.global_env.declare_var("undefined", UNDEFINED)

    number_obj = NativeFunction("Number", lambda i, t, a: to_number(_arg(a, 0, 0.0)))
    number_obj.set("MAX_VALUE", 1.7976931348623157e308)
    number_obj.set("MIN_VALUE", 5e-324)
    number_obj.set("POSITIVE_INFINITY", math.inf)
    number_obj.set("NEGATIVE_INFINITY", -math.inf)
    number_obj.set("isInteger", NativeFunction(
        "isInteger",
        lambda i, t, a: isinstance(_arg(a, 0), (int, float))
        and not isinstance(_arg(a, 0), bool)
        and float(_arg(a, 0)) == int(float(_arg(a, 0))),
    ))
    interp.global_env.declare_var("Number", number_obj)

    string_ctor = NativeFunction("String", lambda i, t, a: to_string(_arg(a, 0, "")))

    def from_char_code(interpreter, this, args):
        return "".join(chr(int(to_number(a))) for a in args)

    string_ctor.set("fromCharCode", NativeFunction("fromCharCode", from_char_code))
    interp.global_env.declare_var("String", string_ctor)

    boolean_ctor = NativeFunction("Boolean", lambda i, t, a: to_boolean(_arg(a, 0, False)))
    interp.global_env.declare_var("Boolean", boolean_ctor)

    date_ctor = NativeFunction("Date", lambda i, t, a: i.make_object())

    def date_now(interpreter, this, args):
        return interpreter.clock.now()

    date_ctor.set("now", NativeFunction("now", date_now))
    interp.global_env.declare_var("Date", date_ctor)


def install_builtins(interp) -> None:
    """Populate the realm's global environment with the standard library."""
    _install_math(interp)
    _install_array(interp)
    _install_object(interp)
    _install_function_prototype(interp)
    _install_json_console(interp)
    _install_numeric_globals(interp)


# --------------------------------------------------------------------------
# Primitive "wrapper" property access (strings and numbers)
# --------------------------------------------------------------------------


def get_string_property(interp, value: str, key: str) -> Any:
    """Property access on a primitive string (length, methods, indexing)."""
    if key == "length":
        return float(len(value))
    if key.isdigit():
        index = int(key)
        return value[index] if 0 <= index < len(value) else UNDEFINED

    def method(name, impl):
        return NativeFunction(name, impl)

    if key == "charCodeAt":
        return method(key, lambda i, t, a: float(ord(value[int(to_number(_arg(a, 0, 0.0)))]))
                      if 0 <= int(to_number(_arg(a, 0, 0.0))) < len(value) else float("nan"))
    if key == "charAt":
        return method(key, lambda i, t, a: value[int(to_number(_arg(a, 0, 0.0)))]
                      if 0 <= int(to_number(_arg(a, 0, 0.0))) < len(value) else "")
    if key == "indexOf":
        return method(key, lambda i, t, a: float(value.find(to_string(_arg(a, 0, "")))))
    if key == "lastIndexOf":
        return method(key, lambda i, t, a: float(value.rfind(to_string(_arg(a, 0, "")))))
    if key == "substring":
        def substring(i, t, a):
            start = max(0, int(to_number(_arg(a, 0, 0.0))))
            end_arg = _arg(a, 1, UNDEFINED)
            end = len(value) if end_arg is UNDEFINED else max(0, int(to_number(end_arg)))
            start, end = min(start, end), max(start, end)
            return value[start:end]

        return method(key, substring)
    if key == "slice":
        def str_slice(i, t, a):
            start = int(to_number(_arg(a, 0, 0.0)))
            end_arg = _arg(a, 1, UNDEFINED)
            end = len(value) if end_arg is UNDEFINED else int(to_number(end_arg))
            return value[start:end] if end >= 0 or start >= 0 else value[start:end]

        return method(key, str_slice)
    if key == "split":
        def split(i, t, a):
            separator = _arg(a, 0, UNDEFINED)
            if separator is UNDEFINED:
                return i.make_array([value])
            sep = to_string(separator)
            parts = list(value) if sep == "" else value.split(sep)
            return i.make_array(parts)

        return method(key, split)
    if key == "toUpperCase":
        return method(key, lambda i, t, a: value.upper())
    if key == "toLowerCase":
        return method(key, lambda i, t, a: value.lower())
    if key == "trim":
        return method(key, lambda i, t, a: value.strip())
    if key == "replace":
        return method(key, lambda i, t, a: value.replace(to_string(_arg(a, 0, "")), to_string(_arg(a, 1, "")), 1))
    if key == "concat":
        return method(key, lambda i, t, a: value + "".join(to_string(x) for x in a))
    if key == "toString":
        return method(key, lambda i, t, a: value)
    return UNDEFINED


def get_number_property(interp, value: float, key: str) -> Any:
    """Property access on a primitive number (``toFixed`` and friends)."""
    if key == "toFixed":
        def to_fixed(i, t, a):
            digits = int(to_number(_arg(a, 0, 0.0)))
            return f"{value:.{digits}f}"

        return NativeFunction(key, to_fixed)
    if key == "toString":
        return NativeFunction(key, lambda i, t, a: to_string(value))
    return UNDEFINED
