"""Instrumentation hook bus for the mini-JavaScript interpreter.

JS-CERES (the paper's tool) instruments JavaScript *on the wire*, inserting
callbacks before/after loops, around iterations and on every variable or
property access.  In this reproduction the interpreter plays the role of the
instrumented engine: it emits the same events through a :class:`HookBus`, and
each JS-CERES instrumentation mode is implemented as a :class:`Tracer`
subscribed to the bus.

Keeping the three modes as separate tracers mirrors the staged design of the
paper (Section 3): lightweight profiling, loop profiling, and dependence
analysis are attached one at a time to keep instrumentation overhead from
biasing the measurements.

Event tiers
-----------

Every event class has a bit in a subscriber *mask* (``EV_*`` constants).  A
tracer declares the events it needs via :attr:`Tracer.EVENTS`; the bus ORs
the declarations of all attached tracers into :attr:`HookBus.mask` and pushes
the result into every bound interpreter (``interp.trace_mask``).  The
interpreter's compiled code consults that single integer once per construct,
so a run with zero tracers never builds event arguments or enters the bus at
all — the "minimal discernible impact" baseline of Sections 3.1/3.2.
"""

from __future__ import annotations

from typing import Any, List, Optional

# -- event mask bits ----------------------------------------------------------
EV_LOOP = 1 << 0  #: loop enter / iteration / exit
EV_FUNCTION = 1 << 1  #: guest function enter / exit
EV_VAR = 1 << 2  #: variable reads and writes
EV_PROP = 1 << 3  #: property reads and writes
EV_OBJECT = 1 << 4  #: object / array / function instantiation
EV_ENV = 1 << 5  #: environment frame creation
EV_BRANCH = 1 << 6  #: dynamically evaluated predicates
EV_HOST = 1 << 7  #: DOM / canvas / timer host accesses
EV_STATEMENT = 1 << 8  #: statement-level sampling
EV_RECURSION = 1 << 9  #: loop-characterization recursion warnings

EV_ALL = (
    EV_LOOP
    | EV_FUNCTION
    | EV_VAR
    | EV_PROP
    | EV_OBJECT
    | EV_ENV
    | EV_BRANCH
    | EV_HOST
    | EV_STATEMENT
    | EV_RECURSION
)

#: hook-method name -> event bit, used to derive a mask for legacy tracers
#: that override methods without declaring :attr:`Tracer.EVENTS`.
_METHOD_EVENTS = {
    "on_loop_enter": EV_LOOP,
    "on_loop_iteration": EV_LOOP,
    "on_loop_exit": EV_LOOP,
    "on_function_enter": EV_FUNCTION,
    "on_function_exit": EV_FUNCTION,
    "on_env_created": EV_ENV,
    "on_var_write": EV_VAR,
    "on_var_read": EV_VAR,
    "on_object_created": EV_OBJECT,
    "on_prop_write": EV_PROP,
    "on_prop_read": EV_PROP,
    "on_branch": EV_BRANCH,
    "on_host_access": EV_HOST,
    "on_statement": EV_STATEMENT,
    "on_recursion_warning": EV_RECURSION,
}


class Tracer:
    """Base class with no-op implementations of every instrumentation event.

    Subclasses override only the events they need.  All callbacks receive the
    interpreter as the first argument so tracers can read the virtual clock or
    the current call stack without holding their own reference.

    Subclasses should declare the event classes they subscribe to in
    :attr:`EVENTS` (an OR of ``EV_*`` bits) so the bus can compute a minimal
    dispatch mask.  When ``EVENTS`` is ``None`` the bus falls back to
    inspecting which hook methods the subclass overrides.
    """

    #: OR of ``EV_*`` bits this tracer needs; ``None`` = derive from overrides.
    EVENTS: Optional[int] = None

    @classmethod
    def declared_events(cls) -> int:
        """The event mask this tracer subscribes to.

        The override-derived mask is always included, so a subclass that
        inherits an ``EVENTS`` declaration but overrides additional hook
        methods still receives those events.
        """
        mask = cls.EVENTS if cls.EVENTS is not None else 0
        for method_name, bit in _METHOD_EVENTS.items():
            if getattr(cls, method_name) is not getattr(Tracer, method_name):
                mask |= bit
        return mask

    # -- loops ---------------------------------------------------------------
    def on_loop_enter(self, interp: Any, node: Any) -> None:
        """A syntactic loop was entered (a new runtime *instance* begins)."""

    def on_loop_iteration(self, interp: Any, node: Any, iteration: int) -> None:
        """A new iteration of the innermost open loop is about to run."""

    def on_loop_exit(self, interp: Any, node: Any, trip_count: int) -> None:
        """The loop instance finished (normally or via break/return/throw)."""

    # -- functions -----------------------------------------------------------
    def on_function_enter(self, interp: Any, func: Any, call_node: Any) -> None:
        """A guest function call started."""

    def on_function_exit(self, interp: Any, func: Any) -> None:
        """A guest function call returned (or unwound)."""

    # -- environments and variables -------------------------------------------
    def on_env_created(self, interp: Any, env: Any, kind: str) -> None:
        """A new environment frame was created (``kind`` is 'function'/'block')."""

    def on_var_write(self, interp: Any, name: str, env: Any, value: Any, node: Any) -> None:
        """A variable binding was written."""

    def on_var_read(self, interp: Any, name: str, env: Any, node: Any) -> None:
        """A variable binding was read."""

    # -- objects and properties ------------------------------------------------
    def on_object_created(self, interp: Any, obj: Any, node: Any) -> None:
        """A guest object/array/function was instantiated."""

    def on_prop_write(self, interp: Any, obj: Any, name: str, value: Any, node: Any) -> None:
        """A property of a guest object was written."""

    def on_prop_read(self, interp: Any, obj: Any, name: str, node: Any) -> None:
        """A property of a guest object was read."""

    # -- control flow / host interaction ---------------------------------------
    def on_branch(self, interp: Any, node: Any, taken: bool) -> None:
        """A dynamically evaluated predicate selected a branch."""

    def on_host_access(self, interp: Any, category: str, detail: str, node: Any) -> None:
        """Guest code touched a host subsystem (``dom``, ``canvas``, ``timer``...)."""

    def on_statement(self, interp: Any, node: Any) -> None:
        """A statement is about to execute (used by sampling profilers)."""

    def on_recursion_warning(self, interp: Any, node: Any) -> None:
        """Recursive calls made the loop-characterization stack grow (Section 3.3)."""


class HookBus:
    """Dispatches interpreter events to the attached tracers.

    The bus maintains a per-event subscriber :attr:`mask` (OR of the attached
    tracers' declared events) plus the boolean ``wants_*`` flags derived from
    it.  Interpreters :meth:`bind` themselves to the bus so that attaching or
    detaching a tracer immediately updates their cached ``trace_mask`` — the
    single integer the compiled execution core consults per construct.
    """

    def __init__(self) -> None:
        self.tracers: List[Tracer] = []
        self.mask = 0
        #: Weak references to bound interpreters: a bus outliving its
        #: interpreters (e.g. one bus reused across many sessions) must not
        #: keep their guest heaps alive.
        self._bound: List[Any] = []
        self._refresh_flags()

    def bind(self, interp: Any) -> None:
        """Register an interpreter whose ``trace_mask`` mirrors this bus."""
        import weakref

        self._bound = [ref for ref in self._bound if ref() is not None and ref() is not interp]
        self._bound.append(weakref.ref(interp))
        interp.trace_mask = self.mask

    def unbind(self, interp: Any) -> None:
        self._bound = [ref for ref in self._bound if ref() is not None and ref() is not interp]

    def attach(self, tracer: Tracer) -> Tracer:
        self.tracers.append(tracer)
        self._refresh_flags()
        return tracer

    def detach(self, tracer: Tracer) -> None:
        if tracer in self.tracers:
            self.tracers.remove(tracer)
        self._refresh_flags()

    def clear(self) -> None:
        self.tracers.clear()
        self._refresh_flags()

    def _refresh_flags(self) -> None:
        mask = 0
        for tracer in self.tracers:
            mask |= type(tracer).declared_events()
        self.mask = mask
        self.wants_loops = bool(mask & EV_LOOP)
        self.wants_functions = bool(mask & EV_FUNCTION)
        self.wants_vars = bool(mask & EV_VAR)
        self.wants_props = bool(mask & EV_PROP)
        self.wants_objects = bool(mask & EV_OBJECT)
        self.wants_envs = bool(mask & EV_ENV)
        self.wants_branches = bool(mask & EV_BRANCH)
        self.wants_host = bool(mask & EV_HOST)
        self.wants_statements = bool(mask & EV_STATEMENT)
        self.any_tracer = bool(self.tracers)
        alive = []
        for ref in self._bound:
            interp = ref()
            if interp is not None:
                interp.trace_mask = mask
                alive.append(ref)
        self._bound = alive

    # -- dispatch helpers (thin wrappers; hot paths check the mask first) ----
    def loop_enter(self, interp, node) -> None:
        for tracer in self.tracers:
            tracer.on_loop_enter(interp, node)

    def loop_iteration(self, interp, node, iteration) -> None:
        for tracer in self.tracers:
            tracer.on_loop_iteration(interp, node, iteration)

    def loop_exit(self, interp, node, trip_count) -> None:
        for tracer in self.tracers:
            tracer.on_loop_exit(interp, node, trip_count)

    def function_enter(self, interp, func, call_node) -> None:
        for tracer in self.tracers:
            tracer.on_function_enter(interp, func, call_node)

    def function_exit(self, interp, func) -> None:
        for tracer in self.tracers:
            tracer.on_function_exit(interp, func)

    def env_created(self, interp, env, kind) -> None:
        for tracer in self.tracers:
            tracer.on_env_created(interp, env, kind)

    def var_write(self, interp, name, env, value, node) -> None:
        for tracer in self.tracers:
            tracer.on_var_write(interp, name, env, value, node)

    def var_read(self, interp, name, env, node) -> None:
        for tracer in self.tracers:
            tracer.on_var_read(interp, name, env, node)

    def object_created(self, interp, obj, node) -> None:
        for tracer in self.tracers:
            tracer.on_object_created(interp, obj, node)

    def prop_write(self, interp, obj, name, value, node) -> None:
        for tracer in self.tracers:
            tracer.on_prop_write(interp, obj, name, value, node)

    def prop_read(self, interp, obj, name, node) -> None:
        for tracer in self.tracers:
            tracer.on_prop_read(interp, obj, name, node)

    def branch(self, interp, node, taken) -> None:
        for tracer in self.tracers:
            tracer.on_branch(interp, node, taken)

    def host_access(self, interp, category, detail, node) -> None:
        for tracer in self.tracers:
            tracer.on_host_access(interp, category, detail, node)

    def statement(self, interp, node) -> None:
        for tracer in self.tracers:
            tracer.on_statement(interp, node)

    def recursion_warning(self, interp, node) -> None:
        for tracer in self.tracers:
            tracer.on_recursion_warning(interp, node)
