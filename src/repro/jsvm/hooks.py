"""Instrumentation hook bus for the mini-JavaScript interpreter.

JS-CERES (the paper's tool) instruments JavaScript *on the wire*, inserting
callbacks before/after loops, around iterations and on every variable or
property access.  In this reproduction the interpreter plays the role of the
instrumented engine: it emits the same events through a :class:`HookBus`, and
each JS-CERES instrumentation mode is implemented as a :class:`Tracer`
subscribed to the bus.

Keeping the three modes as separate tracers mirrors the staged design of the
paper (Section 3): lightweight profiling, loop profiling, and dependence
analysis are attached one at a time to keep instrumentation overhead from
biasing the measurements.
"""

from __future__ import annotations

from typing import Any, List, Optional


class Tracer:
    """Base class with no-op implementations of every instrumentation event.

    Subclasses override only the events they need.  All callbacks receive the
    interpreter as the first argument so tracers can read the virtual clock or
    the current call stack without holding their own reference.
    """

    # -- loops ---------------------------------------------------------------
    def on_loop_enter(self, interp: Any, node: Any) -> None:
        """A syntactic loop was entered (a new runtime *instance* begins)."""

    def on_loop_iteration(self, interp: Any, node: Any, iteration: int) -> None:
        """A new iteration of the innermost open loop is about to run."""

    def on_loop_exit(self, interp: Any, node: Any, trip_count: int) -> None:
        """The loop instance finished (normally or via break/return/throw)."""

    # -- functions -----------------------------------------------------------
    def on_function_enter(self, interp: Any, func: Any, call_node: Any) -> None:
        """A guest function call started."""

    def on_function_exit(self, interp: Any, func: Any) -> None:
        """A guest function call returned (or unwound)."""

    # -- environments and variables -------------------------------------------
    def on_env_created(self, interp: Any, env: Any, kind: str) -> None:
        """A new environment frame was created (``kind`` is 'function'/'block')."""

    def on_var_write(self, interp: Any, name: str, env: Any, value: Any, node: Any) -> None:
        """A variable binding was written."""

    def on_var_read(self, interp: Any, name: str, env: Any, node: Any) -> None:
        """A variable binding was read."""

    # -- objects and properties ------------------------------------------------
    def on_object_created(self, interp: Any, obj: Any, node: Any) -> None:
        """A guest object/array/function was instantiated."""

    def on_prop_write(self, interp: Any, obj: Any, name: str, value: Any, node: Any) -> None:
        """A property of a guest object was written."""

    def on_prop_read(self, interp: Any, obj: Any, name: str, node: Any) -> None:
        """A property of a guest object was read."""

    # -- control flow / host interaction ---------------------------------------
    def on_branch(self, interp: Any, node: Any, taken: bool) -> None:
        """A dynamically evaluated predicate selected a branch."""

    def on_host_access(self, interp: Any, category: str, detail: str, node: Any) -> None:
        """Guest code touched a host subsystem (``dom``, ``canvas``, ``timer``...)."""

    def on_statement(self, interp: Any, node: Any) -> None:
        """A statement is about to execute (used by sampling profilers)."""

    def on_recursion_warning(self, interp: Any, node: Any) -> None:
        """Recursive calls made the loop-characterization stack grow (Section 3.3)."""


class HookBus:
    """Dispatches interpreter events to the attached tracers.

    The bus exposes boolean fast-path flags (``wants_*``) so the interpreter
    can skip building event arguments entirely when no tracer cares about a
    given event class — this keeps the uninstrumented baseline fast, which is
    what the "minimal discernible impact" claims in Sections 3.1/3.2 rely on.
    """

    def __init__(self) -> None:
        self.tracers: List[Tracer] = []
        self._refresh_flags()

    def attach(self, tracer: Tracer) -> Tracer:
        self.tracers.append(tracer)
        self._refresh_flags()
        return tracer

    def detach(self, tracer: Tracer) -> None:
        if tracer in self.tracers:
            self.tracers.remove(tracer)
        self._refresh_flags()

    def clear(self) -> None:
        self.tracers.clear()
        self._refresh_flags()

    def _overrides(self, method_name: str) -> bool:
        return any(
            type(tracer).__dict__.get(method_name) is not None
            or getattr(type(tracer), method_name) is not getattr(Tracer, method_name)
            for tracer in self.tracers
        )

    def _refresh_flags(self) -> None:
        self.wants_loops = self._overrides("on_loop_enter") or self._overrides(
            "on_loop_iteration"
        ) or self._overrides("on_loop_exit")
        self.wants_functions = self._overrides("on_function_enter") or self._overrides(
            "on_function_exit"
        )
        self.wants_vars = self._overrides("on_var_write") or self._overrides("on_var_read")
        self.wants_props = self._overrides("on_prop_write") or self._overrides("on_prop_read")
        self.wants_objects = self._overrides("on_object_created")
        self.wants_envs = self._overrides("on_env_created")
        self.wants_branches = self._overrides("on_branch")
        self.wants_host = self._overrides("on_host_access")
        self.wants_statements = self._overrides("on_statement")
        self.any_tracer = bool(self.tracers)

    # -- dispatch helpers (thin wrappers; hot paths check the flags first) ----
    def loop_enter(self, interp, node) -> None:
        for tracer in self.tracers:
            tracer.on_loop_enter(interp, node)

    def loop_iteration(self, interp, node, iteration) -> None:
        for tracer in self.tracers:
            tracer.on_loop_iteration(interp, node, iteration)

    def loop_exit(self, interp, node, trip_count) -> None:
        for tracer in self.tracers:
            tracer.on_loop_exit(interp, node, trip_count)

    def function_enter(self, interp, func, call_node) -> None:
        for tracer in self.tracers:
            tracer.on_function_enter(interp, func, call_node)

    def function_exit(self, interp, func) -> None:
        for tracer in self.tracers:
            tracer.on_function_exit(interp, func)

    def env_created(self, interp, env, kind) -> None:
        for tracer in self.tracers:
            tracer.on_env_created(interp, env, kind)

    def var_write(self, interp, name, env, value, node) -> None:
        for tracer in self.tracers:
            tracer.on_var_write(interp, name, env, value, node)

    def var_read(self, interp, name, env, node) -> None:
        for tracer in self.tracers:
            tracer.on_var_read(interp, name, env, node)

    def object_created(self, interp, obj, node) -> None:
        for tracer in self.tracers:
            tracer.on_object_created(interp, obj, node)

    def prop_write(self, interp, obj, name, value, node) -> None:
        for tracer in self.tracers:
            tracer.on_prop_write(interp, obj, name, value, node)

    def prop_read(self, interp, obj, name, node) -> None:
        for tracer in self.tracers:
            tracer.on_prop_read(interp, obj, name, node)

    def branch(self, interp, node, taken) -> None:
        for tracer in self.tracers:
            tracer.on_branch(interp, node, taken)

    def host_access(self, interp, category, detail, node) -> None:
        for tracer in self.tracers:
            tracer.on_host_access(interp, category, detail, node)

    def statement(self, interp, node) -> None:
        for tracer in self.tracers:
            tracer.on_statement(interp, node)

    def recursion_warning(self, interp, node) -> None:
        for tracer in self.tracers:
            tracer.on_recursion_warning(interp, node)
