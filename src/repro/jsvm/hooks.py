"""Instrumentation hook bus for the mini-JavaScript interpreter.

JS-CERES (the paper's tool) instruments JavaScript *on the wire*, inserting
callbacks before/after loops, around iterations and on every variable or
property access.  In this reproduction the interpreter plays the role of the
instrumented engine: it emits the same events through a :class:`HookBus`, and
each JS-CERES instrumentation mode is implemented as a :class:`Tracer`
subscribed to the bus.

Keeping the three modes as separate tracers mirrors the staged design of the
paper (Section 3): lightweight profiling, loop profiling, and dependence
analysis are attached one at a time to keep instrumentation overhead from
biasing the measurements.

Event tiers
-----------

Every event class has a bit in a subscriber *mask* (``EV_*`` constants).  A
tracer declares the events it needs via :attr:`Tracer.EVENTS`; the bus ORs
the declarations of all attached tracers into :attr:`HookBus.mask` and pushes
the result into every bound interpreter (``interp.trace_mask``).  The
interpreter's compiled code consults that single integer once per construct,
so a run with zero tracers never builds event arguments or enters the bus at
all — the "minimal discernible impact" baseline of Sections 3.1/3.2.

Trace records (record-once / replay-many)
-----------------------------------------

The second half of this module decouples event *emission* from event
*analysis*: a :class:`TraceRecorder` is a tracer that captures every event of
a requested mask as one flat, typed tuple (interned node / name / object /
environment ids plus the virtual-clock stamp) into a versioned
:class:`Trace`, and a :class:`TraceReplayer` drives any ordinary
:class:`Tracer` from such a stream — producing payloads byte-identical to a
live run without re-executing the guest program.  Two invariants make this
sound, both established (and tested) in earlier PRs:

* tracers are **clock-neutral** — the virtual clock advances per interpreted
  operation regardless of the subscriber mask, so the stamps recorded under
  the union mask are exactly what any tracer subset would have observed live;
* per-event-class streams are **mask-independent** — enabling one event class
  never changes the content of another class's events, so a trace recorded
  with mask ``M`` replays any tracer whose mask is a subset of ``M``.

Schema version 1 deliberately elides guest *values* (the ``value`` argument
of write events): no shipped tracer consumes them, and eliding them keeps
records flat and serializable.  A recording may additionally *drop* whole
hook methods nobody will replay (e.g. ``on_var_read`` — every shipped tracer
subscribes to ``EV_VAR`` for the writes); the dropped method names are part
of the trace, and replay refuses a tracer that overrides one of them instead
of silently starving it.  Bump :data:`TRACE_SCHEMA_VERSION` if a future
revision changes record shapes or starts carrying values.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import logging
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

logger = logging.getLogger(__name__)

# -- event mask bits ----------------------------------------------------------
EV_LOOP = 1 << 0  #: loop enter / iteration / exit
EV_FUNCTION = 1 << 1  #: guest function enter / exit
EV_VAR = 1 << 2  #: variable reads and writes
EV_PROP = 1 << 3  #: property reads and writes
EV_OBJECT = 1 << 4  #: object / array / function instantiation
EV_ENV = 1 << 5  #: environment frame creation
EV_BRANCH = 1 << 6  #: dynamically evaluated predicates
EV_HOST = 1 << 7  #: DOM / canvas / timer host accesses
EV_STATEMENT = 1 << 8  #: statement-level sampling
EV_RECURSION = 1 << 9  #: loop-characterization recursion warnings

EV_ALL = (
    EV_LOOP
    | EV_FUNCTION
    | EV_VAR
    | EV_PROP
    | EV_OBJECT
    | EV_ENV
    | EV_BRANCH
    | EV_HOST
    | EV_STATEMENT
    | EV_RECURSION
)

#: hook-method name -> event bit, used to derive a mask for legacy tracers
#: that override methods without declaring :attr:`Tracer.EVENTS`.
_METHOD_EVENTS = {
    "on_loop_enter": EV_LOOP,
    "on_loop_iteration": EV_LOOP,
    "on_loop_exit": EV_LOOP,
    "on_function_enter": EV_FUNCTION,
    "on_function_exit": EV_FUNCTION,
    "on_env_created": EV_ENV,
    "on_var_write": EV_VAR,
    "on_var_read": EV_VAR,
    "on_object_created": EV_OBJECT,
    "on_prop_write": EV_PROP,
    "on_prop_read": EV_PROP,
    "on_branch": EV_BRANCH,
    "on_host_access": EV_HOST,
    "on_statement": EV_STATEMENT,
    "on_recursion_warning": EV_RECURSION,
}


class Tracer:
    """Base class with no-op implementations of every instrumentation event.

    Subclasses override only the events they need.  All callbacks receive the
    interpreter as the first argument so tracers can read the virtual clock or
    the current call stack without holding their own reference.

    Subclasses should declare the event classes they subscribe to in
    :attr:`EVENTS` (an OR of ``EV_*`` bits) so the bus can compute a minimal
    dispatch mask.  When ``EVENTS`` is ``None`` the bus falls back to
    inspecting which hook methods the subclass overrides.
    """

    #: OR of ``EV_*`` bits this tracer needs; ``None`` = derive from overrides.
    EVENTS: Optional[int] = None

    @classmethod
    def declared_events(cls) -> int:
        """The event mask this tracer subscribes to.

        The override-derived mask is always included, so a subclass that
        inherits an ``EVENTS`` declaration but overrides additional hook
        methods still receives those events.
        """
        mask = cls.EVENTS if cls.EVENTS is not None else 0
        for method_name, bit in _METHOD_EVENTS.items():
            if getattr(cls, method_name) is not getattr(Tracer, method_name):
                mask |= bit
        return mask

    def subscribed_events(self) -> int:
        """The mask *this instance* subscribes to.

        Defaults to the class-level :meth:`declared_events`;
        :class:`TraceRecorder` overrides it because its mask is a per-instance
        recording request, not a property of the class.
        """
        return type(self).declared_events()

    # -- loops ---------------------------------------------------------------
    def on_loop_enter(self, interp: Any, node: Any) -> None:
        """A syntactic loop was entered (a new runtime *instance* begins)."""

    def on_loop_iteration(self, interp: Any, node: Any, iteration: int) -> None:
        """A new iteration of the innermost open loop is about to run."""

    def on_loop_exit(self, interp: Any, node: Any, trip_count: int) -> None:
        """The loop instance finished (normally or via break/return/throw)."""

    # -- functions -----------------------------------------------------------
    def on_function_enter(self, interp: Any, func: Any, call_node: Any) -> None:
        """A guest function call started."""

    def on_function_exit(self, interp: Any, func: Any) -> None:
        """A guest function call returned (or unwound)."""

    # -- environments and variables -------------------------------------------
    def on_env_created(self, interp: Any, env: Any, kind: str) -> None:
        """A new environment frame was created (``kind`` is 'function'/'block')."""

    def on_var_write(self, interp: Any, name: str, env: Any, value: Any, node: Any) -> None:
        """A variable binding was written."""

    def on_var_read(self, interp: Any, name: str, env: Any, node: Any) -> None:
        """A variable binding was read."""

    # -- objects and properties ------------------------------------------------
    def on_object_created(self, interp: Any, obj: Any, node: Any) -> None:
        """A guest object/array/function was instantiated."""

    def on_prop_write(self, interp: Any, obj: Any, name: str, value: Any, node: Any) -> None:
        """A property of a guest object was written."""

    def on_prop_read(self, interp: Any, obj: Any, name: str, node: Any) -> None:
        """A property of a guest object was read."""

    # -- control flow / host interaction ---------------------------------------
    def on_branch(self, interp: Any, node: Any, taken: bool) -> None:
        """A dynamically evaluated predicate selected a branch."""

    def on_host_access(self, interp: Any, category: str, detail: str, node: Any) -> None:
        """Guest code touched a host subsystem (``dom``, ``canvas``, ``timer``...)."""

    def on_statement(self, interp: Any, node: Any) -> None:
        """A statement is about to execute (used by sampling profilers)."""

    def on_recursion_warning(self, interp: Any, node: Any) -> None:
        """Recursive calls made the loop-characterization stack grow (Section 3.3)."""


class HookBus:
    """Dispatches interpreter events to the attached tracers.

    The bus maintains a per-event subscriber :attr:`mask` (OR of the attached
    tracers' declared events) plus the boolean ``wants_*`` flags derived from
    it.  Interpreters :meth:`bind` themselves to the bus so that attaching or
    detaching a tracer immediately updates their cached ``trace_mask`` — the
    single integer the compiled execution core consults per construct.
    """

    def __init__(self) -> None:
        self.tracers: List[Tracer] = []
        self.mask = 0
        #: Weak references to bound interpreters: a bus outliving its
        #: interpreters (e.g. one bus reused across many sessions) must not
        #: keep their guest heaps alive.
        self._bound: List[Any] = []
        self._refresh_flags()

    def bind(self, interp: Any) -> None:
        """Register an interpreter whose ``trace_mask`` mirrors this bus."""
        import weakref

        self._bound = [ref for ref in self._bound if ref() is not None and ref() is not interp]
        self._bound.append(weakref.ref(interp))
        interp.trace_mask = self.mask

    def unbind(self, interp: Any) -> None:
        self._bound = [ref for ref in self._bound if ref() is not None and ref() is not interp]

    def attach(self, tracer: Tracer) -> Tracer:
        self.tracers.append(tracer)
        self._refresh_flags()
        return tracer

    def detach(self, tracer: Tracer) -> None:
        if tracer in self.tracers:
            self.tracers.remove(tracer)
        self._refresh_flags()

    def clear(self) -> None:
        self.tracers.clear()
        self._refresh_flags()

    def _refresh_flags(self) -> None:
        mask = 0
        for tracer in self.tracers:
            mask |= tracer.subscribed_events()
        self.mask = mask
        self.wants_loops = bool(mask & EV_LOOP)
        self.wants_functions = bool(mask & EV_FUNCTION)
        self.wants_vars = bool(mask & EV_VAR)
        self.wants_props = bool(mask & EV_PROP)
        self.wants_objects = bool(mask & EV_OBJECT)
        self.wants_envs = bool(mask & EV_ENV)
        self.wants_branches = bool(mask & EV_BRANCH)
        self.wants_host = bool(mask & EV_HOST)
        self.wants_statements = bool(mask & EV_STATEMENT)
        self.any_tracer = bool(self.tracers)
        alive = []
        for ref in self._bound:
            interp = ref()
            if interp is not None:
                interp.trace_mask = mask
                alive.append(ref)
        self._bound = alive

    # -- dispatch helpers (thin wrappers; hot paths check the mask first) ----
    def loop_enter(self, interp, node) -> None:
        for tracer in self.tracers:
            tracer.on_loop_enter(interp, node)

    def loop_iteration(self, interp, node, iteration) -> None:
        for tracer in self.tracers:
            tracer.on_loop_iteration(interp, node, iteration)

    def loop_exit(self, interp, node, trip_count) -> None:
        for tracer in self.tracers:
            tracer.on_loop_exit(interp, node, trip_count)

    def function_enter(self, interp, func, call_node) -> None:
        for tracer in self.tracers:
            tracer.on_function_enter(interp, func, call_node)

    def function_exit(self, interp, func) -> None:
        for tracer in self.tracers:
            tracer.on_function_exit(interp, func)

    def env_created(self, interp, env, kind) -> None:
        for tracer in self.tracers:
            tracer.on_env_created(interp, env, kind)

    def var_write(self, interp, name, env, value, node) -> None:
        for tracer in self.tracers:
            tracer.on_var_write(interp, name, env, value, node)

    def var_read(self, interp, name, env, node) -> None:
        for tracer in self.tracers:
            tracer.on_var_read(interp, name, env, node)

    def object_created(self, interp, obj, node) -> None:
        for tracer in self.tracers:
            tracer.on_object_created(interp, obj, node)

    def prop_write(self, interp, obj, name, value, node) -> None:
        for tracer in self.tracers:
            tracer.on_prop_write(interp, obj, name, value, node)

    def prop_read(self, interp, obj, name, node) -> None:
        for tracer in self.tracers:
            tracer.on_prop_read(interp, obj, name, node)

    def branch(self, interp, node, taken) -> None:
        for tracer in self.tracers:
            tracer.on_branch(interp, node, taken)

    def host_access(self, interp, category, detail, node) -> None:
        for tracer in self.tracers:
            tracer.on_host_access(interp, category, detail, node)

    def statement(self, interp, node) -> None:
        for tracer in self.tracers:
            tracer.on_statement(interp, node)

    def recursion_warning(self, interp, node) -> None:
        for tracer in self.tracers:
            tracer.on_recursion_warning(interp, node)


# ===========================================================================
# Trace-record schema (version 1)
# ===========================================================================

#: Version stamp of the trace-record schema; bump on any change to record
#: shapes, intern-table layouts or serialization.
TRACE_SCHEMA_VERSION = 1

#: Magic ``format`` marker of serialized traces.
TRACE_FORMAT = "repro-trace"

#: Magic ``format`` marker of chunked (streaming) trace files: an NDJSON
#: header line, one line per bounded chunk of events (with intern-table
#: *deltas*), and a trailing footer line.  A chunked file replays in O(chunk)
#: resident memory; :meth:`Trace.load` still assembles it whole on request.
TRACE_CHUNK_FORMAT = "repro-trace-chunks"

#: Policy knob: ``REPRO_STREAM_REPLAY=1`` makes every replay pull-based —
#: in-memory traces are walked chunk-at-a-time and analyzers run in their
#: incremental (per-nest eviction) modes.  Payloads are byte-identical to
#: batch replay; only the resident-memory profile changes.
STREAM_REPLAY_ENV_VAR = "REPRO_STREAM_REPLAY"

#: Override for the default events-per-chunk bound of chunked trace files.
TRACE_CHUNK_EVENTS_ENV_VAR = "REPRO_TRACE_CHUNK_EVENTS"

#: Default events-per-chunk bound: large enough that chunk framing is noise
#: (<1% of records), small enough that a chunk is a few MB resident.
DEFAULT_CHUNK_EVENTS = 65536

#: On-disk encoding knob: ``binary`` (the schema-v2 columnar container,
#: default) or ``json`` (the v1 JSON/NDJSON formats).  Readers sniff the
#: actual bytes — this knob only selects what new files are *written* as,
#: and every v1 file stays readable forever.
TRACE_ENCODING_ENV_VAR = "REPRO_TRACE_ENCODING"

#: The encoding written when neither the call site nor the env var says.
DEFAULT_TRACE_ENCODING = "binary"

_TRACE_ENCODINGS = ("binary", "json")

#: Env values already warned about (one warning per bad value per process —
#: these getters run on every write/stream and must not spam).
_warned_env_values = set()


def _warn_rejected_env(env_var: str, raw: str, fallback) -> None:
    key = (env_var, raw)
    if key in _warned_env_values:
        return
    _warned_env_values.add(key)
    logger.warning(
        "ignoring invalid %s=%r; using the default %r", env_var, raw, fallback
    )


def stream_replay_enabled() -> bool:
    """Whether the ``REPRO_STREAM_REPLAY`` policy knob forces streaming."""
    return os.environ.get(STREAM_REPLAY_ENV_VAR, "") == "1"


def stream_chunk_events() -> int:
    """The configured events-per-chunk bound for chunked trace files.

    An unset/empty env var silently picks the default; a *present but
    invalid* value (unparseable, or not a positive integer) is rejected with
    a one-time warning naming the value, then falls back to the default.
    """
    raw = os.environ.get(TRACE_CHUNK_EVENTS_ENV_VAR, "")
    if not raw:
        return DEFAULT_CHUNK_EVENTS
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value <= 0:
        _warn_rejected_env(TRACE_CHUNK_EVENTS_ENV_VAR, raw, DEFAULT_CHUNK_EVENTS)
        return DEFAULT_CHUNK_EVENTS
    return value


def trace_encoding() -> str:
    """The configured on-disk trace encoding (``binary`` or ``json``).

    Same contract as :func:`stream_chunk_events`: unset/empty is the silent
    default, an unrecognized value warns once and falls back.
    """
    raw = os.environ.get(TRACE_ENCODING_ENV_VAR, "")
    if not raw:
        return DEFAULT_TRACE_ENCODING
    value = raw.strip().lower()
    if value not in _TRACE_ENCODINGS:
        _warn_rejected_env(TRACE_ENCODING_ENV_VAR, raw, DEFAULT_TRACE_ENCODING)
        return DEFAULT_TRACE_ENCODING
    return value

# -- record opcodes (first element of every flat event tuple) ---------------
TR_LOOP_ENTER = 0  #: (op, clock_ms, node)
TR_LOOP_ITER = 1  #: (op, clock_ms, node, iteration)
TR_LOOP_EXIT = 2  #: (op, clock_ms, node, trip_count)
TR_FUNC_ENTER = 3  #: (op, clock_ms, obj, call_node)
TR_FUNC_EXIT = 4  #: (op, clock_ms, obj)
TR_ENV_CREATED = 5  #: (op, clock_ms, env, kind_str)
TR_VAR_WRITE = 6  #: (op, clock_ms, name_str, env, node)
TR_VAR_READ = 7  #: (op, clock_ms, name_str, env, node)
TR_OBJ_CREATED = 8  #: (op, clock_ms, obj, node)
TR_PROP_WRITE = 9  #: (op, clock_ms, obj, name_str, node)
TR_PROP_READ = 10  #: (op, clock_ms, obj, name_str, node)
TR_BRANCH = 11  #: (op, clock_ms, node, taken)
TR_HOST = 12  #: (op, clock_ms, category_str, detail_str, node)
TR_STATEMENT = 13  #: (op, clock_ms, node)
TR_RECURSION = 14  #: (op, clock_ms, node)

#: opcode -> the ``EV_*`` class it belongs to.
TRACE_OP_EVENTS = {
    TR_LOOP_ENTER: EV_LOOP,
    TR_LOOP_ITER: EV_LOOP,
    TR_LOOP_EXIT: EV_LOOP,
    TR_FUNC_ENTER: EV_FUNCTION,
    TR_FUNC_EXIT: EV_FUNCTION,
    TR_ENV_CREATED: EV_ENV,
    TR_VAR_WRITE: EV_VAR,
    TR_VAR_READ: EV_VAR,
    TR_OBJ_CREATED: EV_OBJECT,
    TR_PROP_WRITE: EV_PROP,
    TR_PROP_READ: EV_PROP,
    TR_BRANCH: EV_BRANCH,
    TR_HOST: EV_HOST,
    TR_STATEMENT: EV_STATEMENT,
    TR_RECURSION: EV_RECURSION,
}

#: opcode -> short human name (``trace info`` and diagnostics).
TRACE_OP_NAMES = {
    TR_LOOP_ENTER: "loop_enter",
    TR_LOOP_ITER: "loop_iteration",
    TR_LOOP_EXIT: "loop_exit",
    TR_FUNC_ENTER: "function_enter",
    TR_FUNC_EXIT: "function_exit",
    TR_ENV_CREATED: "env_created",
    TR_VAR_WRITE: "var_write",
    TR_VAR_READ: "var_read",
    TR_OBJ_CREATED: "object_created",
    TR_PROP_WRITE: "prop_write",
    TR_PROP_READ: "prop_read",
    TR_BRANCH: "branch",
    TR_HOST: "host_access",
    TR_STATEMENT: "statement",
    TR_RECURSION: "recursion_warning",
}

#: ``EV_*`` bit -> name, for rendering masks.
EVENT_BIT_NAMES = {
    EV_LOOP: "loop",
    EV_FUNCTION: "function",
    EV_VAR: "var",
    EV_PROP: "prop",
    EV_OBJECT: "object",
    EV_ENV: "env",
    EV_BRANCH: "branch",
    EV_HOST: "host",
    EV_STATEMENT: "statement",
    EV_RECURSION: "recursion",
}


def describe_mask(mask: int) -> str:
    """Render an event mask as ``loop|var|prop`` (``-`` for the empty mask)."""
    names = [name for bit, name in EVENT_BIT_NAMES.items() if mask & bit]
    return "|".join(names) if names else "-"


#: opcode -> the hook-method name whose records it carries.
TRACE_OP_METHODS = {
    TR_LOOP_ENTER: "on_loop_enter",
    TR_LOOP_ITER: "on_loop_iteration",
    TR_LOOP_EXIT: "on_loop_exit",
    TR_FUNC_ENTER: "on_function_enter",
    TR_FUNC_EXIT: "on_function_exit",
    TR_ENV_CREATED: "on_env_created",
    TR_VAR_WRITE: "on_var_write",
    TR_VAR_READ: "on_var_read",
    TR_OBJ_CREATED: "on_object_created",
    TR_PROP_WRITE: "on_prop_write",
    TR_PROP_READ: "on_prop_read",
    TR_BRANCH: "on_branch",
    TR_HOST: "on_host_access",
    TR_STATEMENT: "on_statement",
    TR_RECURSION: "on_recursion_warning",
}


def unhandled_hook_methods(tracer_classes) -> tuple:
    """Hook-method names that none of ``tracer_classes`` overrides.

    A recording destined only for these classes can drop those methods'
    records (``TraceRecorder(drop_methods=...)``): the replayer would have
    dispatched them to base-class no-ops anyway, and the drop is declared in
    the trace so replaying any *other* tracer stays safe.
    """
    dropped = []
    for method_name in _METHOD_EVENTS:
        if not any(
            getattr(cls, method_name) is not getattr(Tracer, method_name)
            for cls in tracer_classes
        ):
            dropped.append(method_name)
    return tuple(sorted(dropped))


# -- object-intern kinds -----------------------------------------------------
_OBJ_PLAIN = 0  #: a guest ``JSObject`` (including subclass instances)
_OBJ_ARRAY = 1  #: a guest ``JSArray``
_OBJ_CALLABLE = 2  #: a guest function (``JSFunction`` / ``NativeFunction``)
_OBJ_OPAQUE = 3  #: defensive: a non-JSObject event payload


class TraceError(Exception):
    """Base class for trace-layer failures."""


class TraceFormatError(TraceError):
    """The serialized trace is truncated, corrupt, or not a trace at all."""


class TraceVersionError(TraceError):
    """The trace was recorded with an unsupported schema version."""


class TraceMaskError(TraceError):
    """The trace's recorded mask does not cover the requested tracers."""


class TraceMismatchError(TraceError):
    """The trace belongs to a different workload (fingerprint mismatch)."""


@dataclass
class Trace:
    """One recorded event stream plus its intern tables and provenance.

    Everything in here is JSON-native (ints, floats, strings, flat lists), so
    a trace can be pickled to a fan-out worker, written to disk, or shipped to
    another machine, and replayed there without the guest program.
    """

    #: Reported by ``trace info`` for legacy single-JSON files (unannotated:
    #: a class attribute, not a dataclass field).
    encoding = "json"

    mask: int
    workload: str = ""
    fingerprint: str = ""
    ms_per_op: float = 0.02
    start_ms: float = 0.0
    end_ms: float = 0.0
    version: int = TRACE_SCHEMA_VERSION
    #: Interned strings (names, property keys, env kinds, host categories).
    strings: List[str] = field(default_factory=list)
    #: Interned AST nodes: ``[node_id, line, kind_string_index]`` per entry.
    nodes: List[List[int]] = field(default_factory=list)
    #: Interned guest objects: ``[kind, class_name_index, creation_site,
    #: name_index]`` per entry (``name_index`` is -1 for non-callables).
    objects: List[List[int]] = field(default_factory=list)
    #: Number of distinct environment frames observed (environments carry no
    #: replay-relevant state beyond identity).
    env_count: int = 0
    #: Hook-method names whose records were deliberately not captured (the
    #: recording was destined for tracers that never override them).  Replay
    #: refuses a tracer overriding any of these.
    dropped: tuple = ()
    #: The flat event records, in emission order.
    events: List[tuple] = field(default_factory=list)

    # ------------------------------------------------------------- identity
    def digest(self) -> str:
        """Stable content hash of the full trace (schema + tables + events).

        Traces are immutable once recorded, so the hash (an O(events) pass)
        is computed once and cached.
        """
        cached = getattr(self, "_digest_cache", None)
        if cached is not None:
            return cached
        hasher = hashlib.sha256()
        hasher.update(
            f"{self.version}\x00{self.mask}\x00{self.workload}\x00{self.fingerprint}"
            f"\x00{self.ms_per_op!r}\x00{self.start_ms!r}\x00{self.end_ms!r}"
            f"\x00{self.env_count}\x00{','.join(self.dropped)}".encode("utf-8")
        )
        for string in self.strings:
            hasher.update(b"\x00s")
            hasher.update(string.encode("utf-8"))
        for table in (self.nodes, self.objects):
            for entry in table:
                hasher.update(("\x00t" + ",".join(map(repr, entry))).encode("utf-8"))
        for record in self.events:
            hasher.update(("\x00e" + ",".join(map(repr, record))).encode("utf-8"))
        self._digest_cache = hasher.hexdigest()
        return self._digest_cache

    def event_counts(self) -> Dict[str, int]:
        """Record count per event name (``trace info``)."""
        counts: Dict[str, int] = {}
        for record in self.events:
            name = TRACE_OP_NAMES.get(record[0], f"op{record[0]}")
            counts[name] = counts.get(name, 0) + 1
        return counts

    def covers(self, required_mask: int) -> bool:
        """True when this trace can replay tracers needing ``required_mask``."""
        return not (required_mask & ~self.mask)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": TRACE_FORMAT,
            "version": self.version,
            "mask": self.mask,
            "workload": self.workload,
            "fingerprint": self.fingerprint,
            "ms_per_op": self.ms_per_op,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "env_count": self.env_count,
            "dropped": list(self.dropped),
            "strings": list(self.strings),
            "nodes": [list(entry) for entry in self.nodes],
            "objects": [list(entry) for entry in self.objects],
            "events": [list(record) for record in self.events],
        }

    @classmethod
    def from_dict(cls, data: Any) -> "Trace":
        if not isinstance(data, dict) or data.get("format") != TRACE_FORMAT:
            raise TraceFormatError(
                "not a repro trace (missing the 'format': 'repro-trace' marker)"
            )
        version = data.get("version")
        if version != TRACE_SCHEMA_VERSION:
            raise TraceVersionError(
                f"unsupported trace schema version {version!r} "
                f"(this build reads version {TRACE_SCHEMA_VERSION})"
            )
        try:
            trace = cls(
                mask=int(data["mask"]),
                workload=str(data["workload"]),
                fingerprint=str(data["fingerprint"]),
                ms_per_op=float(data["ms_per_op"]),
                start_ms=float(data["start_ms"]),
                end_ms=float(data["end_ms"]),
                env_count=int(data["env_count"]),
                dropped=tuple(data.get("dropped", ())),
                strings=list(data["strings"]),
                nodes=[list(entry) for entry in data["nodes"]],
                objects=[list(entry) for entry in data["objects"]],
                events=[tuple(record) for record in data["events"]],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed trace payload: {exc}") from exc
        trace.validate_events()
        return trace

    #: opcode -> (arity, positions of node indexes (may be -1), positions of
    #: object indexes, positions of env indexes, positions of string indexes).
    _RECORD_LAYOUT = {
        TR_LOOP_ENTER: (3, (2,), (), (), ()),
        TR_LOOP_ITER: (4, (2,), (), (), ()),
        TR_LOOP_EXIT: (4, (2,), (), (), ()),
        TR_FUNC_ENTER: (4, (3,), (2,), (), ()),
        TR_FUNC_EXIT: (3, (), (2,), (), ()),
        TR_ENV_CREATED: (4, (), (), (2,), (3,)),
        TR_VAR_WRITE: (5, (4,), (), (3,), (2,)),
        TR_VAR_READ: (5, (4,), (), (3,), (2,)),
        TR_OBJ_CREATED: (4, (3,), (2,), (), ()),
        TR_PROP_WRITE: (5, (4,), (2,), (), (3,)),
        TR_PROP_READ: (5, (4,), (2,), (), (3,)),
        TR_BRANCH: (4, (2,), (), (), ()),
        TR_HOST: (5, (4,), (), (), (2, 3)),
        TR_STATEMENT: (3, (2,), (), (), ()),
        TR_RECURSION: (3, (2,), (), (), ()),
    }

    def validate_events(self) -> None:
        """Check every record's shape and intern-table indexes.

        A corrupt or hand-edited trace must fail loudly here — out-of-range
        indexes would otherwise surface as bare ``IndexError`` mid-replay,
        and *negative* indexes would silently alias the wrong interned entry
        through Python's negative indexing.
        """
        _validate_records(
            self.events,
            len(self.strings),
            len(self.nodes),
            len(self.objects),
            self.env_count,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        try:
            data = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TraceFormatError(f"trace file is truncated or corrupt: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        """Write the trace to ``path`` (gzip-compressed when it ends in .gz)."""
        text = self.to_json() + "\n"
        if str(path).endswith(".gz"):
            with gzip.open(path, "wt", encoding="utf-8") as handle:
                handle.write(text)
        else:
            with io.open(path, "w", encoding="utf-8") as handle:
                handle.write(text)

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Materialize a trace from ``path`` — legacy single-JSON or chunked."""
        source = open_trace_source(path)
        if isinstance(source, cls):
            return source
        return source.load()

    # ------------------------------------------------------------- streaming
    def chunks(self, chunk_events: Optional[int] = None) -> Iterator["TraceChunk"]:
        """The chunk-iteration protocol over an in-memory trace.

        The first chunk carries the full intern tables (they are resident on
        this object anyway); later chunks carry events only.  This is what a
        forced-streaming replay (:data:`STREAM_REPLAY_ENV_VAR`) walks, so the
        streamed dispatch path is exercised even for memory-resident traces.
        """
        if chunk_events is None:
            chunk_events = stream_chunk_events()
        total = len(self.events)
        if total == 0:
            yield TraceChunk(
                0, self.strings, self.nodes, self.objects, self.env_count, []
            )
            return
        for index, start in enumerate(range(0, total, chunk_events)):
            if index == 0:
                yield TraceChunk(
                    0,
                    self.strings,
                    self.nodes,
                    self.objects,
                    self.env_count,
                    self.events[start : start + chunk_events],
                )
            else:
                yield TraceChunk(
                    index, (), (), (), 0, self.events[start : start + chunk_events]
                )


def _validate_records(
    events,
    string_count: int,
    node_count: int,
    object_count: int,
    env_count: int,
) -> None:
    """Validate record shapes and intern indexes against table sizes.

    Shared by :meth:`Trace.validate_events` (whole trace at once) and the
    chunked readers (per chunk, against *cumulative* table sizes — an event
    may only reference interned entries already streamed).
    """
    layouts = Trace._RECORD_LAYOUT
    for record in events:
        layout = layouts.get(record[0]) if record else None
        if layout is None or len(record) != layout[0]:
            raise TraceFormatError(f"malformed trace record: {record!r}")
        _arity, node_at, obj_at, env_at, string_at = layout
        try:
            for position in node_at:
                index = record[position]
                if not -1 <= index < node_count:
                    raise TraceFormatError(
                        f"node index {index} out of range in record {record!r}"
                    )
            for position in obj_at:
                index = record[position]
                if not 0 <= index < object_count:
                    raise TraceFormatError(
                        f"object index {index} out of range in record {record!r}"
                    )
            for position in env_at:
                index = record[position]
                if not 0 <= index < env_count:
                    raise TraceFormatError(
                        f"environment index {index} out of range in record {record!r}"
                    )
            for position in string_at:
                index = record[position]
                if not 0 <= index < string_count:
                    raise TraceFormatError(
                        f"string index {index} out of range in record {record!r}"
                    )
        except TypeError as exc:
            raise TraceFormatError(f"malformed trace record: {record!r}") from exc


class TraceChunk:
    """One bounded slice of a trace: intern-table deltas plus event records.

    A chunk's events may only reference interned entries carried by this or
    an *earlier* chunk — that is the invariant that makes chunk-at-a-time
    replay possible without the full tables resident.
    """

    __slots__ = ("index", "strings", "nodes", "objects", "env_delta", "events")

    def __init__(self, index, strings, nodes, objects, env_delta, events) -> None:
        self.index = index
        self.strings = strings
        self.nodes = nodes
        self.objects = objects
        self.env_delta = env_delta
        self.events = events


def _open_trace_text(path: str, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return io.open(path, mode, encoding="utf-8")


def _chunk_deltas(trace: Trace, chunk_events: int):
    """Split ``trace`` into chunk-sized event batches with intern deltas.

    Yields ``(batch, strings, nodes, objects, env_delta)`` per chunk, where
    the table slices cover exactly the entries the batch first references
    (the streaming invariant), and the *last* chunk tops up every table so
    reassembly reproduces the original trace — and its digest — exactly,
    even for entries no event happens to reference.  Shared by the NDJSON
    and binary writers so both emit identical chunk boundaries and deltas.
    """
    events = trace.events
    total_strings = len(trace.strings)
    total_nodes = len(trace.nodes)
    total_objects = len(trace.objects)
    total_envs = trace.env_count
    layouts = Trace._RECORD_LAYOUT
    starts = list(range(0, len(events), chunk_events)) or [0]
    chunk_count = len(starts)
    sent_strings = sent_nodes = sent_objects = sent_envs = 0
    for chunk_index, start in enumerate(starts):
        batch = events[start : start + chunk_events]
        if chunk_index == chunk_count - 1:
            need_strings, need_nodes = total_strings, total_nodes
            need_objects, need_envs = total_objects, total_envs
        else:
            need_strings, need_nodes = sent_strings, sent_nodes
            need_objects, need_envs = sent_objects, sent_envs
            for record in batch:
                _arity, node_at, obj_at, env_at, string_at = layouts[record[0]]
                for position in node_at:
                    if record[position] >= need_nodes:
                        need_nodes = record[position] + 1
                for position in obj_at:
                    if record[position] >= need_objects:
                        need_objects = record[position] + 1
                for position in env_at:
                    if record[position] >= need_envs:
                        need_envs = record[position] + 1
                for position in string_at:
                    if record[position] >= need_strings:
                        need_strings = record[position] + 1
            # Newly shipped table entries reference strings of their own
            # (node kinds, object class/function names).
            for entry in trace.nodes[sent_nodes:need_nodes]:
                if entry[2] >= need_strings:
                    need_strings = entry[2] + 1
            for entry in trace.objects[sent_objects:need_objects]:
                if entry[1] >= need_strings:
                    need_strings = entry[1] + 1
                if entry[3] >= need_strings:
                    need_strings = entry[3] + 1
        yield (
            batch,
            trace.strings[sent_strings:need_strings],
            trace.nodes[sent_nodes:need_nodes],
            trace.objects[sent_objects:need_objects],
            need_envs - sent_envs,
        )
        sent_strings, sent_nodes = need_strings, need_nodes
        sent_objects, sent_envs = need_objects, need_envs


class TraceWriter:
    """Writes traces to disk, splitting long event streams into chunks.

    Short traces (at most one chunk of events) are written in the legacy
    single-JSON :meth:`Trace.save` format byte-for-byte, so every existing
    consumer of one-chunk files keeps working.  Longer traces become an
    NDJSON stream: a header line carrying the trace provenance (including the
    full-content digest), one line per bounded chunk whose intern-table
    *deltas* cover exactly the entries its events first reference, and a
    footer line asserting the chunk and event totals.
    """

    @classmethod
    def write_trace(
        cls,
        trace: Trace,
        path: str,
        chunk_events: Optional[int] = None,
        encoding: Optional[str] = None,
    ) -> int:
        """Write ``trace`` to ``path``; returns the number of chunks written.

        ``encoding`` is ``"binary"`` (the schema-v2 columnar container) or
        ``"json"`` (the v1 formats); ``None`` defers to the
        :data:`TRACE_ENCODING_ENV_VAR` knob, whose default is binary.  In the
        json encoding a return value of 1 means the legacy single-JSON format
        was used (byte-compatible with :meth:`Trace.save`).
        """
        if encoding is None:
            encoding = trace_encoding()
        if encoding not in _TRACE_ENCODINGS:
            raise ValueError(
                f"unknown trace encoding {encoding!r}; expected one of "
                f"{_TRACE_ENCODINGS}"
            )
        if chunk_events is None:
            chunk_events = stream_chunk_events()
        if encoding == "binary":
            from .tracecodec import write_binary_trace

            return write_binary_trace(trace, path, chunk_events=chunk_events)
        events = trace.events
        if chunk_events <= 0 or len(events) <= chunk_events:
            trace.save(path)
            return 1
        header = {
            "format": TRACE_CHUNK_FORMAT,
            "version": trace.version,
            "mask": trace.mask,
            "workload": trace.workload,
            "fingerprint": trace.fingerprint,
            "ms_per_op": trace.ms_per_op,
            "start_ms": trace.start_ms,
            "end_ms": trace.end_ms,
            "env_count": trace.env_count,
            "dropped": list(trace.dropped),
            "digest": trace.digest(),
            "events": len(events),
            "chunk_events": chunk_events,
        }
        chunk_count = len(range(0, len(events), chunk_events))
        with _open_trace_text(path, "w") as handle:
            handle.write(json.dumps(header, separators=(",", ":")) + "\n")
            for chunk_index, (batch, strings, nodes, objects, env_delta) in enumerate(
                _chunk_deltas(trace, chunk_events)
            ):
                payload = {
                    "chunk": chunk_index,
                    "strings": strings,
                    "nodes": [list(e) for e in nodes],
                    "objects": [list(e) for e in objects],
                    "envs": env_delta,
                    "events": [list(r) for r in batch],
                }
                handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
            footer = {"end": True, "chunks": chunk_count, "events": len(events)}
            handle.write(json.dumps(footer, separators=(",", ":")) + "\n")
        return chunk_count


class TraceFileSource:
    """A pull-based handle on a chunked trace file: header resident, events
    streamed.

    Exposes the same provenance surface as :class:`Trace` (``mask``,
    ``workload``, ``fingerprint``, clock bounds, ``dropped``, ``covers``,
    ``digest``) from the header alone, so replay admission checks and result
    provenance never need the event stream.  :meth:`chunks` is re-iterable —
    every call reopens the file — and validates sequence numbers, intern
    deltas and per-record indexes as it goes; any truncation or corruption
    raises :class:`TraceFormatError`, never a partial stream.
    """

    #: Reported by ``trace info``: the v1 chunked-NDJSON text encoding.
    encoding = "json-chunks"

    def __init__(self, path: str, header: Any) -> None:
        self.path = str(path)
        if not isinstance(header, dict) or header.get("format") != TRACE_CHUNK_FORMAT:
            raise TraceFormatError(
                "not a chunked repro trace (missing the "
                f"'format': {TRACE_CHUNK_FORMAT!r} marker)"
            )
        version = header.get("version")
        if version != TRACE_SCHEMA_VERSION:
            raise TraceVersionError(
                f"unsupported trace schema version {version!r} "
                f"(this build reads version {TRACE_SCHEMA_VERSION})"
            )
        try:
            self.version = int(version)
            self.mask = int(header["mask"])
            self.workload = str(header["workload"])
            self.fingerprint = str(header["fingerprint"])
            self.ms_per_op = float(header["ms_per_op"])
            self.start_ms = float(header["start_ms"])
            self.end_ms = float(header["end_ms"])
            self.env_count = int(header["env_count"])
            self.dropped = tuple(header.get("dropped", ()))
            self.event_count = int(header["events"])
            self.chunk_events = int(header["chunk_events"])
            self._digest = str(header["digest"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed chunked trace header: {exc}") from exc

    # ------------------------------------------------------------- identity
    def covers(self, required_mask: int) -> bool:
        return not (required_mask & ~self.mask)

    def digest(self) -> str:
        """The full-content digest recorded in the header."""
        return self._digest

    def chunk_count(self) -> int:
        """Number of chunks in the file (one validating streaming pass —
        the NDJSON header does not carry the count)."""
        return sum(1 for _ in self.chunks())

    # ------------------------------------------------------------- streaming
    def chunks(self) -> Iterator[TraceChunk]:
        """Stream validated chunks from the file; O(chunk) resident."""
        try:
            with _open_trace_text(self.path, "r") as handle:
                if not handle.readline():
                    raise TraceFormatError(f"chunked trace {self.path!r} is empty")
                seen_strings = seen_nodes = seen_objects = seen_envs = 0
                next_index = 0
                total_events = 0
                while True:
                    line = handle.readline()
                    if not line:
                        raise TraceFormatError(
                            f"chunked trace {self.path!r} is truncated "
                            "(missing footer)"
                        )
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise TraceFormatError(
                            f"chunked trace {self.path!r} is truncated or "
                            f"corrupt: {exc}"
                        ) from exc
                    if not isinstance(data, dict):
                        raise TraceFormatError(
                            f"malformed trace chunk line: {line[:80]!r}"
                        )
                    if data.get("end"):
                        if (
                            data.get("chunks") != next_index
                            or data.get("events") != total_events
                        ):
                            raise TraceFormatError(
                                f"chunked trace {self.path!r} footer does not "
                                "match the streamed content"
                            )
                        if total_events != self.event_count:
                            raise TraceFormatError(
                                f"chunked trace {self.path!r} header promises "
                                f"{self.event_count} events but the stream "
                                f"holds {total_events}"
                            )
                        if seen_envs != self.env_count:
                            raise TraceFormatError(
                                f"chunked trace {self.path!r} environment "
                                "deltas do not sum to the header count"
                            )
                        return
                    chunk = self._decode_chunk(
                        data,
                        next_index,
                        seen_strings,
                        seen_nodes,
                        seen_objects,
                        seen_envs,
                    )
                    seen_strings += len(chunk.strings)
                    seen_nodes += len(chunk.nodes)
                    seen_objects += len(chunk.objects)
                    seen_envs += chunk.env_delta
                    total_events += len(chunk.events)
                    yield chunk
                    next_index += 1
        except OSError as exc:
            raise TraceFormatError(
                f"cannot read trace file {self.path!r}: {exc}"
            ) from exc
        except (EOFError, zlib.error, UnicodeDecodeError) as exc:
            raise TraceFormatError(
                f"chunked trace {self.path!r} is truncated or corrupt: {exc}"
            ) from exc

    def _decode_chunk(
        self,
        data: dict,
        expect_index: int,
        seen_strings: int,
        seen_nodes: int,
        seen_objects: int,
        seen_envs: int,
    ) -> TraceChunk:
        try:
            index = int(data["chunk"])
            strings = [str(s) for s in data.get("strings", ())]
            nodes = [list(e) for e in data.get("nodes", ())]
            objects = [list(e) for e in data.get("objects", ())]
            env_delta = int(data.get("envs", 0))
            events = [tuple(r) for r in data.get("events", ())]
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed trace chunk: {exc}") from exc
        if index != expect_index:
            raise TraceFormatError(
                f"chunk sequence broken in {self.path!r}: expected chunk "
                f"{expect_index}, got {index!r}"
            )
        if env_delta < 0:
            raise TraceFormatError("negative environment delta in trace chunk")
        string_count = seen_strings + len(strings)
        node_count = seen_nodes + len(nodes)
        object_count = seen_objects + len(objects)
        env_count = seen_envs + env_delta
        try:
            for entry in nodes:
                if len(entry) != 3 or not 0 <= entry[2] < string_count:
                    raise TraceFormatError(f"malformed node entry: {entry!r}")
            for entry in objects:
                if (
                    len(entry) != 4
                    or not 0 <= entry[1] < string_count
                    or not -1 <= entry[3] < string_count
                ):
                    raise TraceFormatError(f"malformed object entry: {entry!r}")
        except TypeError as exc:
            raise TraceFormatError(f"malformed trace intern table: {exc}") from exc
        _validate_records(events, string_count, node_count, object_count, env_count)
        return TraceChunk(index, strings, nodes, objects, env_delta, events)

    # ------------------------------------------------------------ whole-file
    def verify(self) -> "TraceFileSource":
        """Scan every chunk (bounded memory), raising on any corruption."""
        for _ in self.chunks():
            pass
        return self

    def load(self) -> Trace:
        """Materialize the full :class:`Trace`, checking the header digest."""
        trace = Trace(
            mask=self.mask,
            workload=self.workload,
            fingerprint=self.fingerprint,
            ms_per_op=self.ms_per_op,
            start_ms=self.start_ms,
            end_ms=self.end_ms,
            version=self.version,
            env_count=self.env_count,
            dropped=self.dropped,
        )
        for chunk in self.chunks():
            trace.strings.extend(chunk.strings)
            trace.nodes.extend(chunk.nodes)
            trace.objects.extend(chunk.objects)
            trace.events.extend(chunk.events)
        if trace.digest() != self._digest:
            raise TraceFormatError(
                f"chunked trace {self.path!r} content does not match its "
                "header digest"
            )
        return trace

    def event_counts(self) -> Dict[str, int]:
        """Record count per event name, streamed (``trace info``)."""
        counts: Dict[str, int] = {}
        for chunk in self.chunks():
            for record in chunk.events:
                name = TRACE_OP_NAMES.get(record[0], f"op{record[0]}")
                counts[name] = counts.get(name, 0) + 1
        return counts

    def table_counts(self) -> Dict[str, int]:
        """Intern-table sizes, accumulated in one streaming pass."""
        strings = nodes = objects = 0
        for chunk in self.chunks():
            strings += len(chunk.strings)
            nodes += len(chunk.nodes)
            objects += len(chunk.objects)
        return {"strings": strings, "nodes": nodes, "objects": objects}


def open_trace_source(path: str):
    """Open a trace file as the cheapest faithful handle.

    The format is sniffed from the leading bytes, never from the file name:
    schema-v2 binary files (optionally gzip-wrapped) return an mmap-backed
    :class:`~repro.jsvm.tracecodec.BinaryTraceSource`, legacy single-JSON
    files materialize a full :class:`Trace`, and chunked NDJSON files return
    a :class:`TraceFileSource` whose events stream on demand.  All satisfy
    the replay-source protocol (:class:`TraceReplayer` accepts any of them).
    """
    path = str(path)
    try:
        with io.open(path, "rb") as raw_handle:
            head = raw_handle.read(8)
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file {path!r}: {exc}") from exc
    from .tracecodec import BINARY_MAGIC, BinaryTraceSource

    if head == BINARY_MAGIC:
        return BinaryTraceSource(path)
    if head[:2] == b"\x1f\x8b":
        # Gzip container: peek at the decompressed head — a gzip-wrapped
        # binary trace must inflate whole (offsets address the logical
        # stream), text formats fall through to the line reader below.
        try:
            with gzip.open(path, "rb") as gz_handle:
                inner_head = gz_handle.read(8)
                if inner_head == BINARY_MAGIC:
                    payload = inner_head + gz_handle.read()
                    return BinaryTraceSource.from_bytes(payload, path=path)
        except OSError as exc:
            raise TraceFormatError(
                f"cannot read trace file {path!r}: {exc}"
            ) from exc
        except (EOFError, zlib.error) as exc:
            raise TraceFormatError(
                f"trace file {path!r} is truncated or corrupt: {exc}"
            ) from exc
    try:
        with _open_trace_text(path, "r") as handle:
            first = handle.readline()
            try:
                data = json.loads(first)
            except json.JSONDecodeError:
                data = None
            if isinstance(data, dict) and data.get("format") == TRACE_CHUNK_FORMAT:
                return TraceFileSource(path, data)
            if isinstance(data, dict):
                return Trace.from_dict(data)
            # Not a single-line document (e.g. pretty-printed JSON): fall
            # back to reading it whole.
            rest = handle.read()
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file {path!r}: {exc}") from exc
    except (EOFError, zlib.error, UnicodeDecodeError) as exc:
        raise TraceFormatError(
            f"trace file {path!r} is truncated or corrupt: {exc}"
        ) from exc
    return Trace.from_json(first + rest)


def _ignore_event(*_args, **_kwargs) -> None:
    """Instance-level shadow for a recorder hook named in ``drop_methods``."""


class TraceRecorder(Tracer):
    """Captures the requested event mask as a :class:`Trace`, in one run.

    The recorder is an ordinary bus tracer: attach it (alone, or alongside
    live tracers) and execute the workload once.  Its per-instance ``mask``
    is the *recording request* — typically the union of every analysis mode
    that will ever replay the trace — and is what :meth:`subscribed_events`
    reports to the bus, so the interpreter emits exactly that superset.

    Identity bookkeeping: nodes, environments and guest objects are interned
    by Python identity, and strong references are retained for the recorder's
    lifetime so CPython cannot recycle an ``id()`` mid-run and silently merge
    two distinct guests (the same discipline
    :class:`~repro.ceres.dependence.DependenceAnalyzer` uses).
    """

    def __init__(
        self,
        mask: int = EV_ALL,
        workload: str = "",
        fingerprint: str = "",
        ms_per_op: float = 0.02,
        drop_methods: tuple = (),
    ) -> None:
        self.mask = mask
        self.workload = workload
        self.fingerprint = fingerprint
        self.ms_per_op = ms_per_op
        self.dropped = tuple(sorted(drop_methods))
        unknown = [name for name in self.dropped if name not in _METHOD_EVENTS]
        if unknown:
            raise ValueError(f"unknown hook method(s) in drop_methods: {unknown}")
        # Dropped hooks are shadowed by an instance-level no-op, so they cost
        # nothing per event and the kept hooks pay no membership check.
        for method_name in self.dropped:
            setattr(self, method_name, _ignore_event)
        self.start_ms = 0.0
        self.end_ms = 0.0
        self.events: List[tuple] = []
        self._strings: List[str] = []
        self._string_index: Dict[str, int] = {}
        self._nodes: List[List[int]] = []
        self._node_index: Dict[int, int] = {}
        self._objects: List[List[int]] = []
        self._object_index: Dict[int, int] = {}
        self._env_index: Dict[int, int] = {}
        self._retained: List[Any] = []

    def subscribed_events(self) -> int:
        return self.mask

    # ------------------------------------------------------------ lifecycle
    def mark_start(self, clock) -> None:
        """Stamp the moment live tracers would observe ``start`` (pre-load)."""
        self.start_ms = clock.now()

    def mark_end(self, clock) -> None:
        """Stamp the final clock reading (post-exercise)."""
        self.end_ms = clock.now()

    def trace(self) -> Trace:
        """The recorded :class:`Trace` (tables are shared, not copied)."""
        return Trace(
            mask=self.mask,
            workload=self.workload,
            fingerprint=self.fingerprint,
            ms_per_op=self.ms_per_op,
            start_ms=self.start_ms,
            end_ms=self.end_ms,
            dropped=self.dropped,
            strings=self._strings,
            nodes=self._nodes,
            objects=self._objects,
            env_count=len(self._env_index),
            events=self.events,
        )

    # ------------------------------------------------------------ interning
    def _string(self, value: Optional[str]) -> int:
        if value is None:
            value = ""
        index = self._string_index.get(value)
        if index is None:
            index = len(self._strings)
            self._strings.append(value)
            self._string_index[value] = index
        return index

    def _node(self, node: Any) -> int:
        if node is None:
            return -1
        key = id(node)
        index = self._node_index.get(key)
        if index is None:
            index = len(self._nodes)
            self._nodes.append(
                [
                    getattr(node, "node_id", -1),
                    getattr(node, "line", 0),
                    self._string(type(node).__name__),
                ]
            )
            self._node_index[key] = index
            self._retained.append(node)
        return index

    def _env(self, env: Any) -> int:
        key = id(env)
        index = self._env_index.get(key)
        if index is None:
            index = len(self._env_index)
            self._env_index[key] = index
            self._retained.append(env)
        return index

    def _object(self, obj: Any) -> int:
        key = id(obj)
        index = self._object_index.get(key)
        if index is None:
            # Imported lazily: values.py is independent of this module, but
            # keeping the top-level import surface minimal avoids ordering
            # surprises for embedders that import hooks first.
            from .values import JSArray, JSObject

            name_index = -1
            if isinstance(obj, JSArray):
                kind = _OBJ_ARRAY
            elif isinstance(obj, JSObject):
                name = getattr(obj, "name", None)
                if isinstance(name, str):
                    kind = _OBJ_CALLABLE
                    name_index = self._string(name)
                else:
                    kind = _OBJ_PLAIN
            else:
                kind = _OBJ_OPAQUE
            index = len(self._objects)
            self._objects.append(
                [
                    kind,
                    self._string(getattr(obj, "class_name", "")),
                    getattr(obj, "creation_site", -1),
                    name_index,
                ]
            )
            self._object_index[key] = index
            self._retained.append(obj)
        return index

    # ---------------------------------------------------------- hook events
    #
    # The high-volume hooks (statements, variable and property accesses, loop
    # iterations) inline the intern-table hit path — one dict ``get`` instead
    # of a method call — because recording runs once per event of the union
    # mask and is the only remaining guest execution of the whole pipeline.

    def on_loop_enter(self, interp, node) -> None:
        if self.mask & EV_LOOP:
            index = self._node_index.get(id(node))
            if index is None:
                index = self._node(node)
            self.events.append((TR_LOOP_ENTER, interp.clock._now_ms, index))

    def on_loop_iteration(self, interp, node, iteration) -> None:
        if self.mask & EV_LOOP:
            index = self._node_index.get(id(node))
            if index is None:
                index = self._node(node)
            self.events.append((TR_LOOP_ITER, interp.clock._now_ms, index, iteration))

    def on_loop_exit(self, interp, node, trip_count) -> None:
        if self.mask & EV_LOOP:
            index = self._node_index.get(id(node))
            if index is None:
                index = self._node(node)
            self.events.append((TR_LOOP_EXIT, interp.clock._now_ms, index, trip_count))

    def on_function_enter(self, interp, func, call_node) -> None:
        if self.mask & EV_FUNCTION:
            self.events.append(
                (TR_FUNC_ENTER, interp.clock._now_ms, self._object(func), self._node(call_node))
            )

    def on_function_exit(self, interp, func) -> None:
        if self.mask & EV_FUNCTION:
            self.events.append((TR_FUNC_EXIT, interp.clock._now_ms, self._object(func)))

    def on_env_created(self, interp, env, kind) -> None:
        if self.mask & EV_ENV:
            self.events.append(
                (TR_ENV_CREATED, interp.clock._now_ms, self._env(env), self._string(kind))
            )

    def on_var_write(self, interp, name, env, value, node) -> None:
        if self.mask & EV_VAR:
            name_index = self._string_index.get(name)
            if name_index is None:
                name_index = self._string(name)
            env_index = self._env_index.get(id(env))
            if env_index is None:
                env_index = self._env(env)
            node_index = self._node_index.get(id(node), -2) if node is not None else -1
            if node_index == -2:
                node_index = self._node(node)
            self.events.append(
                (TR_VAR_WRITE, interp.clock._now_ms, name_index, env_index, node_index)
            )

    def on_var_read(self, interp, name, env, node) -> None:
        if self.mask & EV_VAR:
            name_index = self._string_index.get(name)
            if name_index is None:
                name_index = self._string(name)
            env_index = self._env_index.get(id(env))
            if env_index is None:
                env_index = self._env(env)
            node_index = self._node_index.get(id(node), -2) if node is not None else -1
            if node_index == -2:
                node_index = self._node(node)
            self.events.append(
                (TR_VAR_READ, interp.clock._now_ms, name_index, env_index, node_index)
            )

    def on_object_created(self, interp, obj, node) -> None:
        if self.mask & EV_OBJECT:
            self.events.append(
                (TR_OBJ_CREATED, interp.clock._now_ms, self._object(obj), self._node(node))
            )

    def on_prop_write(self, interp, obj, name, value, node) -> None:
        if self.mask & EV_PROP:
            obj_index = self._object_index.get(id(obj))
            if obj_index is None:
                obj_index = self._object(obj)
            name_index = self._string_index.get(name)
            if name_index is None:
                name_index = self._string(name)
            node_index = self._node_index.get(id(node), -2) if node is not None else -1
            if node_index == -2:
                node_index = self._node(node)
            self.events.append(
                (TR_PROP_WRITE, interp.clock._now_ms, obj_index, name_index, node_index)
            )

    def on_prop_read(self, interp, obj, name, node) -> None:
        if self.mask & EV_PROP:
            obj_index = self._object_index.get(id(obj))
            if obj_index is None:
                obj_index = self._object(obj)
            name_index = self._string_index.get(name)
            if name_index is None:
                name_index = self._string(name)
            node_index = self._node_index.get(id(node), -2) if node is not None else -1
            if node_index == -2:
                node_index = self._node(node)
            self.events.append(
                (TR_PROP_READ, interp.clock._now_ms, obj_index, name_index, node_index)
            )

    def on_branch(self, interp, node, taken) -> None:
        if self.mask & EV_BRANCH:
            index = self._node_index.get(id(node))
            if index is None:
                index = self._node(node)
            self.events.append(
                (TR_BRANCH, interp.clock._now_ms, index, 1 if taken else 0)
            )

    def on_host_access(self, interp, category, detail, node) -> None:
        if self.mask & EV_HOST:
            self.events.append(
                (TR_HOST, interp.clock._now_ms, self._string(category), self._string(detail), self._node(node))
            )

    def on_statement(self, interp, node) -> None:
        if self.mask & EV_STATEMENT:
            index = self._node_index.get(id(node))
            if index is None:
                index = self._node(node)
            self.events.append((TR_STATEMENT, interp.clock._now_ms, index))

    def on_recursion_warning(self, interp, node) -> None:
        if self.mask & EV_RECURSION:
            self.events.append((TR_RECURSION, interp.clock._now_ms, self._node(node)))


# ===========================================================================
# Replay
# ===========================================================================


class ReplayClock:
    """Clock stand-in positioned at the current record's stamp.

    Only the reading surface of :class:`~repro.jsvm.clock.VirtualClock` is
    provided — replayed tracers read time, they never advance it.
    """

    __slots__ = ("_now_ms",)

    def __init__(self, now_ms: float = 0.0) -> None:
        self._now_ms = now_ms

    def now(self) -> float:
        return self._now_ms


class _ReplayFrame:
    """Shadow call-stack entry (mirror of the interpreter's ``CallFrame``)."""

    __slots__ = ("function_name",)

    def __init__(self, function_name: str) -> None:
        self.function_name = function_name


class _ReplayNode:
    """Stand-in AST node carrying exactly what tracers read."""

    __slots__ = ("node_id", "line")

    def __init__(self, node_id: int, line: int) -> None:
        self.node_id = node_id
        self.line = line


#: kind-name -> dynamically created ``_ReplayNode`` subclass, so that
#: ``type(node).__name__`` matches the live AST class (the loop profiler's
#: registry-less fallback derives loop kinds from it).
_REPLAY_NODE_CLASSES: Dict[str, type] = {}


def _replay_node_class(kind: str) -> type:
    cls = _REPLAY_NODE_CLASSES.get(kind)
    if cls is None:
        cls = type(kind, (_ReplayNode,), {"__slots__": ()})
        _REPLAY_NODE_CLASSES[kind] = cls
    return cls


class _ReplayInterpreter:
    """The minimal interpreter surface replayed tracers touch.

    Shipped tracers read ``interp.clock``, ``interp.call_stack`` and
    ``interp.current_function_name()``; the replayer maintains the call stack
    from the trace's function events, so those reads return exactly what the
    live interpreter would have returned at the same stamp.
    """

    __slots__ = ("clock", "call_stack", "hooks", "trace_mask")

    def __init__(self, clock: ReplayClock) -> None:
        self.clock = clock
        self.call_stack: List[_ReplayFrame] = [_ReplayFrame("(global)")]
        self.hooks = None
        self.trace_mask = 0

    def current_function_name(self) -> str:
        return self.call_stack[-1].function_name if self.call_stack else "(global)"

    def stack_snapshot(self) -> List[str]:
        return [frame.function_name for frame in self.call_stack]


class TraceReplayer:
    """Drives ordinary tracers from a recorded :class:`Trace`.

    One replayer materializes one consistent set of stand-in nodes and guest
    objects; every :meth:`replay` call over the same replayer shares them,
    exactly as live tracers composed on one bus share the live guest heap.
    Use a fresh replayer for an independent pass (e.g. a second dependence
    analysis that must not see earlier creation stamps).  Environment frames
    are never materialized at all: replay hands tracers the environment's
    dense trace index (a plain int, unique per recorded scope), which every
    shipped tracer treats as the opaque identity it is — so replay memory
    does not grow with the number of scopes the workload created.
    """

    def __init__(self, trace: Any, streaming: Optional[bool] = None) -> None:
        """``trace`` is a :class:`Trace` or any chunk source (an object with
        the header attributes plus a re-iterable ``chunks()``; see
        :class:`TraceFileSource`).

        ``streaming=None`` picks the policy default: non-:class:`Trace`
        sources always stream; in-memory traces stream only when the
        :data:`STREAM_REPLAY_ENV_VAR` knob forces it.
        """
        self.trace = trace
        in_memory = isinstance(trace, Trace)
        if streaming is None:
            streaming = not in_memory or stream_replay_enabled()
        else:
            streaming = bool(streaming) or not in_memory
        self.streaming = streaming
        self.clock = ReplayClock(trace.start_ms)
        self._interp = _ReplayInterpreter(self.clock)
        if streaming:
            # Tables grow as chunks arrive (and are shared across replay
            # passes: a later pass extends nothing, its chunks re-describe
            # entries already materialized).
            self._strings: List[str] = []
            self._nodes: List[Any] = []
            self._objects: List[Any] = []
            return
        strings = trace.strings
        self._strings = strings
        try:
            self._nodes = [
                _replay_node_class(strings[kind_index])(node_id, line)
                for node_id, line, kind_index in trace.nodes
            ]
            self._objects = [
                self._materialize_object(entry, strings) for entry in trace.objects
            ]
        except (IndexError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed trace intern table: {exc}") from exc

    # ------------------------------------------------------------ stand-ins
    def _materialize_object(self, entry: List[int], strings: List[str]) -> Any:
        from .values import JSArray, JSObject

        kind, class_index, creation_site, name_index = entry
        class_name = strings[class_index]
        if kind == _OBJ_ARRAY:
            return JSArray([], creation_site=creation_site)
        if kind == _OBJ_CALLABLE:
            stand_in = _ReplayFunctionObject(class_name=class_name, creation_site=creation_site)
            stand_in.name = strings[name_index] if name_index >= 0 else ""
            return stand_in
        if kind == _OBJ_PLAIN:
            return JSObject(class_name=class_name, creation_site=creation_site)
        return _ReplayOpaque()

    def _absorb_chunk(self, chunk: "TraceChunk", seen: List[int]) -> None:
        """Extend the stand-in tables with a chunk's intern deltas.

        ``seen`` holds the cumulative (strings, nodes, objects) counts
        streamed so far *in this pass*.  Entries already materialized by an
        earlier :meth:`replay` pass are skipped, so repeated passes over one
        replayer share stand-ins exactly like the batch path does.
        Environments have no table to extend — events carry their index, and
        that index *is* the identity handed to tracers.
        """
        strings = self._strings
        start = seen[0]
        if start + len(chunk.strings) > len(strings):
            strings.extend(chunk.strings[len(strings) - start :])
        seen[0] = start + len(chunk.strings)
        try:
            start = seen[1]
            if start + len(chunk.nodes) > len(self._nodes):
                self._nodes.extend(
                    _replay_node_class(strings[kind_index])(node_id, line)
                    for node_id, line, kind_index in chunk.nodes[
                        len(self._nodes) - start :
                    ]
                )
            seen[1] = start + len(chunk.nodes)
            start = seen[2]
            if start + len(chunk.objects) > len(self._objects):
                self._objects.extend(
                    self._materialize_object(entry, strings)
                    for entry in chunk.objects[len(self._objects) - start :]
                )
            seen[2] = start + len(chunk.objects)
        except (IndexError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed trace intern table: {exc}") from exc

    def _node(self, index: int) -> Any:
        return self._nodes[index] if index >= 0 else None

    # --------------------------------------------------------------- replay
    def required_mask(self, tracers: List[Tracer]) -> int:
        mask = 0
        for tracer in tracers:
            mask |= tracer.subscribed_events()
        return mask

    def replay(self, tracers: List[Tracer]) -> None:
        """Feed every recorded event to the subscribed tracers, in order.

        Raises :class:`TraceMaskError` when the trace does not cover the
        union of the tracers' declared events — a replay from an insufficient
        recording would silently produce wrong payloads otherwise.

        Dispatch is specialized per opcode: a handler table maps each opcode
        to a closure pre-bound over the subscribed tracer methods, and
        opcodes nobody subscribes to cost one list-index + ``None`` check per
        record (a dependence replay skips hundreds of thousands of statement
        samples this way).
        """
        required = self.required_mask(tracers)
        if not self.trace.covers(required):
            raise TraceMaskError(
                f"trace mask [{describe_mask(self.trace.mask)}] does not cover "
                f"the requested tracers' mask [{describe_mask(required)}]; "
                f"missing [{describe_mask(required & ~self.trace.mask)}]"
            )

        def overrides(tracer: Tracer, name: str) -> bool:
            if name in getattr(tracer, "__dict__", {}):
                return True
            return getattr(type(tracer), name) is not getattr(Tracer, name)

        for dropped_name in self.trace.dropped:
            for tracer in tracers:
                if overrides(tracer, dropped_name):
                    raise TraceMaskError(
                        f"trace was recorded without {dropped_name!r} records "
                        f"but {type(tracer).__name__} handles that event; "
                        "re-record without dropping it"
                    )

        interp = self._interp
        clock = self.clock
        nodes = self._nodes
        objects = self._objects
        # In streaming mode the tables are list objects extended in place as
        # chunks arrive; handlers index them through these same bindings.
        strings = self._strings
        call_stack = interp.call_stack
        elided = TRACE_VALUE_ELIDED

        def methods(bit: int, name: str) -> list:
            # Base-class no-ops are skipped outright: dispatching a record to
            # a method that cannot observe it is pure replay overhead.
            return [
                getattr(t, name)
                for t in tracers
                if t.subscribed_events() & bit and overrides(t, name)
            ]

        def node_of(index: int):
            return nodes[index] if index >= 0 else None

        handlers: List[Optional[Any]] = [None] * (TR_RECURSION + 1)

        # The hot event classes (statements, property and variable accesses)
        # get a single-subscriber fast path: almost every replay drives one
        # tracer per class, so the dispatch loop is replaced by a direct call.
        # Every opcode's handler is installed independently — a tracer may
        # override one direction of a class (dependence analysis handles
        # variable writes but not reads).
        on_statement = methods(EV_STATEMENT, "on_statement")
        if len(on_statement) == 1:
            statement_method = on_statement[0]

            def h_statement(rec):
                clock._now_ms = rec[1]
                index = rec[2]
                statement_method(interp, nodes[index] if index >= 0 else None)

            handlers[TR_STATEMENT] = h_statement
        elif on_statement:

            def h_statement(rec):
                clock._now_ms = rec[1]
                node = node_of(rec[2])
                for method in on_statement:
                    method(interp, node)

            handlers[TR_STATEMENT] = h_statement

        on_prop_read = methods(EV_PROP, "on_prop_read")
        if len(on_prop_read) == 1:
            prop_read_method = on_prop_read[0]

            def h_prop_read(rec):
                clock._now_ms = rec[1]
                index = rec[4]
                prop_read_method(
                    interp, objects[rec[2]], strings[rec[3]], nodes[index] if index >= 0 else None
                )

            handlers[TR_PROP_READ] = h_prop_read
        elif on_prop_read:

            def h_prop_read(rec):
                clock._now_ms = rec[1]
                obj = objects[rec[2]]
                name = strings[rec[3]]
                node = node_of(rec[4])
                for method in on_prop_read:
                    method(interp, obj, name, node)

            handlers[TR_PROP_READ] = h_prop_read

        on_prop_write = methods(EV_PROP, "on_prop_write")
        if len(on_prop_write) == 1:
            prop_write_method = on_prop_write[0]

            def h_prop_write(rec):
                clock._now_ms = rec[1]
                index = rec[4]
                prop_write_method(
                    interp,
                    objects[rec[2]],
                    strings[rec[3]],
                    elided,
                    nodes[index] if index >= 0 else None,
                )

            handlers[TR_PROP_WRITE] = h_prop_write
        elif on_prop_write:

            def h_prop_write(rec):
                clock._now_ms = rec[1]
                obj = objects[rec[2]]
                name = strings[rec[3]]
                node = node_of(rec[4])
                for method in on_prop_write:
                    method(interp, obj, name, elided, node)

            handlers[TR_PROP_WRITE] = h_prop_write

        on_var_read = methods(EV_VAR, "on_var_read")
        if len(on_var_read) == 1:
            var_read_method = on_var_read[0]

            def h_var_read(rec):
                clock._now_ms = rec[1]
                index = rec[4]
                var_read_method(
                    interp, strings[rec[2]], rec[3], nodes[index] if index >= 0 else None
                )

            handlers[TR_VAR_READ] = h_var_read
        elif on_var_read:

            def h_var_read(rec):
                clock._now_ms = rec[1]
                name = strings[rec[2]]
                env = rec[3]
                node = node_of(rec[4])
                for method in on_var_read:
                    method(interp, name, env, node)

            handlers[TR_VAR_READ] = h_var_read

        on_var_write = methods(EV_VAR, "on_var_write")
        if len(on_var_write) == 1:
            var_write_method = on_var_write[0]

            def h_var_write(rec):
                clock._now_ms = rec[1]
                index = rec[4]
                var_write_method(
                    interp,
                    strings[rec[2]],
                    rec[3],
                    elided,
                    nodes[index] if index >= 0 else None,
                )

            handlers[TR_VAR_WRITE] = h_var_write
        elif on_var_write:

            def h_var_write(rec):
                clock._now_ms = rec[1]
                name = strings[rec[2]]
                env = rec[3]
                node = node_of(rec[4])
                for method in on_var_write:
                    method(interp, name, env, elided, node)

            handlers[TR_VAR_WRITE] = h_var_write

        on_loop_enter = methods(EV_LOOP, "on_loop_enter")
        if on_loop_enter:

            def h_loop_enter(rec):
                clock._now_ms = rec[1]
                index = rec[2]
                node = nodes[index] if index >= 0 else None
                for method in on_loop_enter:
                    method(interp, node)

            handlers[TR_LOOP_ENTER] = h_loop_enter

        on_loop_iteration = methods(EV_LOOP, "on_loop_iteration")
        if on_loop_iteration:

            def h_loop_iteration(rec):
                clock._now_ms = rec[1]
                index = rec[2]
                node = nodes[index] if index >= 0 else None
                iteration = rec[3]
                for method in on_loop_iteration:
                    method(interp, node, iteration)

            handlers[TR_LOOP_ITER] = h_loop_iteration

        on_loop_exit = methods(EV_LOOP, "on_loop_exit")
        if on_loop_exit:

            def h_loop_exit(rec):
                clock._now_ms = rec[1]
                index = rec[2]
                node = nodes[index] if index >= 0 else None
                trip_count = rec[3]
                for method in on_loop_exit:
                    method(interp, node, trip_count)

            handlers[TR_LOOP_EXIT] = h_loop_exit

        on_function_enter = methods(EV_FUNCTION, "on_function_enter")
        on_function_exit = methods(EV_FUNCTION, "on_function_exit")
        # The shadow call stack feeds statement-sample consumers (stack depth,
        # current function), so it must be maintained whenever either a
        # function or a statement subscriber is present.
        if on_function_enter or on_function_exit or on_statement:

            def h_func_enter(rec):
                clock._now_ms = rec[1]
                func = objects[rec[2]]
                node = node_of(rec[3])
                call_stack.append(_ReplayFrame(getattr(func, "name", "(anonymous)")))
                for method in on_function_enter:
                    method(interp, func, node)

            def h_func_exit(rec):
                clock._now_ms = rec[1]
                func = objects[rec[2]]
                for method in on_function_exit:
                    method(interp, func)
                if len(call_stack) > 1:
                    call_stack.pop()

            handlers[TR_FUNC_ENTER] = h_func_enter
            handlers[TR_FUNC_EXIT] = h_func_exit

        on_branch = methods(EV_BRANCH, "on_branch")
        if on_branch:

            def h_branch(rec):
                clock._now_ms = rec[1]
                index = rec[2]
                node = nodes[index] if index >= 0 else None
                taken = bool(rec[3])
                for method in on_branch:
                    method(interp, node, taken)

            handlers[TR_BRANCH] = h_branch

        on_object_created = methods(EV_OBJECT, "on_object_created")
        if on_object_created:

            def h_object(rec):
                clock._now_ms = rec[1]
                obj = objects[rec[2]]
                node = node_of(rec[3])
                for method in on_object_created:
                    method(interp, obj, node)

            handlers[TR_OBJ_CREATED] = h_object

        on_env_created = methods(EV_ENV, "on_env_created")
        if on_env_created:

            def h_env(rec):
                clock._now_ms = rec[1]
                env = rec[2]
                kind = strings[rec[3]]
                for method in on_env_created:
                    method(interp, env, kind)

            handlers[TR_ENV_CREATED] = h_env

        on_host_access = methods(EV_HOST, "on_host_access")
        if on_host_access:

            def h_host(rec):
                clock._now_ms = rec[1]
                category = strings[rec[2]]
                detail = strings[rec[3]]
                node = node_of(rec[4])
                for method in on_host_access:
                    method(interp, category, detail, node)

            handlers[TR_HOST] = h_host

        on_recursion = methods(EV_RECURSION, "on_recursion_warning")
        if on_recursion:

            def h_recursion(rec):
                clock._now_ms = rec[1]
                index = rec[2]
                node = nodes[index] if index >= 0 else None
                for method in on_recursion:
                    method(interp, node)

            handlers[TR_RECURSION] = h_recursion

        if self.streaming:
            seen = [0, 0, 0]
            wanted = frozenset(
                opcode
                for opcode, handler in enumerate(handlers)
                if handler is not None
            )
            for chunk in self.trace.chunks():
                self._absorb_chunk(chunk, seen)
                sparse = getattr(chunk, "events_sparse", None)
                if sparse is not None:
                    # Columnar chunks materialize tuples only for subscribed
                    # opcode groups; unsubscribed floods (statement samples
                    # under a dependence replay) stay as undecoded columns.
                    # The holes are None — and a fully-materialized chunk may
                    # be returned whole, so both checks stay.
                    for record in sparse(wanted):
                        if record is None:
                            continue
                        handler = handlers[record[0]]
                        if handler is not None:
                            handler(record)
                else:
                    for record in chunk.events:
                        handler = handlers[record[0]]
                        if handler is not None:
                            handler(record)
        else:
            for record in self.trace.events:
                handler = handlers[record[0]]
                if handler is not None:
                    handler(record)
        clock._now_ms = self.trace.end_ms


class _ReplayValueElided:
    """Sentinel for guest values the v1 schema does not carry."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "<trace value elided>"


#: Passed as the ``value`` argument of replayed write events; no shipped
#: tracer reads it (schema v1 elides guest values).
TRACE_VALUE_ELIDED = _ReplayValueElided()


class _ReplayOpaque:
    """Stand-in for a recorded non-JSObject payload (defensive only)."""

    __slots__ = ()


def _make_replay_function_class():
    """``_ReplayFunctionObject`` is a JSObject subclass with a ``name`` slot,
    so it satisfies both ``isinstance(obj, JSObject)`` checks (dependence
    analysis) and ``func.name`` reads (nest observer, samplers).  Built
    lazily to keep module import order free of the values dependency."""
    from .values import JSObject

    class _ReplayFunction(JSObject):
        __slots__ = ("name",)

    return _ReplayFunction


_REPLAY_FUNCTION_CLASS: Optional[type] = None


def _ReplayFunctionObject(class_name: str, creation_site: int):
    global _REPLAY_FUNCTION_CLASS
    if _REPLAY_FUNCTION_CLASS is None:
        _REPLAY_FUNCTION_CLASS = _make_replay_function_class()
    return _REPLAY_FUNCTION_CLASS(class_name=class_name, creation_site=creation_site)
