"""Hand-written tokenizer for the mini-JavaScript language.

The lexer converts guest source text into a flat list of :class:`Token`
objects.  It supports:

* decimal and hexadecimal number literals (including fractions / exponents),
* single- and double-quoted string literals with common escapes,
* line (``//``) and block (``/* */``) comments,
* all multi-character punctuators used by the parser,
* identifiers / keywords.

Regular-expression literals are not supported; the case-study workloads do
not need them and rejecting them keeps the grammar unambiguous.
"""

from __future__ import annotations

from typing import List

from .errors import JSSyntaxError
from .tokens import KEYWORDS, PUNCTUATORS, Token, TokenType

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_PART = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")
_HEX_DIGITS = set("0123456789abcdefABCDEF")

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "'": "'",
    '"': '"',
    "\\": "\\",
    "/": "/",
}


class Lexer:
    """Tokenizes a guest source string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ api
    def tokenize(self) -> List[Token]:
        """Return the full token stream, ending with a single EOF token."""
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token(TokenType.EOF, None, self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------ internals
    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise JSSyntaxError("unterminated block comment", start_line, start_col)
            else:
                return

    def _next_token(self) -> Token:
        ch = self._peek()
        line, column = self.line, self.column
        if ch in _IDENT_START:
            return self._read_identifier(line, column)
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._read_number(line, column)
        if ch in "'\"":
            return self._read_string(line, column)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenType.PUNCTUATOR, punct, line, column)
        raise JSSyntaxError(f"unexpected character {ch!r}", line, column)

    def _read_identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and self._peek() in _IDENT_PART:
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENTIFIER
        return Token(kind, text, line, column)

    def _read_number(self, line: int, column: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if self._peek() not in _HEX_DIGITS:
                raise JSSyntaxError("invalid hexadecimal literal", line, column)
            while self.pos < len(self.source) and self._peek() in _HEX_DIGITS:
                self._advance()
            value = float(int(self.source[start : self.pos], 16))
            return Token(TokenType.NUMBER, value, line, column)

        while self.pos < len(self.source) and self._peek() in _DIGITS:
            self._advance()
        if self._peek() == ".":
            self._advance()
            while self.pos < len(self.source) and self._peek() in _DIGITS:
                self._advance()
        if self._peek() in ("e", "E"):
            save = self.pos
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            if self._peek() in _DIGITS:
                while self.pos < len(self.source) and self._peek() in _DIGITS:
                    self._advance()
            else:
                # Not an exponent after all (e.g. `1e` followed by identifier);
                # treat as malformed input.
                self.pos = save
                raise JSSyntaxError("malformed exponent in number literal", line, column)
        text = self.source[start : self.pos]
        try:
            value = float(text)
        except ValueError as exc:  # pragma: no cover - defensive
            raise JSSyntaxError(f"invalid number literal {text!r}", line, column) from exc
        return Token(TokenType.NUMBER, value, line, column)

    def _read_string(self, line: int, column: int) -> Token:
        quote = self._advance()
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise JSSyntaxError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == quote:
                break
            if ch == "\n":
                raise JSSyntaxError("newline in string literal", line, column)
            if ch == "\\":
                esc = self._advance()
                if esc == "u":
                    hex_digits = self._advance(4)
                    if len(hex_digits) != 4 or any(c not in _HEX_DIGITS for c in hex_digits):
                        raise JSSyntaxError("invalid unicode escape", line, column)
                    chars.append(chr(int(hex_digits, 16)))
                elif esc == "x":
                    hex_digits = self._advance(2)
                    if len(hex_digits) != 2 or any(c not in _HEX_DIGITS for c in hex_digits):
                        raise JSSyntaxError("invalid hex escape", line, column)
                    chars.append(chr(int(hex_digits, 16)))
                elif esc in _ESCAPES:
                    chars.append(_ESCAPES[esc])
                else:
                    chars.append(esc)
            else:
                chars.append(ch)
        return Token(TokenType.STRING, "".join(chars), line, column)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` and return the token list."""
    return Lexer(source).tokenize()
