"""Virtual high-resolution clock used by the interpreter and browser shims.

The paper measures time with the JavaScript high-resolution timer
(``performance.now()``).  Real wall-clock time would make every experiment in
this reproduction non-deterministic and dependent on host load, so the engine
instead advances a *virtual* clock by a fixed cost per interpreted operation.
Host components (the event loop, workload drivers simulating user "idle"
time) can also advance the clock explicitly.

The clock unit is the millisecond, matching ``performance.now()``.
"""

from __future__ import annotations

from typing import Callable, List


class VirtualClock:
    """Deterministic clock advanced by interpreted work and host events."""

    def __init__(self, ms_per_op: float = 0.02) -> None:
        #: Virtual milliseconds charged per interpreted AST operation.  The
        #: default (20µs/op) is in the ball park of a non-JIT interpreter on
        #: the paper's 2.6 GHz test machine and produces Table-2-scale totals
        #: (seconds to tens of seconds) for the bundled workloads.
        self.ms_per_op = ms_per_op
        self._now_ms = 0.0
        self._listeners: List[Callable[[float], None]] = []

    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ms

    def advance(self, ms: float) -> float:
        """Advance the clock by ``ms`` virtual milliseconds."""
        if ms < 0:
            raise ValueError("clock cannot move backwards")
        self._now_ms += ms
        if self._listeners:
            for listener in self._listeners:
                listener(self._now_ms)
        return self._now_ms

    def tick_op(self, count: int = 1) -> None:
        """Charge the cost of ``count`` interpreted operations.

        The interpreter's per-operation hot path (``Interpreter._charge``)
        inlines this arithmetic rather than calling here; keep the two in
        sync when changing advance semantics.
        """
        self.advance(self.ms_per_op * count)

    def add_listener(self, listener: Callable[[float], None]) -> None:
        """Register a callback invoked with the new time after every advance."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[float], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def reset(self) -> None:
        self._now_ms = 0.0
