"""Token definitions for the mini-JavaScript lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    """Kinds of lexical tokens produced by :class:`repro.jsvm.lexer.Lexer`."""

    NUMBER = auto()
    STRING = auto()
    IDENTIFIER = auto()
    KEYWORD = auto()
    PUNCTUATOR = auto()
    EOF = auto()


#: Reserved words recognised by the parser.  This deliberately covers the
#: subset of ECMAScript 5 (+ ``let``/``const``) that the case-study workloads
#: use.  Unsupported reserved words are still lexed as keywords so the parser
#: can emit a clear error instead of silently treating them as identifiers.
KEYWORDS = frozenset(
    {
        "var",
        "let",
        "const",
        "function",
        "return",
        "if",
        "else",
        "for",
        "while",
        "do",
        "break",
        "continue",
        "new",
        "this",
        "typeof",
        "instanceof",
        "in",
        "of",
        "true",
        "false",
        "null",
        "undefined",
        "throw",
        "try",
        "catch",
        "finally",
        "delete",
        "void",
        "switch",
        "case",
        "default",
    }
)

#: Multi-character punctuators, longest first so the lexer can use greedy
#: matching.
PUNCTUATORS = (
    "===",
    "!==",
    ">>>=",
    "<<=",
    ">>=",
    ">>>",
    "...",
    "=>",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "!",
    "?",
    ":",
    ".",
    "&",
    "|",
    "^",
    "~",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    type:
        The :class:`TokenType` of the token.
    value:
        The token text for identifiers/keywords/punctuators, the decoded
        string for string literals, or the numeric value (as ``float``) for
        number literals.
    line, column:
        1-based source position of the first character of the token.
    """

    type: TokenType
    value: object
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        return self.type is TokenType.PUNCTUATOR and self.value == text

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
