"""Schema-v2 binary columnar trace codec.

The v1 trace formats serialize every event as a JSON list — decode cost is a
full ``json.loads`` + per-record validation pass, and gzip segments must be
re-inflated and re-parsed on every load.  This module is the v2 container:
events are **transposed into per-column arrays** (one group per opcode, one
column per record slot of :data:`~repro.jsvm.hooks.Trace._RECORD_LAYOUT`),
monotone columns are delta+zigzag-varint encoded, intern tables ride along as
length-prefixed UTF-8, and a footer offset index makes chunks random-access.

Why it is fast to *decode* in pure Python: every column decodes through
C-level bulk operations only —

* a delta+zigzag column whose varints are all single bytes (the common case:
  chunk-local positions, freshly-interned ids, iteration counters) decodes as
  ``bytes.translate`` into two's-complement int8 + one ``array('b')`` +
  ``itertools.accumulate`` — no per-value Python bytecode at all;
* wider columns are fixed-width little-endian ``array`` slices
  (``frombytes`` + ``tolist``);
* virtual-clock stamps (monotone positive floats) are stored as int64 deltas
  of their IEEE-754 bit patterns and reinterpreted back via one
  ``array('q')`` → ``array('d')`` round-trip, so replayed stamps are
  **bit-exact** — :meth:`Trace.digest` over a decoded trace matches the
  original byte for byte;
* per-column ``zlib`` (flagged, only when smaller) keeps segments well under
  the gzipped-NDJSON size while decompressing straight out of an mmap-backed
  buffer.

Columns whose values are not plainly typed (a hand-built v1 trace may carry
``int`` clock stamps or ``bool`` flags) fall back to a JSON-encoded column,
preserving ``repr``-level type identity — the digest contract — for any
value the v1 formats could express.

Wire layout (all framing little-endian, ``varint`` = LEB128)::

    file   := MAGIC(8) u32 header_len header_json chunk* footer
    chunk  := u32 body_len body
    body   := varint index
              strings-section  nodes-section  objects-section
              varint env_delta
              varint n_events varint n_groups group*
    group  := u8 opcode varint count
              positions-block clock-block operand-block{arity-2}
    block  := u8 kind u8 order u8 zlib_flag varint count varint len payload
    footer := footer_body u32 footer_body_len END_MAGIC(8)
    footer_body := varint chunk_count varint total_events u64 offset{chunks}

The chunk invariant matches the NDJSON stream: a chunk's events reference
only intern entries carried by this or an earlier chunk, so replay stays
O(chunk) resident.  :class:`BinaryTraceSource` maps the file with ``mmap``
(shared pages across processes — the worker-pool's zero-copy attach) and
mirrors the :class:`~repro.jsvm.hooks.TraceFileSource` surface.
"""

from __future__ import annotations

import gzip
import io
import json
import mmap
import operator
import struct
import sys
import zlib
from array import array
from collections import deque
from itertools import accumulate, islice
from typing import Any, Dict, Iterator, List, Optional

#: First 8 bytes of every v2 binary trace file.  The lead byte is outside
#: ASCII so no text tool mistakes the file for JSON/NDJSON, mirroring PNG.
BINARY_MAGIC = b"\x93RPTRC2\n"

#: Last 8 bytes of every v2 binary trace file (footer integrity anchor).
BINARY_END_MAGIC = b"RPTRCEND"

#: ``format`` marker carried in the binary header JSON.
BINARY_TRACE_FORMAT = "repro-trace-bin"

#: Version of the binary *container* (the record schema version rides in the
#: header separately and still gates replay admission).
BINARY_CONTAINER_VERSION = 2

# -- column block kinds ------------------------------------------------------
_K_EMPTY = 0  #: zero values, zero payload
_K_VZ1 = 1  #: zigzag varints, all single-byte (bulk translate decode)
_K_VZN = 2  #: zigzag varints, general width (per-value decode; rare)
_K_FIX8 = 3  #: little-endian int8
_K_FIX16 = 4  #: little-endian int16
_K_FIX32 = 5  #: little-endian int32
_K_FIX64 = 6  #: little-endian int64
_K_CLK = 7  #: float64 via int64 bit-pattern deltas (little-endian int64)
_K_JSON = 8  #: UTF-8 JSON array (type-preserving fallback)
_K_CLKSHUF = 9  #: float64 raw bits, byte-shuffled into 8 planes (see below)

_FIX_CODES = {_K_FIX8: "b", _K_FIX16: "h", _K_FIX32: "i", _K_FIX64: "q"}
_FIX_BOUNDS = (
    (_K_FIX8, -(1 << 7), (1 << 7) - 1),
    (_K_FIX16, -(1 << 15), (1 << 15) - 1),
    (_K_FIX32, -(1 << 31), (1 << 31) - 1),
    (_K_FIX64, -(1 << 63), (1 << 63) - 1),
)

#: zigzag byte -> two's-complement int8 byte, for the bulk ``_K_VZ1`` decode:
#: ``array('b', payload.translate(_ZZ8))`` yields the signed values directly.
_ZZ8 = bytes(((b >> 1) ^ (256 - (b & 1))) & 0xFF for b in range(256))

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Columns smaller than this skip the zlib attempt (header cost dominates).
_ZLIB_MIN = 64


def _trace_error(message: str):
    from .hooks import TraceFormatError

    return TraceFormatError(message)


def _arr_from_bytes(code: str, data: bytes) -> array:
    values = array(code)
    values.frombytes(data)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        values.byteswap()
    return values


def _arr_to_bytes(values: array) -> bytes:
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        values = values[:]
        values.byteswap()
    return values.tobytes()


# ===========================================================================
# varint / zigzag primitives
# ===========================================================================
def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _encode_varint(value: int) -> bytes:
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def _encode_varints(values) -> bytes:
    out = bytearray()
    append = out.append
    for value in values:
        while value >= 0x80:
            append((value & 0x7F) | 0x80)
            value >>= 7
        append(value)
    return bytes(out)


def _decode_varint(buf, pos: int):
    """One LEB128 varint at ``buf[pos:]`` → ``(value, next_pos)``.

    A continuation bit running off the end of the buffer is the classic
    truncation signature — it raises, never wraps or silently stops.
    """
    shift = 0
    value = 0
    length = len(buf)
    while True:
        if pos >= length:
            raise _trace_error("varint overruns the trace buffer (truncated?)")
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise _trace_error("varint wider than 64 bits in trace buffer")


def _decode_varints_general(buf: bytes, count: int) -> List[int]:
    values: List[int] = []
    append = values.append
    acc = 0
    shift = 0
    for byte in buf:
        acc |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
            if shift > 63:
                raise _trace_error("varint wider than 64 bits in column payload")
        else:
            append(acc)
            acc = 0
            shift = 0
    if shift:
        raise _trace_error("varint overruns the column payload (truncated?)")
    if len(values) != count:
        raise _trace_error(
            f"column payload holds {len(values)} varints, expected {count}"
        )
    return values


def _unzigzag(values: List[int]) -> List[int]:
    return [(v >> 1) ^ -(v & 1) for v in values]


# ===========================================================================
# column encode
# ===========================================================================
def _deltas(values: List[int]) -> List[int]:
    prev = 0
    out = []
    append = out.append
    for value in values:
        append(value - prev)
        prev = value
    return out


def _pack_block(kind: int, order: int, count: int, payload: bytes) -> bytes:
    zflag = 0
    if len(payload) >= _ZLIB_MIN:
        squeezed = zlib.compress(payload, 6)
        if len(squeezed) < len(payload):
            zflag = 1
            payload = squeezed
    return b"".join(
        (
            bytes((kind, order, zflag)),
            _encode_varint(count),
            _encode_varint(len(payload)),
            payload,
        )
    )


def _int_column_candidate(values: List[int]):
    """Best (kind, payload) for strict-int ``values`` (pre-delta'd or raw)."""
    zz = [_zigzag(v) for v in values]
    if max(zz) < 0x80:
        return _K_VZ1, bytes(zz)
    lo, hi = min(values), max(values)
    for kind, bound_lo, bound_hi in _FIX_BOUNDS:
        if bound_lo <= lo and hi <= bound_hi:
            return kind, _arr_to_bytes(array(_FIX_CODES[kind], values))
    return _K_VZN, _encode_varints(zz)


def _encode_int_column(values: List[Any]) -> bytes:
    """Encode one column of strict ints, balancing size against decode cost.

    Strict ints (``bool`` is *not* an int here — its ``repr`` differs, and
    the digest contract is ``repr`` identity) try raw and first-order delta
    transforms.  Raw (order-0) decodes cheaper — no prefix-sum pass — so it
    wins unless the delta payload is more than 4× smaller (per-column zlib
    absorbs most of the residual size difference anyway).  Anything not
    strictly int-typed falls back to the JSON column, which round-trips
    arbitrary v1-expressible values exactly.
    """
    count = len(values)
    if count == 0:
        return _pack_block(_K_EMPTY, 0, 0, b"")
    if not all(type(v) is int for v in values):
        payload = json.dumps(values, separators=(",", ":")).encode("utf-8")
        return _pack_block(_K_JSON, 0, count, payload)
    kind0, payload0 = _int_column_candidate(values)
    kind1, payload1 = _int_column_candidate(_deltas(values))
    if len(payload1) * 4 < len(payload0):
        return _pack_block(kind1, 1, count, payload1)
    return _pack_block(kind0, 0, count, payload0)


def _encode_positions(positions: List[int]) -> bytes:
    """Positions are strictly increasing chunk-local indices.

    Raw indices are near-incompressible (fix16/fix32 of distinct values),
    while their deltas are overwhelmingly 1 for a dominant opcode — VZ1
    bytes that zlib crushes to a fraction of a byte per event.  The decode
    cost of the prefix sum is one C-speed ``accumulate`` pass, so the
    smaller *packed* block wins (ties go to raw, which skips that pass).
    """
    count = len(positions)
    kind0, payload0 = _int_column_candidate(positions)
    block0 = _pack_block(kind0, 0, count, payload0)
    kind1, payload1 = _int_column_candidate(_deltas(positions))
    block1 = _pack_block(kind1, 1, count, payload1)
    return block1 if len(block1) < len(block0) else block0


def _encode_clock_column(values: List[Any]) -> bytes:
    """Virtual-clock stamps: raw float64 bits, byte-shuffled, zlib'd.

    The stamps are accumulated floats — bit-exactness is the digest
    contract, so the bits ship verbatim.  Transposing the little-endian
    serialization into 8 byte-planes (Blosc-style shuffle) groups the
    near-constant sign/exponent/high-mantissa bytes into long runs zlib
    crushes, while decode reassembles the planes with 8 strided slice
    assignments and one ``array('d').frombytes`` — no per-value Python at
    all.  (The delta'd :data:`_K_CLK` kind compresses ~20× tighter but its
    decode needs a big-int prefix sum, ~3× slower per value; with the
    shuffled segment already far below the gzipped-NDJSON size, decode
    throughput wins the trade.)
    """
    count = len(values)
    if count == 0:
        return _pack_block(_K_EMPTY, 0, 0, b"")
    if all(type(v) is float for v in values):
        raw = _arr_to_bytes(array("d", values))
        planes = b"".join(raw[plane::8] for plane in range(8))
        return _pack_block(_K_CLKSHUF, 0, count, planes)
    return _encode_int_column(values)


def _encode_string_table(strings: List[str]) -> bytes:
    blob = bytearray()
    for text in strings:
        data = text.encode("utf-8")
        blob += _encode_varint(len(data))
        blob += data
    zflag = 0
    payload = bytes(blob)
    if len(payload) >= _ZLIB_MIN:
        squeezed = zlib.compress(payload, 6)
        if len(squeezed) < len(payload):
            zflag = 1
            payload = squeezed
    return b"".join(
        (
            _encode_varint(len(strings)),
            bytes((zflag,)),
            _encode_varint(len(payload)),
            payload,
        )
    )


# ===========================================================================
# column decode
# ===========================================================================
def _decode_block(buf, pos: int):
    """Decode one column block → ``(values, next_pos, plain_ints)``.

    ``values`` is a plain list; every bulk path bottoms out in C (translate,
    ``array`` slicing, ``accumulate``).  ``plain_ints`` is True when the
    *encoding itself* guarantees every value is a strict ``int`` (all the
    integer kinds do by construction) — callers use it to run intern-index
    validation as bulk min/max instead of per-value type checks.  Any
    truncation, length mismatch or malformed payload raises
    ``TraceFormatError`` before partial data leaks.
    """
    if pos + 3 > len(buf):
        raise _trace_error("trace column block header is truncated")
    kind = buf[pos]
    order = buf[pos + 1]
    zflag = buf[pos + 2]
    count, pos = _decode_varint(buf, pos + 3)
    length, pos = _decode_varint(buf, pos)
    end = pos + length
    if end > len(buf):
        raise _trace_error("trace column block payload is truncated")
    payload = bytes(buf[pos:end])
    if zflag:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise _trace_error(f"corrupt compressed trace column: {exc}") from exc
    if kind == _K_EMPTY:
        if count:
            raise _trace_error("empty trace column block declares values")
        return [], end, True
    if kind == _K_VZ1:
        if len(payload) != count:
            raise _trace_error("single-byte varint column length mismatch")
        if payload and max(payload) >= 0x80:
            raise _trace_error("continuation byte in single-byte varint column")
        values = array("b", payload.translate(_ZZ8)).tolist()
    elif kind == _K_VZN:
        values = _unzigzag(_decode_varints_general(payload, count))
    elif kind in _FIX_CODES:
        code = _FIX_CODES[kind]
        width = array(code).itemsize
        if len(payload) != count * width:
            raise _trace_error("fixed-width trace column length mismatch")
        values = _arr_from_bytes(code, payload).tolist()
    elif kind == _K_CLKSHUF:
        if len(payload) != count * 8:
            raise _trace_error("clock column length mismatch")
        interleaved = bytearray(count * 8)
        for plane in range(8):
            interleaved[plane::8] = payload[plane * count : (plane + 1) * count]
        floats = _arr_from_bytes("d", bytes(interleaved))
        return floats.tolist(), end, False
    elif kind == _K_CLK:
        if len(payload) != count * 8:
            raise _trace_error("clock column length mismatch")
        bit_values = _arr_from_bytes("q", payload)
        try:
            for _ in range(order):
                # struct.pack over the accumulate iterator is the fastest
                # stdlib route from big Python ints back to packed int64s.
                bit_values = _arr_from_bytes(
                    "q", struct.pack(f"<{count}q", *accumulate(bit_values))
                )
        except (struct.error, OverflowError) as exc:
            raise _trace_error(f"clock column deltas overflow int64: {exc}") from exc
        floats = array("d")
        floats.frombytes(bit_values.tobytes())
        return floats.tolist(), end, False
    elif kind == _K_JSON:
        try:
            values = json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _trace_error(f"corrupt JSON trace column: {exc}") from exc
        if not isinstance(values, list) or len(values) != count:
            raise _trace_error("JSON trace column does not match its count")
        return values, end, False
    else:
        raise _trace_error(f"unknown trace column kind {kind}")
    for _ in range(order):
        values = list(accumulate(values))
    if len(values) != count:
        raise _trace_error("trace column value count mismatch")
    return values, end, True


def _decode_string_table(buf, pos: int):
    count, pos = _decode_varint(buf, pos)
    if pos >= len(buf):
        raise _trace_error("trace string table is truncated")
    zflag = buf[pos]
    length, pos = _decode_varint(buf, pos + 1)
    end = pos + length
    if end > len(buf):
        raise _trace_error("trace string table payload is truncated")
    payload = bytes(buf[pos:end])
    if zflag:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise _trace_error(f"corrupt compressed string table: {exc}") from exc
    strings: List[str] = []
    at = 0
    for _ in range(count):
        size, at = _decode_varint(payload, at)
        if at + size > len(payload):
            raise _trace_error("trace string entry overruns its table")
        try:
            strings.append(payload[at : at + size].decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise _trace_error(f"malformed UTF-8 in string table: {exc}") from exc
        at += size
    if at != len(payload):
        raise _trace_error("trailing bytes after the last string entry")
    return strings, end


# ===========================================================================
# chunk encode/decode
# ===========================================================================
def _encode_chunk(
    trace,
    index: int,
    batch,
    strings,
    nodes,
    objects,
    env_delta: int,
) -> bytes:
    from .hooks import Trace

    layouts = Trace._RECORD_LAYOUT
    groups: Dict[int, List[int]] = {}
    for position, record in enumerate(batch):
        opcode = record[0] if record else None
        layout = layouts.get(opcode)
        if layout is None or len(record) != layout[0]:
            raise _trace_error(
                f"cannot columnar-encode malformed trace record: {record!r}"
            )
        groups.setdefault(opcode, []).append(position)

    parts = [_encode_varint(index), _encode_string_table(strings)]
    parts.append(_encode_varint(len(nodes)))
    for slot in range(3):
        parts.append(_encode_int_column([entry[slot] for entry in nodes]))
    parts.append(_encode_varint(len(objects)))
    for slot in range(4):
        parts.append(_encode_int_column([entry[slot] for entry in objects]))
    parts.append(_encode_varint(env_delta))
    parts.append(_encode_varint(len(batch)))
    parts.append(_encode_varint(len(groups)))
    for opcode, positions in groups.items():
        arity = layouts[opcode][0]
        parts.append(bytes((opcode,)))
        parts.append(_encode_varint(len(positions)))
        parts.append(_encode_positions(positions))
        parts.append(_encode_clock_column([batch[i][1] for i in positions]))
        for slot in range(2, arity):
            parts.append(_encode_int_column([batch[i][slot] for i in positions]))
    return b"".join(parts)


class ColumnarChunk:
    """A decoded binary chunk: column-resident, tuples materialized lazily.

    Satisfies the :class:`~repro.jsvm.hooks.TraceChunk` surface (``strings``,
    ``nodes``, ``objects``, ``env_delta``, ``events``) and additionally
    offers :meth:`events_sparse` — the replayer's columnar fast path, which
    skips tuple-building for whole opcode groups nobody subscribed to.
    """

    __slots__ = ("index", "strings", "nodes", "objects", "env_delta", "_n", "_groups", "_events")

    def __init__(self, index, strings, nodes, objects, env_delta, n_events, groups):
        self.index = index
        self.strings = strings
        self.nodes = nodes
        self.objects = objects
        self.env_delta = env_delta
        self._n = n_events
        #: ``[(opcode, positions, (clocks, slot2, slot3, ...)), ...]``
        self._groups = groups
        self._events: Optional[list] = None

    @property
    def events(self):
        if self._events is None:
            events = self._scatter(None)
            if events.count(None):
                raise _trace_error(
                    "trace chunk opcode groups do not cover every event slot"
                )
            self._events = events
        return self._events

    def events_sparse(self, wanted_opcodes):
        """Event list with ``None`` holes where no wanted opcode lives.

        Returns the fully materialized list when one already exists (the
        holes check then already ran); otherwise only the wanted groups are
        zipped into tuples — unsubscribed statement floods cost nothing.
        """
        if self._events is not None:
            return self._events
        return self._scatter(wanted_opcodes)

    def group_counts(self) -> Dict[int, int]:
        return {opcode: len(positions) for opcode, positions, _cols in self._groups}

    def _scatter(self, wanted):
        events: List[Any] = [None] * self._n
        for opcode, positions, columns in self._groups:
            if wanted is not None and opcode not in wanted:
                continue
            count = len(positions)
            try:
                for position, record in zip(
                    positions, zip((opcode,) * count, *columns)
                ):
                    events[position] = record
            except IndexError as exc:
                raise _trace_error(
                    f"trace chunk event position out of range: {exc}"
                ) from exc
        return events


def _decode_chunk_body(
    body,
    expect_index: int,
    seen_strings: int,
    seen_nodes: int,
    seen_objects: int,
    seen_envs: int,
) -> ColumnarChunk:
    from .hooks import Trace, _validate_records

    layouts = Trace._RECORD_LAYOUT
    index, pos = _decode_varint(body, 0)
    if index != expect_index:
        raise _trace_error(
            f"chunk sequence broken: expected chunk {expect_index}, got {index}"
        )
    strings, pos = _decode_string_table(body, pos)
    string_count = seen_strings + len(strings)

    node_count_new, pos = _decode_varint(body, pos)
    node_cols = []
    for _slot in range(3):
        column, pos, _plain = _decode_block(body, pos)
        if len(column) != node_count_new:
            raise _trace_error("node table column count mismatch")
        node_cols.append(column)
    nodes = [list(entry) for entry in zip(*node_cols)] if node_count_new else []
    node_count = seen_nodes + node_count_new

    object_count_new, pos = _decode_varint(body, pos)
    object_cols = []
    for _slot in range(4):
        column, pos, _plain = _decode_block(body, pos)
        if len(column) != object_count_new:
            raise _trace_error("object table column count mismatch")
        object_cols.append(column)
    objects = [list(entry) for entry in zip(*object_cols)] if object_count_new else []
    object_count = seen_objects + object_count_new

    env_delta, pos = _decode_varint(body, pos)
    env_count = seen_envs + env_delta

    # Intern-table referential integrity (bulk where the columns are ints).
    try:
        if nodes:
            kinds = node_cols[2]
            if not (0 <= min(kinds) and max(kinds) < string_count):
                raise _trace_error("node kind index out of range in trace chunk")
        if objects:
            class_names = object_cols[1]
            callable_names = object_cols[3]
            if not (0 <= min(class_names) and max(class_names) < string_count):
                raise _trace_error("object class index out of range in trace chunk")
            if not (-1 <= min(callable_names) and max(callable_names) < string_count):
                raise _trace_error("object name index out of range in trace chunk")
    except TypeError as exc:
        raise _trace_error(f"malformed trace intern table: {exc}") from exc

    n_events, pos = _decode_varint(body, pos)
    n_groups, pos = _decode_varint(body, pos)
    groups = []
    total = 0
    counts = (string_count, node_count, object_count, env_count)
    for _g in range(n_groups):
        if pos >= len(body):
            raise _trace_error("trace chunk group header is truncated")
        opcode = body[pos]
        layout = layouts.get(opcode)
        if layout is None:
            raise _trace_error(f"unknown opcode {opcode} in trace chunk")
        count, pos = _decode_varint(body, pos + 1)
        if count == 0:
            raise _trace_error("empty opcode group in trace chunk")
        positions, pos = _decode_positions(body, pos, count, n_events)
        clocks, pos, _plain = _decode_block(body, pos)
        if len(clocks) != count:
            raise _trace_error("clock column count mismatch in trace chunk")
        columns = [clocks]
        plainly_typed = True
        for _slot in range(2, layout[0]):
            column, pos, plain = _decode_block(body, pos)
            if len(column) != count:
                raise _trace_error("operand column count mismatch in trace chunk")
            if not plain:
                plainly_typed = False
            columns.append(column)
        _validate_group(
            opcode, layout, columns, counts, plainly_typed, _validate_records
        )
        groups.append((opcode, positions, tuple(columns)))
        total += count
    if total != n_events:
        raise _trace_error(
            f"trace chunk groups cover {total} events but the chunk declares "
            f"{n_events}"
        )
    if pos != len(body):
        raise _trace_error("trailing bytes after the last trace chunk group")
    return ColumnarChunk(index, strings, nodes, objects, env_delta, n_events, groups)


def _decode_positions(body, pos: int, count: int, n_events: int):
    """Decode a positions column and bulk-verify strict monotonicity."""
    if pos + 3 > len(body):
        raise _trace_error("trace positions block is truncated")
    order = body[pos + 1]
    positions, end, plain = _decode_block(body, pos)
    if not plain:
        raise _trace_error("trace chunk positions column is not integer-typed")
    if len(positions) != count:
        raise _trace_error("positions column count mismatch in trace chunk")
    if order == 1:
        # _decode_block already accumulated; re-derive cheap delta facts from
        # the endpoints plus a single bulk pairwise check only when needed.
        if positions[0] < 0 or positions[-1] >= n_events:
            raise _trace_error("trace chunk event position out of range")
        if count > 1 and not _strictly_increasing(positions):
            raise _trace_error("trace chunk positions are not strictly increasing")
    else:
        if not positions or min(positions) < 0 or max(positions) >= n_events:
            raise _trace_error("trace chunk event position out of range")
        if not _strictly_increasing(positions):
            raise _trace_error("trace chunk positions are not strictly increasing")
    return positions, end


def _strictly_increasing(values: List[int]) -> bool:
    # all(map(lt, ...)) over the pairwise shift runs entirely in C.
    return all(map(operator.lt, values, islice(values, 1, None)))


def _validate_group(
    opcode, layout, columns, counts, plainly_typed, validate_records
) -> None:
    """Columnar index validation against *cumulative* intern-table sizes.

    When every operand column decoded through an integer kind
    (``plainly_typed``), index checks run as C-speed min/max per the record
    layout; a group carrying any JSON-fallback column is validated
    per-record through the shared v1 validator instead.
    """
    string_count, node_count, object_count, env_count = counts
    _arity, node_at, obj_at, env_at, string_at = layout
    if not plainly_typed:
        count = len(columns[0])
        records = list(zip((opcode,) * count, *columns))
        validate_records(records, string_count, node_count, object_count, env_count)
        return
    for position in node_at:
        column = columns[position - 1]
        if column and not (-1 <= min(column) and max(column) < node_count):
            raise _trace_error(
                f"node index out of range in opcode-{opcode} column"
            )
    for position in obj_at:
        column = columns[position - 1]
        if column and not (0 <= min(column) and max(column) < object_count):
            raise _trace_error(
                f"object index out of range in opcode-{opcode} column"
            )
    for position in env_at:
        column = columns[position - 1]
        if column and not (0 <= min(column) and max(column) < env_count):
            raise _trace_error(
                f"environment index out of range in opcode-{opcode} column"
            )
    for position in string_at:
        column = columns[position - 1]
        if column and not (0 <= min(column) and max(column) < string_count):
            raise _trace_error(
                f"string index out of range in opcode-{opcode} column"
            )


# ===========================================================================
# writer
# ===========================================================================
class _CountingSink:
    """Byte-offset-tracking wrapper so footer offsets address the *logical*
    stream (identical for raw files and the gzip-wrapped variant)."""

    __slots__ = ("_handle", "offset")

    def __init__(self, handle) -> None:
        self._handle = handle
        self.offset = 0

    def write(self, data: bytes) -> None:
        self._handle.write(data)
        self.offset += len(data)


def write_binary_trace(trace, path: str, chunk_events: Optional[int] = None) -> int:
    """Serialize ``trace`` to ``path`` in the v2 binary container.

    Returns the number of chunks written.  ``chunk_events`` bounds events per
    chunk (``None``/non-positive → one chunk).  A ``.gz`` path gets a gzip
    wrapper (offsets then address the decompressed stream; such files decode
    from memory instead of mmap).
    """
    from .hooks import _chunk_deltas, stream_chunk_events

    if chunk_events is None:
        chunk_events = stream_chunk_events()
    if chunk_events <= 0:
        chunk_events = max(1, len(trace.events))
    chunk_count = max(1, -(-len(trace.events) // chunk_events))
    header = {
        "format": BINARY_TRACE_FORMAT,
        "container": BINARY_CONTAINER_VERSION,
        "version": trace.version,
        "mask": trace.mask,
        "workload": trace.workload,
        "fingerprint": trace.fingerprint,
        "ms_per_op": trace.ms_per_op,
        "start_ms": trace.start_ms,
        "end_ms": trace.end_ms,
        "env_count": trace.env_count,
        "dropped": list(trace.dropped),
        "digest": trace.digest(),
        "events": len(trace.events),
        "chunk_events": chunk_events,
        "chunks": chunk_count,
    }
    header_blob = json.dumps(header, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    raw = gzip.open(path, "wb") if str(path).endswith(".gz") else io.open(path, "wb")
    offsets: List[int] = []
    written = 0
    with raw:
        sink = _CountingSink(raw)
        sink.write(BINARY_MAGIC)
        sink.write(_U32.pack(len(header_blob)))
        sink.write(header_blob)
        for index, (batch, strings, nodes, objects, env_delta) in enumerate(
            _chunk_deltas(trace, chunk_events)
        ):
            offsets.append(sink.offset)
            body = _encode_chunk(trace, index, batch, strings, nodes, objects, env_delta)
            sink.write(_U32.pack(len(body)))
            sink.write(body)
            written += 1
        footer = bytearray()
        footer += _encode_varint(written)
        footer += _encode_varint(len(trace.events))
        for offset in offsets:
            footer += _U64.pack(offset)
        sink.write(bytes(footer))
        sink.write(_U32.pack(len(footer)))
        sink.write(BINARY_END_MAGIC)
    if written != chunk_count:  # pragma: no cover - arithmetic invariant
        raise _trace_error("binary trace writer lost a chunk")
    return written


# ===========================================================================
# reader
# ===========================================================================
class BinaryTraceSource:
    """A random-access, mmap-backed handle on a v2 binary trace file.

    Mirrors the :class:`~repro.jsvm.hooks.TraceFileSource` surface: header
    provenance resident, ``chunks()`` re-iterable and validating, ``load()``
    digest-checked, corruption always a ``TraceFormatError``.  The backing
    buffer is an ``mmap`` of the segment file whenever possible, so replaying
    processes share one page-cache copy of the trace (zero-copy pool
    attach); gzip-wrapped or in-memory payloads fall back to a plain bytes
    buffer transparently.
    """

    encoding = "binary"

    def __init__(self, path: str, buffer=None) -> None:
        from .hooks import TRACE_SCHEMA_VERSION, TraceVersionError

        self.path = str(path)
        self._mmap = None
        self._file = None
        if buffer is None:
            try:
                self._file = io.open(self.path, "rb")
                try:
                    self._mmap = mmap.mmap(
                        self._file.fileno(), 0, access=mmap.ACCESS_READ
                    )
                    buffer = self._mmap
                except (ValueError, OSError):
                    # Empty or unmappable file: fall back to a resident copy.
                    self._file.seek(0)
                    buffer = self._file.read()
            except OSError as exc:
                raise _trace_error(
                    f"cannot read trace file {self.path!r}: {exc}"
                ) from exc
        self._buf = buffer
        buf = self._buf
        size = len(buf)
        if size < len(BINARY_MAGIC) + 4 or bytes(buf[: len(BINARY_MAGIC)]) != BINARY_MAGIC:
            raise _trace_error(
                f"trace file {self.path!r} is not a v2 binary trace "
                "(bad magic bytes)"
            )
        header_len = _U32.unpack(buf[8:12])[0]
        header_end = 12 + header_len
        if header_end + 12 + len(BINARY_END_MAGIC) > size:
            raise _trace_error(f"binary trace {self.path!r} is truncated")
        try:
            header = json.loads(bytes(buf[12:header_end]).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _trace_error(
                f"binary trace {self.path!r} header is corrupt: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("format") != BINARY_TRACE_FORMAT:
            raise _trace_error(
                f"binary trace {self.path!r} header is not "
                f"{BINARY_TRACE_FORMAT!r}"
            )
        version = header.get("version")
        if version != TRACE_SCHEMA_VERSION:
            raise TraceVersionError(
                f"unsupported trace schema version {version!r} "
                f"(this build reads version {TRACE_SCHEMA_VERSION})"
            )
        try:
            self.version = int(version)
            self.mask = int(header["mask"])
            self.workload = str(header["workload"])
            self.fingerprint = str(header["fingerprint"])
            self.ms_per_op = float(header["ms_per_op"])
            self.start_ms = float(header["start_ms"])
            self.end_ms = float(header["end_ms"])
            self.env_count = int(header["env_count"])
            self.dropped = tuple(header.get("dropped", ()))
            self.event_count = int(header["events"])
            self.chunk_events = int(header["chunk_events"])
            self._chunk_count = int(header["chunks"])
            self._digest = str(header["digest"])
        except (KeyError, TypeError, ValueError) as exc:
            raise _trace_error(
                f"malformed binary trace header in {self.path!r}: {exc}"
            ) from exc

        # Footer: offsets table anchored by the trailing magic.
        if bytes(buf[size - len(BINARY_END_MAGIC) :]) != BINARY_END_MAGIC:
            raise _trace_error(
                f"binary trace {self.path!r} is truncated (missing end marker)"
            )
        footer_len = _U32.unpack(buf[size - 12 : size - 8])[0]
        footer_start = size - 12 - footer_len
        if footer_start < header_end:
            raise _trace_error(f"binary trace {self.path!r} footer overruns the file")
        footer = bytes(buf[footer_start : size - 12])
        chunk_count, at = _decode_varint(footer, 0)
        events_total, at = _decode_varint(footer, at)
        if chunk_count != self._chunk_count or events_total != self.event_count:
            raise _trace_error(
                f"binary trace {self.path!r} footer does not match its header "
                f"({chunk_count} chunks/{events_total} events vs "
                f"{self._chunk_count}/{self.event_count})"
            )
        if len(footer) - at != 8 * chunk_count:
            raise _trace_error(
                f"binary trace {self.path!r} footer offset index is malformed"
            )
        offsets = [
            _U64.unpack_from(footer, at + 8 * i)[0] for i in range(chunk_count)
        ]
        previous = header_end - 1
        for offset in offsets:
            if not previous < offset < footer_start:
                raise _trace_error(
                    f"binary trace {self.path!r} footer offset index is out of "
                    "order or out of bounds"
                )
            previous = offset
        self._offsets = offsets
        self._data_end = footer_start

    @classmethod
    def from_bytes(cls, payload: bytes, path: str = "<memory>") -> "BinaryTraceSource":
        """A source over an in-memory payload (e.g. a gzip-wrapped file)."""
        return cls(path, buffer=payload)

    def close(self) -> None:
        if self._mmap is not None:
            self._buf = b""
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    # ------------------------------------------------------------- identity
    def covers(self, required_mask: int) -> bool:
        return not (required_mask & ~self.mask)

    def digest(self) -> str:
        """The full-content digest recorded in the header."""
        return self._digest

    def chunk_count(self) -> int:
        return self._chunk_count

    # ------------------------------------------------------------- streaming
    def chunks(self) -> Iterator[ColumnarChunk]:
        """Stream validated chunks from the offset index; O(chunk) resident."""
        buf = self._buf
        seen_strings = seen_nodes = seen_objects = seen_envs = 0
        total_events = 0
        try:
            for expect_index, offset in enumerate(self._offsets):
                body_len = _U32.unpack(buf[offset : offset + 4])[0]
                body_end = offset + 4 + body_len
                if body_end > self._data_end:
                    raise _trace_error(
                        f"binary trace {self.path!r} chunk {expect_index} "
                        "overruns the data region"
                    )
                body = bytes(buf[offset + 4 : body_end])
                chunk = _decode_chunk_body(
                    body,
                    expect_index,
                    seen_strings,
                    seen_nodes,
                    seen_objects,
                    seen_envs,
                )
                seen_strings += len(chunk.strings)
                seen_nodes += len(chunk.nodes)
                seen_objects += len(chunk.objects)
                seen_envs += chunk.env_delta
                total_events += chunk._n
                yield chunk
        except struct.error as exc:
            raise _trace_error(
                f"binary trace {self.path!r} is truncated or corrupt: {exc}"
            ) from exc
        if total_events != self.event_count:
            raise _trace_error(
                f"binary trace {self.path!r} header promises "
                f"{self.event_count} events but the chunks hold {total_events}"
            )
        if seen_envs != self.env_count:
            raise _trace_error(
                f"binary trace {self.path!r} environment deltas do not sum to "
                "the header count"
            )

    # ------------------------------------------------------------ whole-file
    def verify(self) -> "BinaryTraceSource":
        """Decode and validate every chunk (bounded memory), raising on any
        corruption.  Event tuples are materialized per chunk so the position
        coverage check runs too."""
        for chunk in self.chunks():
            chunk.events  # noqa: B018 - forces the scatter/coverage check
        return self

    def load(self):
        """Materialize the full :class:`~repro.jsvm.hooks.Trace`, checking
        the header digest (content identity across encodings)."""
        from .hooks import Trace

        trace = Trace(
            mask=self.mask,
            workload=self.workload,
            fingerprint=self.fingerprint,
            ms_per_op=self.ms_per_op,
            start_ms=self.start_ms,
            end_ms=self.end_ms,
            version=self.version,
            env_count=self.env_count,
            dropped=self.dropped,
        )
        for chunk in self.chunks():
            trace.strings.extend(chunk.strings)
            trace.nodes.extend(chunk.nodes)
            trace.objects.extend(chunk.objects)
            trace.events.extend(chunk.events)
        if trace.digest() != self._digest:
            raise _trace_error(
                f"binary trace {self.path!r} content does not match its "
                "header digest"
            )
        return trace

    def event_counts(self) -> Dict[str, int]:
        """Record count per event name, from group headers alone (no tuple
        materialization)."""
        from .hooks import TRACE_OP_NAMES

        counts: Dict[str, int] = {}
        for chunk in self.chunks():
            for opcode, count in chunk.group_counts().items():
                name = TRACE_OP_NAMES.get(opcode, f"op{opcode}")
                counts[name] = counts.get(name, 0) + count
        return counts

    def table_counts(self) -> Dict[str, int]:
        """Intern-table sizes, accumulated in one streaming pass."""
        strings = nodes = objects = 0
        for chunk in self.chunks():
            strings += len(chunk.strings)
            nodes += len(chunk.nodes)
            objects += len(chunk.objects)
        return {"strings": strings, "nodes": nodes, "objects": objects}
