"""AST node definitions for the mini-JavaScript language.

Every node carries:

* ``line``/``column`` — source position (used in JS-CERES reports, which
  identify loops by ``for(line 6)`` style labels, mirroring the paper), and
* ``node_id`` — a per-program unique integer assigned by the parser, used by
  the instrumentation layer to identify syntactic loops and object creation
  sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = 0
    column: int = 0
    node_id: int = -1

    @property
    def kind(self) -> str:
        """Short class-name identifier (useful for dispatch and reports)."""
        return type(self).__name__


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class NumberLiteral(Node):
    value: float = 0.0


@dataclass
class StringLiteral(Node):
    value: str = ""


@dataclass
class BooleanLiteral(Node):
    value: bool = False


@dataclass
class NullLiteral(Node):
    pass


@dataclass
class UndefinedLiteral(Node):
    pass


@dataclass
class Identifier(Node):
    name: str = ""


@dataclass
class ThisExpression(Node):
    pass


@dataclass
class ArrayLiteral(Node):
    elements: List[Node] = field(default_factory=list)


@dataclass
class Property(Node):
    key: str = ""
    value: Optional[Node] = None


@dataclass
class ObjectLiteral(Node):
    properties: List[Property] = field(default_factory=list)


@dataclass
class FunctionExpression(Node):
    name: Optional[str] = None
    params: List[str] = field(default_factory=list)
    body: Optional["BlockStatement"] = None
    is_arrow: bool = False


@dataclass
class UnaryExpression(Node):
    operator: str = ""
    operand: Optional[Node] = None


@dataclass
class UpdateExpression(Node):
    """``++x`` / ``x++`` / ``--x`` / ``x--``."""

    operator: str = "++"
    target: Optional[Node] = None
    prefix: bool = True


@dataclass
class BinaryExpression(Node):
    operator: str = ""
    left: Optional[Node] = None
    right: Optional[Node] = None


@dataclass
class LogicalExpression(Node):
    operator: str = "&&"
    left: Optional[Node] = None
    right: Optional[Node] = None


@dataclass
class AssignmentExpression(Node):
    operator: str = "="
    target: Optional[Node] = None
    value: Optional[Node] = None


@dataclass
class ConditionalExpression(Node):
    test: Optional[Node] = None
    consequent: Optional[Node] = None
    alternate: Optional[Node] = None


@dataclass
class CallExpression(Node):
    callee: Optional[Node] = None
    arguments: List[Node] = field(default_factory=list)


@dataclass
class NewExpression(Node):
    callee: Optional[Node] = None
    arguments: List[Node] = field(default_factory=list)


@dataclass
class MemberExpression(Node):
    object: Optional[Node] = None
    property: Optional[Node] = None
    computed: bool = False  # True for obj[expr], False for obj.name


@dataclass
class SequenceExpression(Node):
    expressions: List[Node] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class VariableDeclarator(Node):
    name: str = ""
    init: Optional[Node] = None


@dataclass
class VariableDeclaration(Node):
    kind_keyword: str = "var"  # "var" | "let" | "const"
    declarations: List[VariableDeclarator] = field(default_factory=list)


@dataclass
class FunctionDeclaration(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: Optional["BlockStatement"] = None


@dataclass
class BlockStatement(Node):
    body: List[Node] = field(default_factory=list)


@dataclass
class ExpressionStatement(Node):
    expression: Optional[Node] = None


@dataclass
class IfStatement(Node):
    test: Optional[Node] = None
    consequent: Optional[Node] = None
    alternate: Optional[Node] = None


@dataclass
class ForStatement(Node):
    init: Optional[Node] = None
    test: Optional[Node] = None
    update: Optional[Node] = None
    body: Optional[Node] = None


@dataclass
class ForInStatement(Node):
    """Covers both ``for (x in obj)`` and ``for (x of arr)``."""

    declaration_kind: Optional[str] = None  # None when the target is a bare identifier
    target_name: str = ""
    iterable: Optional[Node] = None
    body: Optional[Node] = None
    of_loop: bool = False


@dataclass
class WhileStatement(Node):
    test: Optional[Node] = None
    body: Optional[Node] = None


@dataclass
class DoWhileStatement(Node):
    body: Optional[Node] = None
    test: Optional[Node] = None


@dataclass
class ReturnStatement(Node):
    argument: Optional[Node] = None


@dataclass
class BreakStatement(Node):
    pass


@dataclass
class ContinueStatement(Node):
    pass


@dataclass
class ThrowStatement(Node):
    argument: Optional[Node] = None


@dataclass
class CatchClause(Node):
    param: Optional[str] = None
    body: Optional[BlockStatement] = None


@dataclass
class TryStatement(Node):
    block: Optional[BlockStatement] = None
    handler: Optional[CatchClause] = None
    finalizer: Optional[BlockStatement] = None


@dataclass
class SwitchCase(Node):
    test: Optional[Node] = None  # None for "default"
    body: List[Node] = field(default_factory=list)


@dataclass
class SwitchStatement(Node):
    discriminant: Optional[Node] = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class EmptyStatement(Node):
    pass


@dataclass
class Program(Node):
    body: List[Node] = field(default_factory=list)
    source: str = ""
    name: str = "<program>"


#: AST node classes that represent syntactic loops (the unit of analysis in
#: JS-CERES loop profiling and dependence analysis).
LOOP_NODE_TYPES: Tuple[type, ...] = (
    ForStatement,
    ForInStatement,
    WhileStatement,
    DoWhileStatement,
)

#: AST node classes that create new guest objects at runtime. Section 3.3 of
#: the paper instruments "each object creation site in the program (by any
#: means, new, function, Object.create)".
CREATION_SITE_TYPES: Tuple[type, ...] = (
    ObjectLiteral,
    ArrayLiteral,
    NewExpression,
    FunctionExpression,
    FunctionDeclaration,
)


def iter_child_nodes(node: Node):
    """Yield the direct child :class:`Node` instances of ``node``.

    This walks dataclass fields generically so analysis passes do not need a
    per-node-type visitor just to traverse the tree.
    """
    for field_name in node.__dataclass_fields__:
        if field_name in ("line", "column", "node_id"):
            continue
        value = getattr(node, field_name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield item


def walk(node: Node):
    """Yield ``node`` and all of its descendants in depth-first pre-order."""
    yield node
    for child in iter_child_nodes(node):
        yield from walk(child)
