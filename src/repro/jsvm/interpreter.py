"""Execution core for the mini-JavaScript language.

The interpreter provides faithful ES5-style semantics (function-scoped
``var``, closures, prototype chains, ``this`` binding) plus a complete set of
instrumentation events (see :mod:`repro.jsvm.hooks`) so that the JS-CERES
reproduction can observe loops, variable accesses, property accesses and
object creation exactly as the paper's proxy-instrumented code does.

Execution is *compiled*: the AST is lowered once into a tree of Python
closures (see :mod:`repro.jsvm.compiler`) — a precompiled node-kind →
handler table with operators, member keys and child handlers resolved at
compile time.  Instrumentation dispatch is tiered: the interpreter caches the
hook bus's subscriber mask in :attr:`Interpreter.trace_mask` and compiled
code consults that single integer once per construct, so uninstrumented runs
take an inline fast path with zero event-dispatch cost.

Time is virtual: every interpreted operation advances a
:class:`~repro.jsvm.clock.VirtualClock`, making all profiling results
deterministic and platform-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from . import ast_nodes as ast
from .builtins import get_number_property, get_string_property, install_builtins
from .bytecode import (
    ensure_bytecode_body,
    ensure_bytecode_program,
    execute as execute_bytecode,
)
from .clock import VirtualClock
from .compiler import ReturnSignal, ensure_program, ensure_statement_list, run_hoist_plan
from .errors import InterpreterLimitError, JSTypeError
from .hooks import EV_ENV, EV_FUNCTION, EV_HOST, EV_OBJECT, EV_PROP, EV_VAR, HookBus
from .parser import parse
from .scope import _NO_CONSTS, HOLE, Environment
from .tiers import TIER_BYTECODE, TIER_CLOSURE, resolve_tier
from .values import (
    NULL,
    UNDEFINED,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    to_string,
)


@dataclass
class CallFrame:
    """One entry of the guest call stack (used by the sampling profiler)."""

    function_name: str
    call_line: int = 0
    is_native: bool = False


@dataclass
class ExecutionStats:
    """Aggregate counters maintained by the interpreter itself."""

    ops: int = 0
    statements: int = 0
    calls: int = 0
    loop_iterations: int = 0
    objects_created: int = 0
    property_reads: int = 0
    property_writes: int = 0


class Interpreter:
    """Evaluates mini-JavaScript programs.

    Parameters
    ----------
    hooks:
        Optional :class:`HookBus`; a fresh one is created if omitted.
    clock:
        Optional :class:`VirtualClock` shared with browser components.
    rng_seed:
        Seed for ``Math.random`` (deterministic by default).
    max_ops:
        Safety limit on the number of interpreted operations.
    max_call_depth:
        Safety limit on guest recursion depth.
    tier:
        Execution-tier policy (see :mod:`repro.jsvm.tiers`): ``"auto"``
        (default), ``"bytecode"`` or ``"closure"``.  ``None`` resolves to
        the session default, honouring ``REPRO_FORCE_CLOSURE_TIER``.
    """

    def __init__(
        self,
        hooks: Optional[HookBus] = None,
        clock: Optional[VirtualClock] = None,
        rng_seed: int = 20150207,
        max_ops: int = 200_000_000,
        max_call_depth: int = 400,
        tier: Optional[str] = None,
    ) -> None:
        import random

        self.hooks = hooks if hooks is not None else HookBus()
        #: Resolved execution-tier policy for this interpreter.
        self.tier = resolve_tier(tier)
        #: Whether compiled ``for`` loops may enter the numeric fast tier.
        self.fast_nests = self.tier != TIER_CLOSURE
        #: Cached copy of ``hooks.mask`` — the per-event subscriber mask the
        #: compiled code consults; kept in sync by :meth:`HookBus.bind`.
        self.trace_mask = 0
        self.hooks.bind(self)
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = random.Random(rng_seed)
        self.max_ops = max_ops
        self.max_call_depth = max_call_depth
        self.stats = ExecutionStats()
        #: Optional speculation controller (see :mod:`repro.parallel.speculative`):
        #: compiled ``for``/``for-in`` loops offer it each new loop instance.
        self.speculation = None
        #: Optional loop-node-id → iteration-index-set map.  When set, compiled
        #: counted loops execute only the listed iterations' bodies (induction
        #: scaffolding still runs) — the chunk-replay mode of the speculative
        #: executor.  ``None`` (the default) is the zero-overhead fast path.
        self.iteration_filter = None

        self.global_env = Environment(is_function_scope=True, label="global")
        self.call_stack: List[CallFrame] = [CallFrame("(global)")]
        self.console_output: List[str] = []

        # Realm intrinsics are populated by install_builtins().
        self.object_prototype = JSObject(class_name="Object.prototype")
        self.array_prototype = JSObject(prototype=self.object_prototype, class_name="Array.prototype")
        self.function_prototype = JSObject(
            prototype=self.object_prototype, class_name="Function.prototype"
        )
        install_builtins(self)

    # ------------------------------------------------------------------ api
    def run(self, program: ast.Program, env: Optional[Environment] = None) -> Any:
        """Execute a parsed :class:`Program`; returns the last statement value."""
        env = env or self.global_env
        if self.tier == TIER_BYTECODE:
            plan, code = ensure_bytecode_program(program)
            run_hoist_plan(plan, self, env)
            return execute_bytecode(code, self, env)
        plan, statements = ensure_program(program)
        run_hoist_plan(plan, self, env)
        result: Any = UNDEFINED
        for statement in statements:
            result = statement(self, env)
        return result

    def run_source(self, source: str, name: str = "<program>") -> Any:
        """Parse and execute ``source``."""
        return self.run(parse(source, name=name))

    def call_function(
        self,
        func: Any,
        this: Any = UNDEFINED,
        args: Optional[List[Any]] = None,
        call_node: Optional[ast.Node] = None,
    ) -> Any:
        """Invoke a guest or native function from host code or builtins."""
        args = args or []
        if isinstance(func, NativeFunction):
            frame = CallFrame(func.name, is_native=True)
            self.call_stack.append(frame)
            if self.trace_mask & EV_FUNCTION:
                self.hooks.function_enter(self, func, call_node)
            try:
                return func.func(self, this, args)
            finally:
                if self.trace_mask & EV_FUNCTION:
                    self.hooks.function_exit(self, func)
                self.call_stack.pop()
        if not isinstance(func, JSFunction):
            raise JSTypeError(
                f"{to_string(func)} is not a function",
                getattr(call_node, "line", 0),
            )
        call_stack = self.call_stack
        if len(call_stack) >= self.max_call_depth:
            raise InterpreterLimitError("maximum guest call depth exceeded")

        body = func.body
        if self.tier == TIER_BYTECODE:
            plan, bytecode_body = ensure_bytecode_body(body)
            statements = None
        else:
            plan, statements = ensure_statement_list(body, body.body)
            bytecode_body = None
        info = getattr(body, "_fn_scope", None)
        if info is not None:
            # Slot-addressed prologue: the frame's shape is static, so the
            # slots and the mirror dict are filled directly — this/arguments
            # bindings are elided entirely for frames that provably cannot be
            # captured (no inner functions) and never mention them.
            env = Environment.__new__(Environment)
            env.parent = func.closure
            env.is_function_scope = True
            env.label = func.name
            env.consts = _NO_CONSTS
            env.layout = info.layout
            slots = env.slots = [HOLE] * info.layout.size
            bindings = env.bindings = {}
            if self.trace_mask & EV_ENV:
                self.hooks.env_created(self, env, "function")
            this_idx = info.this_idx
            if this_idx is not None:
                slots[this_idx] = this
                bindings["this"] = this
            args_idx = info.args_idx
            if args_idx is not None:
                arguments_array = JSArray(list(args), prototype=self.array_prototype)
                slots[args_idx] = arguments_array
                bindings["arguments"] = arguments_array
            params = func.params
            param_idx = info.param_idx
            arg_count = len(args)
            for index in range(len(param_idx)):
                value = args[index] if index < arg_count else UNDEFINED
                slots[param_idx[index]] = value
                bindings[params[index]] = value
        else:
            env = Environment(parent=func.closure, is_function_scope=True, label=func.name)
            if self.trace_mask & EV_ENV:
                self.hooks.env_created(self, env, "function")
            env.declare_let("this", this)
            arguments_array = JSArray(list(args), prototype=self.array_prototype)
            env.declare_let("arguments", arguments_array)
            bindings = env.bindings
            for index, param in enumerate(func.params):
                bindings[param] = args[index] if index < len(args) else UNDEFINED

        frame = CallFrame(func.name, call_line=getattr(call_node, "line", 0))
        call_stack.append(frame)
        self.stats.calls += 1
        if self.trace_mask & EV_FUNCTION:
            self.hooks.function_enter(self, func, call_node)
        try:
            if info is not None:
                for entry in info.plan:
                    if entry[0] == "var":
                        name = entry[2]
                        if name not in bindings:
                            slots[entry[1]] = UNDEFINED
                            bindings[name] = UNDEFINED
                    else:
                        declaration = entry[3]
                        declared = self.make_function(
                            declaration.name, declaration.params, declaration.body, env, declaration
                        )
                        slots[entry[1]] = declared
                        bindings[entry[2]] = declared
            else:
                run_hoist_plan(plan, self, env)
            if bytecode_body is not None:
                execute_bytecode(bytecode_body, self, env)
            else:
                for statement in statements:
                    statement(self, env)
            return UNDEFINED
        except ReturnSignal as signal:
            return signal.value
        finally:
            if self.trace_mask & EV_FUNCTION:
                self.hooks.function_exit(self, func)
            call_stack.pop()

    # ----------------------------------------------------------- utilities
    def make_object(self, creation_site: int = -1, node: Optional[ast.Node] = None) -> JSObject:
        obj = JSObject(prototype=self.object_prototype, creation_site=creation_site)
        self.stats.objects_created += 1
        if self.trace_mask & EV_OBJECT:
            self.hooks.object_created(self, obj, node)
        return obj

    def make_array(
        self, elements: Optional[List[Any]] = None, creation_site: int = -1, node: Optional[ast.Node] = None
    ) -> JSArray:
        arr = JSArray(elements or [], prototype=self.array_prototype, creation_site=creation_site)
        self.stats.objects_created += 1
        if self.trace_mask & EV_OBJECT:
            self.hooks.object_created(self, arr, node)
        return arr

    def make_function(
        self, name: str, params: List[str], body: ast.BlockStatement, closure: Environment, node: ast.Node
    ) -> JSFunction:
        func = JSFunction(
            name=name,
            params=params,
            body=body,
            closure=closure,
            prototype=self.function_prototype,
            creation_site=node.node_id,
            declaration_node=node,
        )
        proto = JSObject(prototype=self.object_prototype)
        proto.set("constructor", func)
        func.set("prototype", proto)
        self.stats.objects_created += 1
        if self.trace_mask & EV_OBJECT:
            self.hooks.object_created(self, func, node)
        return func

    def notify_host_access(self, category: str, detail: str = "", node: Optional[ast.Node] = None) -> None:
        """Called by browser shims when guest code touches host subsystems."""
        if self.trace_mask & EV_HOST:
            self.hooks.host_access(self, category, detail, node)

    def current_function_name(self) -> str:
        return self.call_stack[-1].function_name if self.call_stack else "(global)"

    def stack_snapshot(self) -> List[str]:
        """Names of functions currently on the guest call stack (outermost first)."""
        return [frame.function_name for frame in self.call_stack]

    # --------------------------------------------------------------- executing
    def _charge(self, cost: int = 1) -> None:
        stats = self.stats
        stats.ops += cost
        if stats.ops > self.max_ops:
            raise InterpreterLimitError("maximum operation count exceeded")
        # Inline of VirtualClock.tick_op: this runs once per interpreted
        # operation, so the extra call frame is worth avoiding.
        clock = self.clock
        clock._now_ms += clock.ms_per_op * cost
        if clock._listeners:
            now = clock._now_ms
            for listener in clock._listeners:
                listener(now)

    def _construct(self, constructor: Any, args: List[Any], node: ast.NewExpression) -> Any:
        """``new`` semantics once callee and arguments are evaluated."""
        if isinstance(constructor, NativeFunction):
            result = constructor.func(self, UNDEFINED, args)
            if isinstance(result, JSObject):
                result.creation_site = node.node_id
                if self.trace_mask & EV_OBJECT:
                    self.hooks.object_created(self, result, node)
            return result
        if not isinstance(constructor, JSFunction):
            raise JSTypeError("constructor is not a function", node.line)
        prototype = constructor.get("prototype")
        if not isinstance(prototype, JSObject):
            prototype = self.object_prototype
        instance = JSObject(prototype=prototype, class_name=constructor.name, creation_site=node.node_id)
        self.stats.objects_created += 1
        if self.trace_mask & EV_OBJECT:
            self.hooks.object_created(self, instance, node)
        result = self.call_function(constructor, instance, args, call_node=node)
        return result if isinstance(result, JSObject) else instance

    # ------------------------------------------------------- variable access
    def _set_variable(self, name: str, value: Any, env: Environment, node: ast.Node) -> None:
        holder = env.set(name, value)
        if self.trace_mask & EV_VAR:
            self.hooks.var_write(self, name, holder, value, node)

    # ------------------------------------------------------- property access
    def _get_property(self, obj: Any, key: str, node: ast.Node) -> Any:
        self.stats.property_reads += 1
        if isinstance(obj, JSObject):
            if self.trace_mask & EV_PROP:
                self.hooks.prop_read(self, obj, key, node)
            return obj.get(key)
        if isinstance(obj, str):
            return get_string_property(self, obj, key)
        if isinstance(obj, (int, float)) and not isinstance(obj, bool):
            return get_number_property(self, float(obj), key)
        if obj is UNDEFINED or obj is NULL:
            raise JSTypeError(
                f"cannot read property {key!r} of {to_string(obj)}", getattr(node, "line", 0)
            )
        return UNDEFINED

    def _set_property(self, obj: Any, key: str, value: Any, node: ast.Node) -> None:
        self.stats.property_writes += 1
        if obj is UNDEFINED or obj is NULL:
            raise JSTypeError(
                f"cannot set property {key!r} of {to_string(obj)}", getattr(node, "line", 0)
            )
        if not isinstance(obj, JSObject):
            return  # Writes to primitive wrappers are silently dropped, as in JS.
        if self.trace_mask & EV_PROP:
            self.hooks.prop_write(self, obj, key, value, node)
        obj.set(key, value)
