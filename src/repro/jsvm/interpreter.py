"""Tree-walking interpreter for the mini-JavaScript language.

The interpreter is deliberately a *straightforward* evaluator: its purpose is
not speed but faithful ES5-style semantics (function-scoped ``var``,
closures, prototype chains, ``this`` binding) plus a complete set of
instrumentation events (see :mod:`repro.jsvm.hooks`) so that the JS-CERES
reproduction can observe loops, variable accesses, property accesses and
object creation exactly as the paper's proxy-instrumented code does.

Time is virtual: every interpreted operation advances a
:class:`~repro.jsvm.clock.VirtualClock`, making all profiling results
deterministic and platform-independent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from . import ast_nodes as ast
from .builtins import get_number_property, get_string_property, install_builtins
from .clock import VirtualClock
from .errors import (
    InterpreterLimitError,
    JSReferenceError,
    JSRuntimeError,
    JSThrownValue,
    JSTypeError,
)
from .hooks import HookBus
from .parser import parse
from .scope import Environment
from .values import (
    NULL,
    UNDEFINED,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    is_callable,
    loose_equals,
    strict_equals,
    to_boolean,
    to_number,
    to_property_key,
    to_string,
    type_of,
)


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


@dataclass
class CallFrame:
    """One entry of the guest call stack (used by the sampling profiler)."""

    function_name: str
    call_line: int = 0
    is_native: bool = False


@dataclass
class ExecutionStats:
    """Aggregate counters maintained by the interpreter itself."""

    ops: int = 0
    statements: int = 0
    calls: int = 0
    loop_iterations: int = 0
    objects_created: int = 0
    property_reads: int = 0
    property_writes: int = 0


class Interpreter:
    """Evaluates mini-JavaScript programs.

    Parameters
    ----------
    hooks:
        Optional :class:`HookBus`; a fresh one is created if omitted.
    clock:
        Optional :class:`VirtualClock` shared with browser components.
    rng_seed:
        Seed for ``Math.random`` (deterministic by default).
    max_ops:
        Safety limit on the number of interpreted operations.
    max_call_depth:
        Safety limit on guest recursion depth.
    """

    def __init__(
        self,
        hooks: Optional[HookBus] = None,
        clock: Optional[VirtualClock] = None,
        rng_seed: int = 20150207,
        max_ops: int = 200_000_000,
        max_call_depth: int = 400,
    ) -> None:
        import random

        self.hooks = hooks if hooks is not None else HookBus()
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = random.Random(rng_seed)
        self.max_ops = max_ops
        self.max_call_depth = max_call_depth
        self.stats = ExecutionStats()

        self.global_env = Environment(is_function_scope=True, label="global")
        self.call_stack: List[CallFrame] = [CallFrame("(global)")]
        self.console_output: List[str] = []

        # Realm intrinsics are populated by install_builtins().
        self.object_prototype = JSObject(class_name="Object.prototype")
        self.array_prototype = JSObject(prototype=self.object_prototype, class_name="Array.prototype")
        self.function_prototype = JSObject(
            prototype=self.object_prototype, class_name="Function.prototype"
        )
        install_builtins(self)

        self._dispatch = {
            ast.NumberLiteral: self._eval_number,
            ast.StringLiteral: self._eval_string,
            ast.BooleanLiteral: self._eval_boolean,
            ast.NullLiteral: self._eval_null,
            ast.UndefinedLiteral: self._eval_undefined,
            ast.Identifier: self._eval_identifier,
            ast.ThisExpression: self._eval_this,
            ast.ArrayLiteral: self._eval_array_literal,
            ast.ObjectLiteral: self._eval_object_literal,
            ast.FunctionExpression: self._eval_function_expression,
            ast.UnaryExpression: self._eval_unary,
            ast.UpdateExpression: self._eval_update,
            ast.BinaryExpression: self._eval_binary,
            ast.LogicalExpression: self._eval_logical,
            ast.AssignmentExpression: self._eval_assignment,
            ast.ConditionalExpression: self._eval_conditional,
            ast.CallExpression: self._eval_call,
            ast.NewExpression: self._eval_new,
            ast.MemberExpression: self._eval_member,
            ast.SequenceExpression: self._eval_sequence,
        }
        self._stmt_dispatch = {
            ast.VariableDeclaration: self._exec_variable_declaration,
            ast.FunctionDeclaration: self._exec_function_declaration,
            ast.BlockStatement: self._exec_block,
            ast.ExpressionStatement: self._exec_expression_statement,
            ast.IfStatement: self._exec_if,
            ast.ForStatement: self._exec_for,
            ast.ForInStatement: self._exec_for_in,
            ast.WhileStatement: self._exec_while,
            ast.DoWhileStatement: self._exec_do_while,
            ast.ReturnStatement: self._exec_return,
            ast.BreakStatement: self._exec_break,
            ast.ContinueStatement: self._exec_continue,
            ast.ThrowStatement: self._exec_throw,
            ast.TryStatement: self._exec_try,
            ast.SwitchStatement: self._exec_switch,
            ast.EmptyStatement: self._exec_empty,
        }

    # ------------------------------------------------------------------ api
    def run(self, program: ast.Program, env: Optional[Environment] = None) -> Any:
        """Execute a parsed :class:`Program`; returns the last statement value."""
        env = env or self.global_env
        self._hoist(program.body, env)
        result: Any = UNDEFINED
        for statement in program.body:
            result = self._exec(statement, env)
        return result

    def run_source(self, source: str, name: str = "<program>") -> Any:
        """Parse and execute ``source``."""
        return self.run(parse(source, name=name))

    def call_function(
        self,
        func: Any,
        this: Any = UNDEFINED,
        args: Optional[List[Any]] = None,
        call_node: Optional[ast.Node] = None,
    ) -> Any:
        """Invoke a guest or native function from host code or builtins."""
        args = args or []
        if isinstance(func, NativeFunction):
            frame = CallFrame(func.name, is_native=True)
            self.call_stack.append(frame)
            if self.hooks.wants_functions:
                self.hooks.function_enter(self, func, call_node)
            try:
                return func.func(self, this, args)
            finally:
                if self.hooks.wants_functions:
                    self.hooks.function_exit(self, func)
                self.call_stack.pop()
        if not isinstance(func, JSFunction):
            raise JSTypeError(
                f"{to_string(func)} is not a function",
                getattr(call_node, "line", 0),
            )
        if len(self.call_stack) >= self.max_call_depth:
            raise InterpreterLimitError("maximum guest call depth exceeded")

        env = Environment(parent=func.closure, is_function_scope=True, label=func.name)
        if self.hooks.wants_envs:
            self.hooks.env_created(self, env, "function")
        env.declare_let("this", this)
        arguments_array = JSArray(list(args), prototype=self.array_prototype)
        env.declare_let("arguments", arguments_array)
        for index, param in enumerate(func.params):
            env.bindings[param] = args[index] if index < len(args) else UNDEFINED

        frame = CallFrame(func.name, call_line=getattr(call_node, "line", 0))
        self.call_stack.append(frame)
        self.stats.calls += 1
        if self.hooks.wants_functions:
            self.hooks.function_enter(self, func, call_node)
        try:
            self._hoist(func.body.body, env)
            for statement in func.body.body:
                self._exec(statement, env)
            return UNDEFINED
        except _ReturnSignal as signal:
            return signal.value
        finally:
            if self.hooks.wants_functions:
                self.hooks.function_exit(self, func)
            self.call_stack.pop()

    # ----------------------------------------------------------- utilities
    def make_object(self, creation_site: int = -1, node: Optional[ast.Node] = None) -> JSObject:
        obj = JSObject(prototype=self.object_prototype, creation_site=creation_site)
        self.stats.objects_created += 1
        if self.hooks.wants_objects:
            self.hooks.object_created(self, obj, node)
        return obj

    def make_array(
        self, elements: Optional[List[Any]] = None, creation_site: int = -1, node: Optional[ast.Node] = None
    ) -> JSArray:
        arr = JSArray(elements or [], prototype=self.array_prototype, creation_site=creation_site)
        self.stats.objects_created += 1
        if self.hooks.wants_objects:
            self.hooks.object_created(self, arr, node)
        return arr

    def make_function(
        self, name: str, params: List[str], body: ast.BlockStatement, closure: Environment, node: ast.Node
    ) -> JSFunction:
        func = JSFunction(
            name=name,
            params=params,
            body=body,
            closure=closure,
            prototype=self.function_prototype,
            creation_site=node.node_id,
            declaration_node=node,
        )
        proto = JSObject(prototype=self.object_prototype)
        proto.set("constructor", func)
        func.set("prototype", proto)
        self.stats.objects_created += 1
        if self.hooks.wants_objects:
            self.hooks.object_created(self, func, node)
        return func

    def notify_host_access(self, category: str, detail: str = "", node: Optional[ast.Node] = None) -> None:
        """Called by browser shims when guest code touches host subsystems."""
        if self.hooks.wants_host:
            self.hooks.host_access(self, category, detail, node)

    def current_function_name(self) -> str:
        return self.call_stack[-1].function_name if self.call_stack else "(global)"

    def stack_snapshot(self) -> List[str]:
        """Names of functions currently on the guest call stack (outermost first)."""
        return [frame.function_name for frame in self.call_stack]

    # --------------------------------------------------------------- hoisting
    def _hoist(self, statements: List[ast.Node], env: Environment) -> None:
        """Hoist ``var`` and function declarations to the enclosing function scope."""
        for statement in statements:
            self._hoist_statement(statement, env)

    def _hoist_statement(self, node: Optional[ast.Node], env: Environment) -> None:
        if node is None:
            return
        if isinstance(node, ast.VariableDeclaration):
            if node.kind_keyword == "var":
                for declarator in node.declarations:
                    env.declare_var(declarator.name, UNDEFINED)
        elif isinstance(node, ast.FunctionDeclaration):
            func = self.make_function(node.name, node.params, node.body, env, node)
            env.declare_var(node.name, func)
        elif isinstance(node, ast.BlockStatement):
            self._hoist(node.body, env)
        elif isinstance(node, ast.IfStatement):
            self._hoist_statement(node.consequent, env)
            self._hoist_statement(node.alternate, env)
        elif isinstance(node, ast.ForStatement):
            self._hoist_statement(node.init, env)
            self._hoist_statement(node.body, env)
        elif isinstance(node, ast.ForInStatement):
            if node.declaration_kind == "var":
                env.declare_var(node.target_name, UNDEFINED)
            self._hoist_statement(node.body, env)
        elif isinstance(node, (ast.WhileStatement, ast.DoWhileStatement)):
            self._hoist_statement(node.body, env)
        elif isinstance(node, ast.TryStatement):
            self._hoist_statement(node.block, env)
            if node.handler is not None:
                self._hoist_statement(node.handler.body, env)
            self._hoist_statement(node.finalizer, env)
        elif isinstance(node, ast.SwitchStatement):
            for case in node.cases:
                self._hoist(case.body, env)
        elif isinstance(node, ast.ExpressionStatement):
            pass

    # --------------------------------------------------------------- executing
    def _charge(self, cost: int = 1) -> None:
        self.stats.ops += cost
        if self.stats.ops > self.max_ops:
            raise InterpreterLimitError("maximum operation count exceeded")
        self.clock.tick_op(cost)

    def _exec(self, node: ast.Node, env: Environment) -> Any:
        self._charge()
        self.stats.statements += 1
        if self.hooks.wants_statements:
            self.hooks.statement(self, node)
        handler = self._stmt_dispatch.get(type(node))
        if handler is None:
            # Expressions can appear directly in statement lists (rare).
            return self._eval(node, env)
        return handler(node, env)

    def _exec_variable_declaration(self, node: ast.VariableDeclaration, env: Environment) -> Any:
        for declarator in node.declarations:
            value = UNDEFINED if declarator.init is None else self._eval(declarator.init, env)
            if node.kind_keyword == "var":
                env.declare_var(declarator.name, value if declarator.init is not None else UNDEFINED)
                target_env = env.nearest_function_scope()
            else:
                env.declare_let(declarator.name, value, constant=node.kind_keyword == "const")
                target_env = env
            if self.hooks.wants_vars and declarator.init is not None:
                self.hooks.var_write(self, declarator.name, target_env, value, declarator)
        return UNDEFINED

    def _exec_function_declaration(self, node: ast.FunctionDeclaration, env: Environment) -> Any:
        # Already handled during hoisting; re-declaring keeps later definitions
        # authoritative when the same name is declared twice.
        if not env.has(node.name):
            func = self.make_function(node.name, node.params, node.body, env, node)
            env.declare_var(node.name, func)
        return UNDEFINED

    def _exec_block(self, node: ast.BlockStatement, env: Environment) -> Any:
        block_env = Environment(parent=env, is_function_scope=False, label="block")
        if self.hooks.wants_envs:
            self.hooks.env_created(self, block_env, "block")
        result: Any = UNDEFINED
        for statement in node.body:
            result = self._exec(statement, block_env)
        return result

    def _exec_expression_statement(self, node: ast.ExpressionStatement, env: Environment) -> Any:
        return self._eval(node.expression, env)

    def _exec_if(self, node: ast.IfStatement, env: Environment) -> Any:
        taken = to_boolean(self._eval(node.test, env))
        if self.hooks.wants_branches:
            self.hooks.branch(self, node, taken)
        if taken:
            return self._exec(node.consequent, env)
        if node.alternate is not None:
            return self._exec(node.alternate, env)
        return UNDEFINED

    def _run_loop_body(self, body: ast.Node, env: Environment) -> bool:
        """Execute a loop body; returns False if the loop should break."""
        try:
            self._exec(body, env)
        except _ContinueSignal:
            return True
        except _BreakSignal:
            return False
        return True

    def _exec_for(self, node: ast.ForStatement, env: Environment) -> Any:
        loop_env = Environment(parent=env, is_function_scope=False, label="for")
        if self.hooks.wants_envs:
            self.hooks.env_created(self, loop_env, "block")
        if node.init is not None:
            self._exec(node.init, loop_env)
        wants_loops = self.hooks.wants_loops
        if wants_loops:
            self.hooks.loop_enter(self, node)
        trip = 0
        try:
            while True:
                if node.test is not None and not to_boolean(self._eval(node.test, loop_env)):
                    break
                if wants_loops:
                    self.hooks.loop_iteration(self, node, trip)
                trip += 1
                self.stats.loop_iterations += 1
                iteration_env = Environment(parent=loop_env, is_function_scope=False, label="for-iter")
                if self.hooks.wants_envs:
                    self.hooks.env_created(self, iteration_env, "block")
                if not self._run_loop_body(node.body, iteration_env):
                    break
                if node.update is not None:
                    self._eval(node.update, loop_env)
        finally:
            if wants_loops:
                self.hooks.loop_exit(self, node, trip)
        return UNDEFINED

    def _exec_for_in(self, node: ast.ForInStatement, env: Environment) -> Any:
        iterable = self._eval(node.iterable, env)
        if node.of_loop:
            if isinstance(iterable, JSArray):
                keys: List[Any] = list(iterable.elements)
            elif isinstance(iterable, str):
                keys = list(iterable)
            else:
                raise JSTypeError("for...of target is not iterable", node.line)
        else:
            if isinstance(iterable, JSArray):
                keys = [float(i) if False else str(i) for i in range(len(iterable.elements))]
            elif isinstance(iterable, JSObject):
                keys = iterable.own_keys()
            elif isinstance(iterable, str):
                keys = [str(i) for i in range(len(iterable))]
            else:
                keys = []

        loop_env = Environment(parent=env, is_function_scope=False, label="for-in")
        if self.hooks.wants_envs:
            self.hooks.env_created(self, loop_env, "block")
        if node.declaration_kind == "var":
            loop_env.declare_var(node.target_name, UNDEFINED)
        elif node.declaration_kind in ("let", "const"):
            loop_env.declare_let(node.target_name, UNDEFINED)

        wants_loops = self.hooks.wants_loops
        if wants_loops:
            self.hooks.loop_enter(self, node)
        trip = 0
        try:
            for key in keys:
                if wants_loops:
                    self.hooks.loop_iteration(self, node, trip)
                trip += 1
                self.stats.loop_iterations += 1
                self._set_variable(node.target_name, key, loop_env, node)
                iteration_env = Environment(parent=loop_env, is_function_scope=False, label="forin-iter")
                if self.hooks.wants_envs:
                    self.hooks.env_created(self, iteration_env, "block")
                if not self._run_loop_body(node.body, iteration_env):
                    break
        finally:
            if wants_loops:
                self.hooks.loop_exit(self, node, trip)
        return UNDEFINED

    def _exec_while(self, node: ast.WhileStatement, env: Environment) -> Any:
        wants_loops = self.hooks.wants_loops
        if wants_loops:
            self.hooks.loop_enter(self, node)
        trip = 0
        try:
            while to_boolean(self._eval(node.test, env)):
                if wants_loops:
                    self.hooks.loop_iteration(self, node, trip)
                trip += 1
                self.stats.loop_iterations += 1
                iteration_env = Environment(parent=env, is_function_scope=False, label="while-iter")
                if self.hooks.wants_envs:
                    self.hooks.env_created(self, iteration_env, "block")
                if not self._run_loop_body(node.body, iteration_env):
                    break
        finally:
            if wants_loops:
                self.hooks.loop_exit(self, node, trip)
        return UNDEFINED

    def _exec_do_while(self, node: ast.DoWhileStatement, env: Environment) -> Any:
        wants_loops = self.hooks.wants_loops
        if wants_loops:
            self.hooks.loop_enter(self, node)
        trip = 0
        try:
            while True:
                if wants_loops:
                    self.hooks.loop_iteration(self, node, trip)
                trip += 1
                self.stats.loop_iterations += 1
                iteration_env = Environment(parent=env, is_function_scope=False, label="do-iter")
                if self.hooks.wants_envs:
                    self.hooks.env_created(self, iteration_env, "block")
                if not self._run_loop_body(node.body, iteration_env):
                    break
                if not to_boolean(self._eval(node.test, env)):
                    break
        finally:
            if wants_loops:
                self.hooks.loop_exit(self, node, trip)
        return UNDEFINED

    def _exec_return(self, node: ast.ReturnStatement, env: Environment) -> Any:
        value = UNDEFINED if node.argument is None else self._eval(node.argument, env)
        raise _ReturnSignal(value)

    def _exec_break(self, node: ast.BreakStatement, env: Environment) -> Any:
        raise _BreakSignal()

    def _exec_continue(self, node: ast.ContinueStatement, env: Environment) -> Any:
        raise _ContinueSignal()

    def _exec_throw(self, node: ast.ThrowStatement, env: Environment) -> Any:
        value = self._eval(node.argument, env)
        raise JSThrownValue(value, node.line)

    def _exec_try(self, node: ast.TryStatement, env: Environment) -> Any:
        try:
            self._exec(node.block, env)
        except JSThrownValue as thrown:
            if node.handler is not None:
                handler_env = Environment(parent=env, is_function_scope=False, label="catch")
                if self.hooks.wants_envs:
                    self.hooks.env_created(self, handler_env, "block")
                if node.handler.param:
                    handler_env.declare_let(node.handler.param, thrown.value)
                self._exec(node.handler.body, handler_env)
            elif node.finalizer is None:
                raise
            else:
                self._exec(node.finalizer, env)
                raise
        except (JSRuntimeError,) as error:
            if node.handler is not None:
                handler_env = Environment(parent=env, is_function_scope=False, label="catch")
                if node.handler.param:
                    error_obj = self.make_object()
                    error_obj.set("message", error.raw_message)
                    error_obj.set("name", type(error).__name__)
                    handler_env.declare_let(node.handler.param, error_obj)
                self._exec(node.handler.body, handler_env)
            else:
                raise
        finally:
            if node.finalizer is not None:
                self._exec(node.finalizer, env)
        return UNDEFINED

    def _exec_switch(self, node: ast.SwitchStatement, env: Environment) -> Any:
        value = self._eval(node.discriminant, env)
        matched = False
        try:
            for case in node.cases:
                if not matched and case.test is not None:
                    if strict_equals(value, self._eval(case.test, env)):
                        matched = True
                        if self.hooks.wants_branches:
                            self.hooks.branch(self, case, True)
                if matched:
                    for statement in case.body:
                        self._exec(statement, env)
            if not matched:
                for case in node.cases:
                    if case.test is None:
                        matched = True
                    if matched:
                        for statement in case.body:
                            self._exec(statement, env)
        except _BreakSignal:
            pass
        return UNDEFINED

    def _exec_empty(self, node: ast.EmptyStatement, env: Environment) -> Any:
        return UNDEFINED

    # --------------------------------------------------------------- evaluating
    def _eval(self, node: ast.Node, env: Environment) -> Any:
        self._charge()
        handler = self._dispatch.get(type(node))
        if handler is None:
            # Statement node used in expression position (e.g. for-init decl).
            stmt_handler = self._stmt_dispatch.get(type(node))
            if stmt_handler is not None:
                return stmt_handler(node, env)
            raise JSRuntimeError(f"cannot evaluate node {node.kind}", node.line)
        return handler(node, env)

    def _eval_number(self, node: ast.NumberLiteral, env: Environment) -> Any:
        return node.value

    def _eval_string(self, node: ast.StringLiteral, env: Environment) -> Any:
        return node.value

    def _eval_boolean(self, node: ast.BooleanLiteral, env: Environment) -> Any:
        return node.value

    def _eval_null(self, node: ast.NullLiteral, env: Environment) -> Any:
        return NULL

    def _eval_undefined(self, node: ast.UndefinedLiteral, env: Environment) -> Any:
        return UNDEFINED

    def _eval_identifier(self, node: ast.Identifier, env: Environment) -> Any:
        holder = env.lookup_env(node.name)
        if holder is None:
            raise JSReferenceError(f"{node.name} is not defined", node.line)
        if self.hooks.wants_vars:
            self.hooks.var_read(self, node.name, holder, node)
        return holder.bindings[node.name]

    def _eval_this(self, node: ast.ThisExpression, env: Environment) -> Any:
        holder = env.lookup_env("this")
        return holder.bindings["this"] if holder is not None else UNDEFINED

    def _eval_array_literal(self, node: ast.ArrayLiteral, env: Environment) -> Any:
        elements = [self._eval(element, env) for element in node.elements]
        return self.make_array(elements, creation_site=node.node_id, node=node)

    def _eval_object_literal(self, node: ast.ObjectLiteral, env: Environment) -> Any:
        obj = self.make_object(creation_site=node.node_id, node=node)
        for prop in node.properties:
            obj.set(prop.key, self._eval(prop.value, env))
        return obj

    def _eval_function_expression(self, node: ast.FunctionExpression, env: Environment) -> Any:
        func = self.make_function(node.name or "<anonymous>", node.params, node.body, env, node)
        if node.name:
            # Named function expressions can refer to themselves.
            func.closure = Environment(parent=env, is_function_scope=False, label="fnexpr")
            func.closure.declare_let(node.name, func)
        return func

    def _eval_unary(self, node: ast.UnaryExpression, env: Environment) -> Any:
        operator = node.operator
        if operator == "typeof":
            if isinstance(node.operand, ast.Identifier) and not env.has(node.operand.name):
                return "undefined"
            return type_of(self._eval(node.operand, env))
        if operator == "delete":
            if isinstance(node.operand, ast.MemberExpression):
                obj = self._eval(node.operand.object, env)
                key = self._member_key(node.operand, env)
                if isinstance(obj, JSObject):
                    return obj.delete(key)
            return True
        value = self._eval(node.operand, env)
        if operator == "!":
            return not to_boolean(value)
        if operator == "-":
            return -to_number(value)
        if operator == "+":
            return to_number(value)
        if operator == "~":
            return float(~_to_int32(to_number(value)))
        if operator == "void":
            return UNDEFINED
        raise JSRuntimeError(f"unsupported unary operator {operator!r}", node.line)

    def _eval_update(self, node: ast.UpdateExpression, env: Environment) -> Any:
        delta = 1.0 if node.operator == "++" else -1.0
        target = node.target
        if isinstance(target, ast.Identifier):
            old = to_number(self._eval_identifier(target, env))
            new = old + delta
            self._set_variable(target.name, new, env, node)
            return new if node.prefix else old
        if isinstance(target, ast.MemberExpression):
            obj = self._eval(target.object, env)
            key = self._member_key(target, env)
            old = to_number(self._get_property(obj, key, target))
            new = old + delta
            self._set_property(obj, key, new, target)
            return new if node.prefix else old
        raise JSRuntimeError("invalid update target", node.line)

    def _eval_binary(self, node: ast.BinaryExpression, env: Environment) -> Any:
        operator = node.operator
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        return self._apply_binary(operator, left, right, node)

    def _apply_binary(self, operator: str, left: Any, right: Any, node: ast.Node) -> Any:
        if operator == "+":
            if isinstance(left, str) or isinstance(right, str):
                return to_string(left) + to_string(right)
            if isinstance(left, (JSObject,)) or isinstance(right, (JSObject,)):
                return to_string(left) + to_string(right)
            return to_number(left) + to_number(right)
        if operator == "-":
            return to_number(left) - to_number(right)
        if operator == "*":
            return to_number(left) * to_number(right)
        if operator == "/":
            denominator = to_number(right)
            numerator = to_number(left)
            if denominator == 0.0:
                if numerator == 0.0 or math.isnan(numerator):
                    return float("nan")
                return math.inf if numerator > 0 else -math.inf
            return numerator / denominator
        if operator == "%":
            denominator = to_number(right)
            numerator = to_number(left)
            if denominator == 0.0 or math.isnan(denominator) or math.isnan(numerator):
                return float("nan")
            return math.fmod(numerator, denominator)
        if operator in ("<", ">", "<=", ">="):
            if isinstance(left, str) and isinstance(right, str):
                if operator == "<":
                    return left < right
                if operator == ">":
                    return left > right
                if operator == "<=":
                    return left <= right
                return left >= right
            a, b = to_number(left), to_number(right)
            if math.isnan(a) or math.isnan(b):
                return False
            if operator == "<":
                return a < b
            if operator == ">":
                return a > b
            if operator == "<=":
                return a <= b
            return a >= b
        if operator == "===":
            return strict_equals(left, right)
        if operator == "!==":
            return not strict_equals(left, right)
        if operator == "==":
            return loose_equals(left, right)
        if operator == "!=":
            return not loose_equals(left, right)
        if operator == "&":
            return float(_to_int32(to_number(left)) & _to_int32(to_number(right)))
        if operator == "|":
            return float(_to_int32(to_number(left)) | _to_int32(to_number(right)))
        if operator == "^":
            return float(_to_int32(to_number(left)) ^ _to_int32(to_number(right)))
        if operator == "<<":
            return float(_to_int32(_to_int32(to_number(left)) << (_to_uint32(to_number(right)) & 31)))
        if operator == ">>":
            return float(_to_int32(to_number(left)) >> (_to_uint32(to_number(right)) & 31))
        if operator == ">>>":
            return float(_to_uint32(to_number(left)) >> (_to_uint32(to_number(right)) & 31))
        if operator == "instanceof":
            if not is_callable(right):
                raise JSTypeError("right-hand side of instanceof is not callable", node.line)
            proto = right.get("prototype")
            current = left.prototype if isinstance(left, JSObject) else None
            while current is not None:
                if current is proto:
                    return True
                current = current.prototype
            return False
        if operator == "in":
            if isinstance(right, JSObject):
                return right.has(to_property_key(left))
            raise JSTypeError("'in' applied to a non-object", node.line)
        raise JSRuntimeError(f"unsupported binary operator {operator!r}", node.line)

    def _eval_logical(self, node: ast.LogicalExpression, env: Environment) -> Any:
        left = self._eval(node.left, env)
        if node.operator == "&&":
            if not to_boolean(left):
                if self.hooks.wants_branches:
                    self.hooks.branch(self, node, False)
                return left
            if self.hooks.wants_branches:
                self.hooks.branch(self, node, True)
            return self._eval(node.right, env)
        if node.operator == "||":
            if to_boolean(left):
                if self.hooks.wants_branches:
                    self.hooks.branch(self, node, True)
                return left
            if self.hooks.wants_branches:
                self.hooks.branch(self, node, False)
            return self._eval(node.right, env)
        raise JSRuntimeError(f"unsupported logical operator {node.operator!r}", node.line)

    def _eval_assignment(self, node: ast.AssignmentExpression, env: Environment) -> Any:
        operator = node.operator
        target = node.target
        if operator == "=":
            value = self._eval(node.value, env)
        else:
            # Compound assignment: read-modify-write.
            binary_operator = operator[:-1]
            if isinstance(target, ast.Identifier):
                current = self._eval_identifier(target, env)
            else:
                obj = self._eval(target.object, env)
                key = self._member_key(target, env)
                current = self._get_property(obj, key, target)
            value = self._apply_binary(binary_operator, current, self._eval(node.value, env), node)

        if isinstance(target, ast.Identifier):
            self._set_variable(target.name, value, env, node)
            return value
        if isinstance(target, ast.MemberExpression):
            obj = self._eval(target.object, env)
            key = self._member_key(target, env)
            self._set_property(obj, key, value, target)
            return value
        raise JSRuntimeError("invalid assignment target", node.line)

    def _eval_conditional(self, node: ast.ConditionalExpression, env: Environment) -> Any:
        taken = to_boolean(self._eval(node.test, env))
        if self.hooks.wants_branches:
            self.hooks.branch(self, node, taken)
        return self._eval(node.consequent if taken else node.alternate, env)

    def _eval_sequence(self, node: ast.SequenceExpression, env: Environment) -> Any:
        result: Any = UNDEFINED
        for expression in node.expressions:
            result = self._eval(expression, env)
        return result

    def _eval_call(self, node: ast.CallExpression, env: Environment) -> Any:
        callee = node.callee
        this: Any = UNDEFINED
        if isinstance(callee, ast.MemberExpression):
            this = self._eval(callee.object, env)
            key = self._member_key(callee, env)
            func = self._get_property(this, key, callee)
        else:
            func = self._eval(callee, env)
        args = [self._eval(argument, env) for argument in node.arguments]
        if not is_callable(func):
            name = callee.name if isinstance(callee, ast.Identifier) else to_string(func)
            raise JSTypeError(f"{name} is not a function", node.line)
        return self.call_function(func, this, args, call_node=node)

    def _eval_new(self, node: ast.NewExpression, env: Environment) -> Any:
        constructor = self._eval(node.callee, env)
        args = [self._eval(argument, env) for argument in node.arguments]
        if isinstance(constructor, NativeFunction):
            result = constructor.func(self, UNDEFINED, args)
            if isinstance(result, JSObject):
                result.creation_site = node.node_id
                if self.hooks.wants_objects:
                    self.hooks.object_created(self, result, node)
            return result
        if not isinstance(constructor, JSFunction):
            raise JSTypeError("constructor is not a function", node.line)
        prototype = constructor.get("prototype")
        if not isinstance(prototype, JSObject):
            prototype = self.object_prototype
        instance = JSObject(prototype=prototype, class_name=constructor.name, creation_site=node.node_id)
        self.stats.objects_created += 1
        if self.hooks.wants_objects:
            self.hooks.object_created(self, instance, node)
        result = self.call_function(constructor, instance, args, call_node=node)
        return result if isinstance(result, JSObject) else instance

    def _eval_member(self, node: ast.MemberExpression, env: Environment) -> Any:
        obj = self._eval(node.object, env)
        key = self._member_key(node, env)
        return self._get_property(obj, key, node)

    def _member_key(self, node: ast.MemberExpression, env: Environment) -> str:
        if node.computed:
            return to_property_key(self._eval(node.property, env))
        return node.property.value  # StringLiteral synthesized by the parser

    # ------------------------------------------------------- variable access
    def _set_variable(self, name: str, value: Any, env: Environment, node: ast.Node) -> None:
        holder = env.set(name, value)
        if self.hooks.wants_vars:
            self.hooks.var_write(self, name, holder, value, node)

    # ------------------------------------------------------- property access
    def _get_property(self, obj: Any, key: str, node: ast.Node) -> Any:
        self.stats.property_reads += 1
        if isinstance(obj, str):
            return get_string_property(self, obj, key)
        if isinstance(obj, (int, float)) and not isinstance(obj, bool):
            return get_number_property(self, float(obj), key)
        if obj is UNDEFINED or obj is NULL:
            raise JSTypeError(
                f"cannot read property {key!r} of {to_string(obj)}", getattr(node, "line", 0)
            )
        if isinstance(obj, JSObject):
            if self.hooks.wants_props:
                self.hooks.prop_read(self, obj, key, node)
            return obj.get(key)
        return UNDEFINED

    def _set_property(self, obj: Any, key: str, value: Any, node: ast.Node) -> None:
        self.stats.property_writes += 1
        if obj is UNDEFINED or obj is NULL:
            raise JSTypeError(
                f"cannot set property {key!r} of {to_string(obj)}", getattr(node, "line", 0)
            )
        if not isinstance(obj, JSObject):
            return  # Writes to primitive wrappers are silently dropped, as in JS.
        if self.hooks.wants_props:
            self.hooks.prop_write(self, obj, key, value, node)
        obj.set(key, value)


def _to_int32(number: float) -> int:
    if math.isnan(number) or math.isinf(number):
        return 0
    value = int(number) & 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value


def _to_uint32(number: float) -> int:
    if math.isnan(number) or math.isinf(number):
        return 0
    return int(number) & 0xFFFFFFFF
