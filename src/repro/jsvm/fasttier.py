"""Guarded numeric fast tier for hot ``for`` nests.

The closure tier (:mod:`repro.jsvm.compiler`) executes one Python closure
per AST node; even with slot-addressed scopes and inline caches that costs
~1.5M guest ops/sec on the Table 3 kernels.  This module recognizes the
shape those kernels actually have — counted ``for`` nests whose bodies are
float arithmetic over local scalars, dense ``JSArray`` elements and
monomorphic property chains — and compiles each eligible nest **once** into
a single specialized Python function that runs the whole nest as fused
unboxed-float operations.

Byte-identity contract
----------------------

A fast-nest execution must be indistinguishable from the closure tier:

* ``ExecutionStats`` counters (ops, statements, calls, loop_iterations,
  property_reads, property_writes) advance by exactly the amounts the
  closure tier would charge, in aggregate;
* the virtual clock advances by the same *sequence* of per-op additions
  (IEEE float accumulation order is preserved by replaying ``ops`` equal
  additions of ``ms_per_op``);
* the heap and scope chain end in exactly the state the closure tier would
  produce (scalar results are written back through
  :meth:`Environment.store_binding`, array stores hit ``elements`` in
  program order);
* ``max_ops`` still raises at the exact op (the nest deoptimizes *before*
  the budget line and lets the closure tier charge the final ops).

The fast tier therefore only engages when nothing can observe intermediate
states: hook mask 0, no clock listeners, no speculation controller and no
iteration filter (the compiler's ``_body_for`` checks these before calling
:func:`try_fast_nest`).

Guards and deoptimization
-------------------------

Entry guards re-resolve every name the nest touches (scalars, arrays,
object property chains, callees) and validate types; any mismatch means
the nest simply runs on the closure tier.  In-nest guards (array bounds,
non-float element reads, non-finite indices, op budget) *deoptimize*: each
statement is transactional — counters are snapshotted at statement entry
and the single observable write happens last — so on a guard failure the
generated code restores the snapshot, flushes counters/clock, writes the
unboxed scalars back, and raises :class:`_Deopt` carrying a static *site*
id.  The site's continuation spec rebuilds the loop/iteration/block
environment chain and resumes execution **mid-nest** with the ordinary
compiled closures, starting at the failing statement.

Plans are cached on the ``ForStatement`` node (``node._fast_plan``), which
is shared session-wide via the script cache; generated code embeds no heap
references, so one plan serves every interpreter instance.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Set, Tuple

from . import ast_nodes as ast
from .compiler import (
    BreakSignal,
    ContinueSignal,
    _op_add,
    _op_div,
    _op_mod,
    compile_expr,
    compile_stmt,
)
from .scope import Environment
from .values import (
    UNDEFINED,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    to_boolean,
)

__all__ = ["try_fast_nest"]

_NAN = float("nan")
_INF = math.inf
_MISS = object()  # properties.get() default: "no own property" sentinel


class _Reject(Exception):
    """Internal: the nest is not eligible for the fast tier."""


class _DeoptJump(Exception):
    """Internal control transfer inside generated code (guard failed)."""


class _Deopt(Exception):
    """Raised by generated code after state repair; carries the site id."""

    def __init__(self, site: int) -> None:
        self.site = site


# Comparison / equality operators usable on guaranteed-float operands with
# native Python semantics (NaN-correct for both tiers).
_CMP_OPS = {"<": "<", ">": ">", "<=": "<=", ">=": ">=", "==": "==", "===": "==", "!=": "!=", "!==": "!="}
_ARITH_OPS = {"+", "-", "*", "/", "%"}

# Math natives safe to inline.  Each template receives already-materialized
# float temp names.  ``deopt_inf`` marks natives whose builtin would raise a
# Python ValueError on +/-Infinity (sin/cos/tan) — those deopt instead so
# the closure tier reproduces the exact error state.
_MATH_TEMPLATES = {
    "abs": ("abs({0})", 1, False),
    "floor": ("_js_floor({0})", 1, False),
    "ceil": ("_js_ceil({0})", 1, False),
    "round": ("_js_round({0})", 1, False),
    "sqrt": ("_js_sqrt({0})", 1, False),
    "sin": ("float(_msin({0}))", 1, True),
    "cos": ("float(_mcos({0}))", 1, True),
    "tan": ("float(_mtan({0}))", 1, True),
    "asin": ("_js_asin({0})", 1, False),
    "acos": ("_js_acos({0})", 1, False),
    "atan": ("float(_matan({0}))", 1, False),
    "exp": ("_js_exp({0})", 1, False),
    "log": ("_js_log({0})", 1, False),
    "atan2": ("_matan2({0}, {1})", 2, False),
    "pow": ("_js_pow({0}, {1})", 2, False),
    "min": ("_js_min2({0}, {1})", 2, False),
    "max": ("_js_max2({0}, {1})", 2, False),
    "random": ("rt.rng.random()", 0, False),
}


def _js_floor(v: float) -> float:
    return v if not math.isfinite(v) else float(math.floor(v))


def _js_ceil(v: float) -> float:
    return v if not math.isfinite(v) else float(math.ceil(v))


def _js_round(v: float) -> float:
    return v if not math.isfinite(v) else float(math.floor(v + 0.5))


def _js_sqrt(v: float) -> float:
    try:
        return float(math.sqrt(v))
    except (ValueError, OverflowError):
        return _NAN


def _js_asin(v: float) -> float:
    try:
        return float(math.asin(v))
    except (ValueError, OverflowError):
        return _NAN


def _js_acos(v: float) -> float:
    try:
        return float(math.acos(v))
    except (ValueError, OverflowError):
        return _NAN


def _js_exp(v: float) -> float:
    try:
        return float(math.exp(v))
    except (ValueError, OverflowError):
        return _NAN


def _js_log(v: float) -> float:
    try:
        return float(math.log(v))
    except (ValueError, OverflowError):
        return _NAN


def _js_pow(a: float, b: float) -> float:
    try:
        return float(math.pow(a, b))
    except (ValueError, OverflowError):
        return _NAN


def _js_min2(a: float, b: float) -> float:
    if a != a or b != b:
        return _NAN
    return min(a, b)


def _js_max2(a: float, b: float) -> float:
    if a != a or b != b:
        return _NAN
    return max(a, b)


# Namespace shared by every generated nest function.
_GEN_GLOBALS = {
    "JSArray": JSArray,
    "JSObject": JSObject,
    "JSFunction": JSFunction,
    "NativeFunction": NativeFunction,
    "UNDEFINED": UNDEFINED,
    "_op_add": _op_add,
    "_op_div": _op_div,
    "_op_mod": _op_mod,
    "_DJ": _DeoptJump,
    "_Deopt": _Deopt,
    "_MISS": _MISS,
    "_NAN": _NAN,
    "_INF": _INF,
    "_NINF": -_INF,
    "_msin": math.sin,
    "_mcos": math.cos,
    "_mtan": math.tan,
    "_matan": math.atan,
    "_matan2": math.atan2,
    "_js_floor": _js_floor,
    "_js_ceil": _js_ceil,
    "_js_round": _js_round,
    "_js_sqrt": _js_sqrt,
    "_js_asin": _js_asin,
    "_js_acos": _js_acos,
    "_js_exp": _js_exp,
    "_js_log": _js_log,
    "_js_pow": _js_pow,
    "_js_min2": _js_min2,
    "_js_max2": _js_max2,
}


# ---------------------------------------------------------------------------
# deopt continuation machinery
# ---------------------------------------------------------------------------
class _Level:
    """Static description of one ``for`` level, for mid-nest resumption."""

    __slots__ = (
        "node",
        "init_code",
        "test_code",
        "update_code",
        "body_code",
        "body_stmt_codes",
        "body_is_block",
        "loop_layout",
        "iter_layout",
        "body_layout",
    )

    def __init__(self, node: ast.ForStatement) -> None:
        self.node = node
        self.init_code = compile_stmt(node.init) if node.init is not None else None
        self.test_code = compile_expr(node.test) if node.test is not None else None
        self.update_code = compile_expr(node.update) if node.update is not None else None
        self.body_code = compile_stmt(node.body)
        self.loop_layout = getattr(node, "_loop_layout", None)
        self.iter_layout = getattr(node, "_iter_layout", None)
        body = node.body
        self.body_is_block = isinstance(body, ast.BlockStatement)
        if self.body_is_block:
            self.body_layout = getattr(body, "_layout", None)
            self.body_stmt_codes = [compile_stmt(stmt) for stmt in body.body]
        else:
            self.body_layout = None
            self.body_stmt_codes = [self.body_code]


class _Site:
    """One static deopt site: where in the nest a guard can fail.

    ``chain`` holds ``(level, inner_stmt_idx)`` for every enclosing level
    that is mid-iteration (its inner loop lives at ``inner_stmt_idx`` in the
    body); ``level``/``mode`` describe the innermost active level.  For
    ``mode == "stmt"``, ``containers`` is the outer-to-inner stack of
    ``(stmt_codes, start_idx, layout)`` — the first entry is the loop body
    container (whose env the resumer builds from the level layouts), later
    entries are nested block/if-branch containers.
    """

    __slots__ = ("chain", "level", "mode", "containers")

    def __init__(
        self,
        chain: List[Tuple[_Level, int]],
        level: _Level,
        mode: str,
        containers: Optional[List[Tuple[List[Any], int, Any]]] = None,
    ) -> None:
        self.chain = chain
        self.level = level
        self.mode = mode
        self.containers = containers


def _loop_from_test(rt, level: _Level, loop_env: Environment) -> None:
    """Continue a ``for`` level from its test, exactly like ``_body_for``.

    Only ever runs with hook mask 0 (fast-tier entry precondition), so the
    loop-event bookkeeping of the closure-tier loop is statically absent.
    """
    test_code = level.test_code
    update_code = level.update_code
    body_code = level.body_code
    iter_layout = level.iter_layout
    stats = rt.stats
    while True:
        if test_code is not None and not to_boolean(test_code(rt, loop_env)):
            break
        stats.loop_iterations += 1
        iteration_env = Environment(
            parent=loop_env, is_function_scope=False, label="for-iter", layout=iter_layout
        )
        try:
            body_code(rt, iteration_env)
        except ContinueSignal:
            pass
        except BreakSignal:
            break
        if update_code is not None:
            update_code(rt, loop_env)


def _resume_site(rt, env: Environment, site: _Site) -> None:
    """Resume closure-tier execution mid-nest after a deopt.

    ``env`` is the environment ``_body_for`` received for the *outermost*
    loop; every loop/iteration/block frame in between is rebuilt with its
    static layout (they are all empty: eligible nests declare only ``var``
    bindings, which hoist out of the nest).
    """
    parent_env = env
    for level, inner_idx in site.chain:
        loop_env = Environment(parent=parent_env, is_function_scope=False, label="for", layout=level.loop_layout)
        iteration_env = Environment(
            parent=loop_env, is_function_scope=False, label="for-iter", layout=level.iter_layout
        )
        if level.body_is_block:
            body_env = Environment(
                parent=iteration_env, is_function_scope=False, label="block", layout=level.body_layout
            )
        else:
            body_env = iteration_env
        _finish_iteration_after(rt, level, loop_env, body_env, inner_idx, site, parent_env)
        return
    _resume_leaf(rt, parent_env, site)


def _finish_iteration_after(rt, level, loop_env, body_env, inner_idx, site, parent_env) -> None:
    """Finish the current iteration of ``level`` whose inner loop deopted."""
    # Recurse into the rest of the chain / leaf for the inner loop first.
    inner_site = _Site(site.chain[1:], site.level, site.mode, site.containers)
    _resume_site(rt, body_env, inner_site)
    for code in level.body_stmt_codes[inner_idx + 1 :]:
        code(rt, body_env)
    if level.update_code is not None:
        level.update_code(rt, loop_env)
    _loop_from_test(rt, level, loop_env)


def _resume_leaf(rt, parent_env: Environment, site: _Site) -> None:
    level = site.level
    mode = site.mode
    loop_env = Environment(parent=parent_env, is_function_scope=False, label="for", layout=level.loop_layout)
    if mode == "init":
        if level.init_code is not None:
            level.init_code(rt, loop_env)
        _loop_from_test(rt, level, loop_env)
        return
    if mode == "test":
        _loop_from_test(rt, level, loop_env)
        return
    if mode == "update":
        if level.update_code is not None:
            level.update_code(rt, loop_env)
        _loop_from_test(rt, level, loop_env)
        return
    # mode == "stmt": re-run the failing statement and everything after it.
    iteration_env = Environment(
        parent=loop_env, is_function_scope=False, label="for-iter", layout=level.iter_layout
    )
    if level.body_is_block:
        body_env = Environment(
            parent=iteration_env, is_function_scope=False, label="block", layout=level.body_layout
        )
    else:
        body_env = iteration_env
    containers = site.containers
    envs = [body_env]
    for _codes, _start, layout in containers[1:]:
        if layout is not None:
            envs.append(
                Environment(parent=envs[-1], is_function_scope=False, label="block", layout=layout)
            )
        else:
            envs.append(envs[-1])
    try:
        for j in range(len(containers) - 1, -1, -1):
            codes, start, _layout = containers[j]
            for code in codes[start:]:
                code(rt, envs[j])
    except ContinueSignal:
        pass
    except BreakSignal:
        return
    if level.update_code is not None:
        level.update_code(rt, loop_env)
    _loop_from_test(rt, level, loop_env)


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------
class _NestPlan:
    __slots__ = ("fn", "sites", "source")

    def __init__(self, fn, sites: List[_Site], source: str) -> None:
        self.fn = fn
        self.sites = sites
        self.source = source

    def execute(self, rt, env: Environment) -> bool:
        """Run the nest; True when handled (fast path or deopt-resumed)."""
        try:
            return self.fn(rt, env)
        except _Deopt as deopt:
            _resume_site(rt, env, self.sites[deopt.site])
            return True


def try_fast_nest(rt, env: Environment, node: ast.ForStatement) -> bool:
    """Fast-tier entry called by the compiled ``for`` statement.

    Returns True when the nest was executed (the closure loop must not run).
    The caller guarantees mask 0, no clock listeners, no speculation and no
    iteration filter.
    """
    plan = getattr(node, "_fast_plan", None)
    if plan is None:
        plan = _build_plan(node, rt, env) or False
        node._fast_plan = plan
    if plan is False:
        return False
    return plan.execute(rt, env)


# ---------------------------------------------------------------------------
# analysis + code generation
# ---------------------------------------------------------------------------
class _Cnt:
    """Static counter deltas accumulated while emitting one statement."""

    __slots__ = ("ops", "stmts", "pr", "pw", "calls")

    def __init__(self) -> None:
        self.ops = 0
        self.stmts = 0
        self.pr = 0
        self.pw = 0
        self.calls = 0


class _Inline:
    """An inlinable guest callee: single ``return <numeric expr>`` body."""

    __slots__ = ("name", "func_local", "body_node", "params", "ret_expr", "cnt_ops", "cnt_pr")

    def __init__(self, name: str, func_local: str, body_node: ast.BlockStatement, params: List[str]) -> None:
        self.name = name
        self.func_local = func_local
        self.body_node = body_node
        self.params = params
        self.ret_expr: Optional[ast.Node] = None
        self.cnt_ops = 0
        self.cnt_pr = 0


class _PlanBuilder:
    def __init__(self, node: ast.ForStatement, rt, env: Environment) -> None:
        self.node = node
        self.rt = rt
        self.env = env
        self.lines: List[str] = []
        self.ind = "        "  # inside `def _nest` + `try:`
        self.entry: List[str] = []  # resolution + guard lines (one indent)
        self.sites: List[_Site] = []
        self.consts: List[Any] = []  # captured AST nodes for identity guards
        self.tmp = 0
        self.cnt = _Cnt()
        self.total_static_ops = 0
        # name classifications
        self.scalars: Dict[str, str] = {}  # name -> value local
        self.scalar_holders: Dict[str, str] = {}  # name -> env local
        self.scalar_guarded: Set[str] = set()  # needs float entry guard
        self.scalar_assigned: Set[str] = set()
        self.scalar_var_declared: Set[str] = set()
        self.definite: Set[str] = set()
        self.root_names: Set[str] = set()  # array/object/callee roots
        # hoists keyed by resolution path
        self.array_locals: Dict[Tuple, str] = {}  # path -> elements local
        self.value_locals: Dict[Tuple, str] = {}  # path -> float local
        self.native_locals: Dict[Tuple, str] = {}  # path -> native name
        self.object_locals: Dict[Tuple, str] = {}  # path -> object local
        self.inlines: Dict[str, _Inline] = {}
        self.has_guest_calls = False
        # Inside a compound member store the object/key counts are doubled
        # statically (the closure tier evaluates them twice); expressions
        # with branch-local counts or side effects can't be doubled that way.
        self.no_dynamic = False
        # continuation context
        self.level_stack: List[_Level] = []
        self.level_child_idx: List[int] = []
        self.containers: List[Tuple[List[Any], int, Any]] = []

    # ----------------------------------------------------------- utilities
    def w(self, line: str) -> None:
        self.lines.append(self.ind + line)

    def new_tmp(self) -> str:
        self.tmp += 1
        return f"_t{self.tmp}"

    def add_ops(self, n: int) -> None:
        self.cnt.ops += n
        self.total_static_ops += n

    def const(self, value: Any) -> str:
        self.consts.append(value)
        return f"_C[{len(self.consts) - 1}]"

    def new_site(self, mode: str) -> int:
        """Register a deopt site at the current static location."""
        chain = [
            (self.level_stack[i], self.level_child_idx[i]) for i in range(len(self.level_stack) - 1)
        ]
        level = self.level_stack[-1]
        containers = None
        if mode == "stmt":
            containers = []
            for i, (codes, idx, layout) in enumerate(self.containers):
                start = idx if i == len(self.containers) - 1 else idx + 1
                containers.append((codes, start, layout))
        self.sites.append(_Site(chain, level, mode, containers))
        return len(self.sites) - 1

    def deopt(self, cond: str, mode: str) -> None:
        site = self.new_site(mode)
        self.w(f"if {cond}:")
        self.w(f"    _site = {site}; raise _DJ")

    # ------------------------------------------------------- name handling
    def scalar(self, name: str) -> str:
        """The unboxed local for scalar ``name`` (registering it)."""
        if name in self.root_names:
            raise _Reject
        local = self.scalars.get(name)
        if local is None:
            local = f"v_{len(self.scalars)}_{_ident(name)}"
            self.scalars[name] = local
        return local

    def scalar_read(self, name: str) -> str:
        local = self.scalar(name)
        if name not in self.definite:
            self.scalar_guarded.add(name)
        return local

    def scalar_write(self, name: str, via_var_decl: bool = False) -> str:
        local = self.scalar(name)
        self.scalar_assigned.add(name)
        if via_var_decl:
            self.scalar_var_declared.add(name)
        self.definite.add(name)
        return local

    def root(self, name: str) -> None:
        if name in self.scalars:
            raise _Reject
        self.root_names.add(name)

    # --------------------------------------------------- hoist resolution
    def resolve_path(self, node: ast.Node) -> Tuple:
        """Static member chain -> ("env", root, prop, ...) resolution path."""
        props: List[str] = []
        current = node
        while isinstance(current, ast.MemberExpression):
            if current.computed:
                raise _Reject
            props.append(current.property.value)
            current = current.object
        if not isinstance(current, ast.Identifier):
            raise _Reject
        self.root(current.name)
        return ("env", current.name) + tuple(reversed(props))

    def path_counts(self, path: Tuple) -> Tuple[int, int]:
        """(ops, preads) the closure tier charges to evaluate the chain."""
        nprops = len(path) - 2
        return (1 + nprops, nprops)

    def hoist_object(self, path: Tuple) -> str:
        """Hoist the JSObject at ``path`` (guarded exact-type at entry)."""
        local = self.object_locals.get(path)
        if local is not None:
            return local
        if len(path) == 2:
            base, name = "env", path[1]
            holder = f"_h{len(self.object_locals)}o"
            self.entry.append(f"{holder} = {base}.lookup_env({name!r})")
            self.entry.append(f"if {holder} is None: return False")
            local = f"o_{len(self.object_locals)}"
            self.entry.append(f"{local} = {holder}.bindings[{name!r}]")
        else:
            parent = self.hoist_object(path[:-1])
            local = f"o_{len(self.object_locals)}"
            self.entry.append(f"{local} = {parent}.properties.get({path[-1]!r}, _MISS)")
        self.entry.append(f"if type({local}) is not JSObject: return False")
        self.object_locals[path] = local
        return local

    def hoist_terminal(self, path: Tuple, kind: str) -> str:
        """Hoist the value at ``path``: kind in {"array", "float", "native"}."""
        table = {"array": self.array_locals, "float": self.value_locals, "native": self.native_locals}[kind]
        local = table.get(path)
        if local is not None:
            return local
        n = len(self.array_locals) + len(self.value_locals) + len(self.native_locals)
        raw = f"_r{n}"
        if len(path) == 2:
            holder = f"_h{n}t"
            self.entry.append(f"{holder} = env.lookup_env({path[1]!r})")
            self.entry.append(f"if {holder} is None: return False")
            self.entry.append(f"{raw} = {holder}.bindings[{path[1]!r}]")
        else:
            parent = self.hoist_object(path[:-1])
            self.entry.append(f"{raw} = {parent}.properties.get({path[-1]!r}, _MISS)")
        if kind == "array":
            local = f"e_{n}"
            self.entry.append(f"if type({raw}) is not JSArray: return False")
            self.entry.append(f"{local} = {raw}.elements")
        elif kind == "float":
            local = f"m_{n}"
            self.entry.append(f"if type({raw}) is not float: return False")
            self.entry.append(f"{local} = {raw}")
        else:
            local = raw
        table[path] = local
        return local

    def hoist_native(self, path: Tuple, expect_name: str) -> None:
        local = self.hoist_terminal(path, "native")
        key = (path, "guarded")
        if key not in self.native_locals:
            self.entry.append(
                f"if type({local}) is not NativeFunction or {local}.name != {expect_name!r}: return False"
            )
            self.native_locals[key] = local

    # ------------------------------------------------------ guest inlining
    def resolve_inline(self, name: str) -> _Inline:
        inline = self.inlines.get(name)
        if inline is not None:
            return inline
        self.root(name)
        holder = self.env.lookup_env(name)
        if holder is None:
            raise _Reject
        func = holder.bindings.get(name)
        if type(func) is not JSFunction:
            raise _Reject
        body = func.body
        if body is None or len(body.body) != 1:
            raise _Reject
        ret = body.body[0]
        if not isinstance(ret, ast.ReturnStatement) or ret.argument is None:
            raise _Reject
        n = len(self.inlines)
        func_local = f"f_{n}"
        inline = _Inline(name, func_local, body, list(func.params))
        # Entry: resolve + identity-guard the callee, then its free names
        # through *its own* closure chain.
        body_const = self.const(body)
        self.entry.append(f"_hf{n} = env.lookup_env({name!r})")
        self.entry.append(f"if _hf{n} is None: return False")
        self.entry.append(f"{func_local} = _hf{n}.bindings[{name!r}]")
        self.entry.append(
            f"if type({func_local}) is not JSFunction or {func_local}.body is not {body_const}"
            f" or len({func_local}.params) != {len(inline.params)}: return False"
        )
        self.inlines[name] = inline
        self.has_guest_calls = True
        # Compile the return expression with params as placeholders and
        # frees hoisted via the callee closure.
        saved = self.cnt
        self.cnt = _Cnt()
        expr = self.inline_expr(ret.argument, inline)
        inline.ret_expr = expr
        inline.cnt_ops = self.cnt.ops
        inline.cnt_pr = self.cnt.pr
        if self.cnt.pw or self.cnt.calls or self.cnt.stmts:
            raise _Reject
        self.cnt = saved
        return inline

    def inline_expr(self, node: ast.Node, inline: _Inline) -> str:
        """Pure numeric expression inside an inlined body -> py expr template.

        Parameters appear as ``{0}``/``{1}``... placeholders; free scalars
        resolve through the callee's closure env (hoisted at entry).
        """
        self.add_ops(1)
        if isinstance(node, ast.NumberLiteral):
            return _num(node.value)
        if isinstance(node, ast.Identifier):
            if node.name in inline.params:
                return "{%d}" % inline.params.index(node.name)
            return self.hoist_inline_free(inline, (node.name,), "float")
        if isinstance(node, ast.MemberExpression) and not node.computed:
            props: List[str] = []
            current = node
            while isinstance(current, ast.MemberExpression):
                if current.computed:
                    raise _Reject
                props.append(current.property.value)
                current = current.object
                self.add_ops(1)
            self.add_ops(-1)  # the innermost object is an identifier, charged below
            if not isinstance(current, ast.Identifier) or current.name in inline.params:
                raise _Reject
            self.add_ops(1)
            self.cnt.pr += len(props)
            return self.hoist_inline_free(inline, (current.name,) + tuple(reversed(props)), "float")
        if isinstance(node, ast.BinaryExpression) and node.operator in _ARITH_OPS:
            left = self.inline_expr(node.left, inline)
            right = self.inline_expr(node.right, inline)
            return _arith(node.operator, left, right)
        if isinstance(node, ast.UnaryExpression) and node.operator in ("-", "+"):
            operand = self.inline_expr(node.operand, inline)
            return f"(-{operand})" if node.operator == "-" else operand
        raise _Reject

    def hoist_inline_free(self, inline: _Inline, rel_path: Tuple, kind: str) -> str:
        """Hoist a free name of an inlined callee via ``func.closure``."""
        path = ("closure", inline.name) + rel_path
        local = self.value_locals.get(path)
        if local is not None:
            return local
        n = len(self.array_locals) + len(self.value_locals) + len(self.native_locals)
        raw = f"_fr{n}"
        root = rel_path[0]
        holder = f"_hc{n}"
        self.entry.append(f"{holder} = {inline.func_local}.closure.lookup_env({root!r})")
        self.entry.append(f"if {holder} is None: return False")
        # Aliasing hazard: the nest must not assign the binding this inline
        # reads (hoisted value would go stale); recorded for the final pass.
        self.entry.append(f"_ALIAS.append(({holder}, {root!r}))")
        if len(rel_path) == 1:
            self.entry.append(f"{raw} = {holder}.bindings[{root!r}]")
        else:
            obj = raw + "o"
            self.entry.append(f"{obj} = {holder}.bindings[{root!r}]")
            for prop in rel_path[1:-1]:
                self.entry.append(f"{obj} = {obj}.properties.get({prop!r}, _MISS) if type({obj}) is JSObject else _MISS")
            self.entry.append(f"if type({obj}) is not JSObject: return False")
            self.entry.append(f"{raw} = {obj}.properties.get({rel_path[-1]!r}, _MISS)")
        local = f"m_{n}"
        self.entry.append(f"if type({raw}) is not float: return False")
        self.entry.append(f"{local} = {raw}")
        self.value_locals[path] = local
        return local

    # ----------------------------------------------------------- main build
    def build(self) -> _NestPlan:
        node = self.node
        self.emit_for(node, outermost=True)
        return self.assemble()

    def emit_for(self, node: ast.ForStatement, outermost: bool = False) -> None:
        if node.test is None:
            raise _Reject
        level = _Level(node)
        self.level_stack.append(level)
        self.level_child_idx.append(-1)
        saved_containers = self.containers

        # --- init ---------------------------------------------------------
        if node.init is not None:
            self.containers = []
            self.emit_init(node.init)
        definite_after_init = set(self.definite)

        # --- loop ---------------------------------------------------------
        self.w("while True:")
        self.ind += "    "
        self.w("_s_ops = _ops; _s_stmts = _stmts; _s_li = _li; _s_pr = _pr; _s_pw = _pw; _s_calls = _calls")
        budget_site = self.new_site("test")
        self.w(f"if _ops >= _lim: _site = {budget_site}; raise _DJ")
        self.containers = []
        saved_cnt = self.cnt
        self.cnt = _Cnt()
        test = self.emit_test(node.test, mode="test")
        if self.cnt.stmts or self.cnt.pw or self.cnt.calls:
            raise _Reject
        self.w(_count_line(self.cnt))
        self.cnt = saved_cnt
        self.w(f"if not ({test}): break")
        self.w("_li += 1")

        # --- body ---------------------------------------------------------
        body = node.body
        if isinstance(body, ast.BlockStatement):
            self.w("_ops += 1; _stmts += 1")
            self.total_static_ops += 1
            self.containers = [(level.body_stmt_codes, 0, level.body_layout)]
            for idx, stmt in enumerate(body.body):
                self.containers[0] = (level.body_stmt_codes, idx, level.body_layout)
                self.emit_stmt(stmt, body_idx=idx)
        else:
            self.containers = [(level.body_stmt_codes, 0, None)]
            self.emit_stmt(body, body_idx=0)

        # --- update -------------------------------------------------------
        if node.update is not None:
            self.containers = []
            mark = len(self.lines)
            sites_before = len(self.sites)
            saved_cnt = self.cnt
            self.cnt = _Cnt()
            self.emit_update_expr(node.update)
            if self.cnt.stmts:
                raise _Reject
            count = _count_line(self.cnt)
            self.cnt = saved_cnt
            prefix: List[str] = []
            if len(self.sites) > sites_before:
                prefix.append(
                    self.ind
                    + "_s_ops = _ops; _s_stmts = _stmts; _s_li = _li; _s_pr = _pr; _s_pw = _pw; _s_calls = _calls"
                )
            prefix.append(self.ind + count)
            self.lines[mark:mark] = prefix
        self.ind = self.ind[:-4]

        self.level_stack.pop()
        self.level_child_idx.pop()
        self.containers = saved_containers
        # The body may have run zero times: only init assignments are definite.
        self.definite = definite_after_init

    def emit_init(self, init: ast.Node) -> None:
        """Emit the loop init (full statement semantics, mode "init")."""
        mark = len(self.lines)
        sites_before = len(self.sites)
        saved_cnt = self.cnt
        self.cnt = _Cnt()
        self.cnt.ops += 1
        self.total_static_ops += 1
        self.cnt.stmts += 1
        if isinstance(init, ast.VariableDeclaration):
            self.emit_var_decl_body(init, mode="init")
        elif isinstance(init, (ast.AssignmentExpression, ast.UpdateExpression, ast.SequenceExpression)):
            self.emit_expr_stmt_body(init, mode="init")
        else:
            raise _Reject
        count = _count_line(self.cnt)
        self.cnt = saved_cnt
        prefix = []
        if len(self.sites) > sites_before:
            prefix.append(
                self.ind
                + "_s_ops = _ops; _s_stmts = _stmts; _s_li = _li; _s_pr = _pr; _s_pw = _pw; _s_calls = _calls"
            )
        prefix.append(self.ind + count)
        self.lines[mark:mark] = prefix

    # ------------------------------------------------------------ statements
    def emit_stmt(self, stmt: ast.Node, body_idx: int) -> None:
        """Emit one statement of a loop body or nested container."""
        if isinstance(stmt, ast.ForStatement):
            if len(self.containers) != 1:
                raise _Reject  # loops only at body top level (continuation shape)
            self.level_child_idx[-1] = body_idx
            self.w("_ops += 1; _stmts += 1")
            self.total_static_ops += 1
            self.emit_for(stmt)
            return
        mark = len(self.lines)
        sites_before = len(self.sites)
        saved_cnt = self.cnt
        self.cnt = _Cnt()
        self.cnt.ops += 1
        self.total_static_ops += 1
        self.cnt.stmts += 1
        if isinstance(stmt, ast.ExpressionStatement):
            self.emit_expr_stmt_body(stmt.expression, mode="stmt")
        elif isinstance(stmt, ast.VariableDeclaration):
            self.emit_var_decl_body(stmt, mode="stmt")
        elif isinstance(stmt, ast.IfStatement):
            self.emit_if_body(stmt)
        elif isinstance(stmt, ast.EmptyStatement):
            pass
        elif isinstance(stmt, ast.BlockStatement):
            self.emit_block_body(stmt)
        else:
            raise _Reject
        count = _count_line(self.cnt)
        self.cnt = saved_cnt
        prefix = []
        if len(self.sites) > sites_before:
            prefix.append(
                self.ind
                + "_s_ops = _ops; _s_stmts = _stmts; _s_li = _li; _s_pr = _pr; _s_pw = _pw; _s_calls = _calls"
            )
        prefix.append(self.ind + count)
        self.lines[mark:mark] = prefix

    def emit_var_decl_body(self, decl: ast.VariableDeclaration, mode: str) -> None:
        if decl.kind_keyword != "var":
            raise _Reject
        for declarator in decl.declarations:
            if declarator.init is None:
                # Bare re-declaration: hoisting already created the binding;
                # the closure tier's declare_var() is a no-op then.
                self.scalar(declarator.name)
                self.scalar_var_declared.add(declarator.name)
                continue
            value = self.emit_expr(declarator.init, mode)
            local = self.scalar_write(declarator.name, via_var_decl=True)
            self.w(f"{local} = {value}")

    def emit_expr_stmt_body(self, expr: ast.Node, mode: str) -> None:
        if isinstance(expr, ast.AssignmentExpression):
            self.emit_assignment(expr, mode)
        elif isinstance(expr, ast.UpdateExpression):
            self.emit_update_core(expr, mode)
        elif isinstance(expr, ast.CallExpression):
            # The value is discarded, but the call must still run (rng state).
            value = self.emit_expr(expr, mode)
            self.w(f"_ = {value}")
        else:
            raise _Reject

    def emit_update_expr(self, update: ast.Node) -> None:
        if isinstance(update, ast.UpdateExpression):
            self.emit_update_core(update, "update")
        elif isinstance(update, ast.AssignmentExpression):
            self.emit_assignment(update, "update")
        else:
            raise _Reject

    def emit_update_core(self, node: ast.UpdateExpression, mode: str) -> None:
        if not isinstance(node.target, ast.Identifier):
            raise _Reject
        self.add_ops(1)
        local = self.scalar_read(node.target.name)
        self.scalar_write(node.target.name)
        delta = "1.0" if node.operator == "++" else "-1.0"
        self.w(f"{local} = {local} + {delta}")

    def emit_assignment(self, node: ast.AssignmentExpression, mode: str) -> None:
        operator = node.operator
        target = node.target
        self.add_ops(1)
        if isinstance(target, ast.Identifier):
            if operator == "=":
                value = self.emit_expr(node.value, mode)
                local = self.scalar_write(target.name)
                self.w(f"{local} = {value}")
                return
            current = self.scalar_read(target.name)
            value = self.emit_expr(node.value, mode)
            local = self.scalar_write(target.name)
            self.w(f"{local} = {_arith(operator[:-1], current, value)}")
            return
        if isinstance(target, ast.MemberExpression) and target.computed:
            if operator == "=":
                value = self.emit_expr(node.value, mode)
                elements = self.emit_array_base(target.object)
                key = self.materialize(self.emit_expr(target.property, mode))
                index = self.guarded_index(elements, key, mode)
                self.cnt.pw += 1
                self.w(f"{elements}[{index}] = {value}")
                return
            # Compound member store: closure evaluates object+key twice.
            obj_cnt = _Cnt()
            saved = self.cnt
            saved_dyn = self.no_dynamic
            self.cnt = obj_cnt
            self.no_dynamic = True
            elements = self.emit_array_base(target.object)
            key = self.materialize(self.emit_expr(target.property, mode))
            self.no_dynamic = saved_dyn
            self.cnt = saved
            self.cnt.ops += 2 * obj_cnt.ops
            self.total_static_ops += obj_cnt.ops
            self.cnt.pr += 2 * obj_cnt.pr
            self.cnt.pw += obj_cnt.pw
            self.cnt.calls += 2 * obj_cnt.calls
            self.cnt.stmts += 2 * obj_cnt.stmts
            index = self.guarded_index(elements, key, mode)
            current = self.new_tmp()
            self.w(f"{current} = {elements}[{index}]")
            self.deopt(f"type({current}) is not float", mode)
            self.cnt.pr += 1
            self.cnt.pw += 1
            value = self.emit_expr(node.value, mode)
            self.w(f"{elements}[{index}] = {_arith(operator[:-1], current, value)}")
            return
        raise _Reject

    def emit_if_body(self, node: ast.IfStatement) -> None:
        test = self.emit_test(node.test, mode="stmt")
        self.w(f"if {test}:")
        self.emit_branch(node.consequent)
        if node.alternate is not None:
            self.w("else:")
            self.emit_branch(node.alternate)

    def emit_branch(self, branch: ast.Node) -> None:
        self.ind += "    "
        saved_definite = set(self.definite)
        if isinstance(branch, ast.BlockStatement):
            # The block statement's own wrapper charge (pure counter bumps,
            # needs no snapshot), then its statements — each a full
            # transactional statement inside a nested container.
            self.w("_ops += 1; _stmts += 1")
            self.total_static_ops += 1
            self.emit_block_body(branch)
        else:
            # Single unbraced statement (incl. else-if): runs in the
            # enclosing env; register a one-statement container so a deopt
            # inside it resumes at exactly this statement.
            codes = [compile_stmt(branch)]
            self.containers.append((codes, 0, None))
            self.emit_stmt(branch, body_idx=0)
            self.containers.pop()
        self.ind = self.ind[:-4]
        # Branch assignments are not definite after the if (other branch).
        self.definite = saved_definite

    def emit_block_body(self, block: ast.BlockStatement) -> None:
        """A nested block statement (its own env + per-statement wrappers)."""
        layout = getattr(block, "_layout", None)
        codes = [compile_stmt(stmt) for stmt in block.body]
        self.containers.append((codes, 0, layout))
        for idx, stmt in enumerate(block.body):
            self.containers[-1] = (codes, idx, layout)
            if isinstance(stmt, ast.ForStatement):
                raise _Reject  # loops only at loop-body top level
            self.emit_stmt(stmt, body_idx=idx)
        self.containers.pop()

    # ---------------------------------------------------------- expressions
    def emit_expr(self, node: ast.Node, mode: str) -> str:
        """Emit a numeric expression; returns a float-valued py expression."""
        self.add_ops(1)
        if isinstance(node, ast.NumberLiteral):
            return _num(node.value)
        if isinstance(node, ast.Identifier):
            return self.scalar_read(node.name)
        if isinstance(node, ast.BinaryExpression):
            operator = node.operator
            if operator in _ARITH_OPS:
                left = self.emit_expr(node.left, mode)
                right = self.emit_expr(node.right, mode)
                return _arith(operator, left, right)
            if operator in _CMP_OPS:
                # Comparison in value position: JS yields a boolean; in this
                # numeric subset that would immediately poison arithmetic, so
                # only allow it under a test (emit_test) — reject here.
                raise _Reject
            raise _Reject
        if isinstance(node, ast.UnaryExpression) and node.operator in ("-", "+"):
            operand = self.emit_expr(node.operand, mode)
            return f"(-{operand})" if node.operator == "-" else operand
        if isinstance(node, ast.MemberExpression):
            if node.computed:
                elements = self.emit_array_base(node.object)
                key = self.materialize(self.emit_expr(node.property, mode))
                index = self.guarded_index(elements, key, mode)
                self.cnt.pr += 1
                value = self.new_tmp()
                self.w(f"{value} = {elements}[{index}]")
                self.deopt(f"type({value}) is not float", mode)
                return value
            prop = node.property.value
            if prop == "length":
                elements = self.emit_array_base(node.object)
                self.cnt.pr += 1
                return f"float(len({elements}))"
            path = self.resolve_path(node)
            ops, preads = self.path_counts(path)
            self.add_ops(ops - 1)  # the node itself was charged above
            self.cnt.pr += preads
            return self.hoist_terminal(path, "float")
        if isinstance(node, ast.CallExpression):
            return self.emit_call(node, mode)
        if isinstance(node, ast.ConditionalExpression):
            if self.no_dynamic:
                raise _Reject
            test = self.emit_test(node.test, mode)
            result = self.new_tmp()
            self.w(f"if {test}:")
            self.emit_cond_branch(node.consequent, result, mode)
            self.w("else:")
            self.emit_cond_branch(node.alternate, result, mode)
            return result
        raise _Reject

    def emit_cond_branch(self, node: ast.Node, result: str, mode: str) -> None:
        self.ind += "    "
        saved_cnt = self.cnt
        self.cnt = _Cnt()
        mark = len(self.lines)
        value = self.emit_expr(node, mode)
        count = _count_line(self.cnt)
        if self.cnt.stmts or self.cnt.pw:
            raise _Reject
        self.cnt = saved_cnt
        self.lines.insert(mark, self.ind + count)
        self.w(f"{result} = {value}")
        self.ind = self.ind[:-4]

    def emit_array_base(self, node: ast.Node) -> str:
        """Array bases: a plain identifier or a static member chain."""
        if isinstance(node, ast.Identifier):
            self.root(node.name)
            self.add_ops(1)
            return self.hoist_terminal(("env", node.name), "array")
        if isinstance(node, ast.MemberExpression) and not node.computed:
            path = self.resolve_path(node)
            ops, preads = self.path_counts(path)
            self.add_ops(ops)
            self.cnt.pr += preads
            return self.hoist_terminal(path, "array")
        raise _Reject

    def guarded_index(self, elements: str, key: str, mode: str) -> str:
        """Bounds+integrality guard; returns an int index expression."""
        self.deopt(f"not (0.0 <= {key} < len({elements}))", mode)
        index = self.new_tmp()
        self.w(f"{index} = int({key})")
        self.deopt(f"{index} != {key}", mode)
        return index

    def materialize(self, expr: str) -> str:
        if expr.replace("_", "").isalnum():
            return expr
        tmp = self.new_tmp()
        self.w(f"{tmp} = {expr}")
        return tmp

    def emit_call(self, node: ast.CallExpression, mode: str) -> str:
        callee = node.callee
        # Method call: obj.method(args) — natives only (no `this` handling).
        if isinstance(callee, ast.MemberExpression):
            if callee.computed:
                raise _Reject
            method = callee.property.value
            template = _MATH_TEMPLATES.get(method)
            if template is None or (method == "random" and self.no_dynamic):
                raise _Reject
            expr_tpl, arity, deopt_inf = template
            if len(node.arguments) != arity:
                raise _Reject
            base_path = self.resolve_path(callee.object)
            # Charge the object expression (an identifier or chain).
            ops, preads = self.path_counts(base_path)
            self.add_ops(ops)
            self.cnt.pr += preads
            receiver = self.hoist_object(base_path)
            # Native *names* are not unique (console.log vs Math.log); the
            # receiver must be the actual Math intrinsic, whose internal
            # class_name guest code cannot forge.
            math_key = (base_path, "is-math")
            if math_key not in self.object_locals:
                self.entry.append(f"if {receiver}.class_name != 'Math': return False")
                self.object_locals[math_key] = receiver
            self.hoist_native(base_path + (method,), method)
            self.cnt.pr += 1  # the method lookup on the receiver
            args = [self.materialize(self.emit_expr(arg, mode)) for arg in node.arguments]
            if deopt_inf:
                self.deopt(f"{args[0]} == _INF or {args[0]} == _NINF", mode)
            return expr_tpl.format(*args)
        if not isinstance(callee, ast.Identifier):
            raise _Reject
        name = callee.name
        # Plain call: resolve the build-time value to decide native vs guest.
        holder = self.env.lookup_env(name)
        if holder is None:
            raise _Reject
        value = holder.bindings.get(name)
        if type(value) is NativeFunction:
            # A bare binding to a native can't be verified by name alone
            # (names collide across intrinsics) and pinning the instance
            # would tie the plan to one interpreter — always fall back.
            raise _Reject
        inline = self.resolve_inline(name)
        if len(node.arguments) != len(inline.params):
            raise _Reject
        self.add_ops(1)  # callee identifier read
        args = [self.materialize(self.emit_expr(arg, mode)) for arg in node.arguments]
        # Per-call accounting: calls += 1, the return statement's wrapper
        # (1 op + 1 statement) plus the return expression's ops.
        self.add_ops(1 + inline.cnt_ops)
        self.cnt.stmts += 1
        self.cnt.calls += 1
        self.cnt.pr += inline.cnt_pr
        return "(" + inline.ret_expr.format(*args) + ")"

    # ----------------------------------------------------------------- tests
    def emit_test(self, node: ast.Node, mode: str) -> str:
        """Emit a boolean test expression (``to_boolean`` semantics)."""
        if isinstance(node, ast.BinaryExpression) and node.operator in _CMP_OPS:
            self.add_ops(1)
            left = self.emit_expr(node.left, mode)
            right = self.emit_expr(node.right, mode)
            return f"({left} {_CMP_OPS[node.operator]} {right})"
        if isinstance(node, ast.UnaryExpression) and node.operator == "!":
            self.add_ops(1)
            inner = self.emit_test(node.operand, mode)
            return f"(not {inner})"
        if isinstance(node, ast.LogicalExpression):
            if self.no_dynamic:
                raise _Reject
            self.add_ops(1)
            result = self.new_tmp()
            left = self.emit_test(node.left, mode)
            if node.operator == "&&":
                self.w(f"{result} = False")
                self.w(f"if {left}:")
            elif node.operator == "||":
                self.w(f"{result} = True")
                self.w(f"if not {left}:")
            else:
                raise _Reject
            self.ind += "    "
            saved_cnt = self.cnt
            self.cnt = _Cnt()
            mark = len(self.lines)
            right = self.emit_test(node.right, mode)
            if self.cnt.stmts or self.cnt.pw:
                raise _Reject
            count = _count_line(self.cnt)
            self.cnt = saved_cnt
            self.lines.insert(mark, self.ind + count)
            self.w(f"{result} = {right}")
            self.ind = self.ind[:-4]
            return result
        # Numeric truthiness: true iff non-zero and not NaN.
        value = self.materialize(self.emit_expr(node, mode))
        return f"({value} == {value} and {value} != 0.0)"

    # ------------------------------------------------------------- assembly
    def assemble(self) -> _NestPlan:
        if self.scalar_assigned & self.root_names:
            raise _Reject
        margin = self.total_static_ops + 64
        src: List[str] = ["def _nest(rt, env, _C):"]
        e = "    "
        src.append(e + "stats = rt.stats")
        src.append(e + f"if stats.ops + {margin} >= rt.max_ops: return False")
        if self.has_guest_calls:
            src.append(e + "if len(rt.call_stack) >= rt.max_call_depth: return False")
        src.append(e + "_ALIAS = []")
        for line in self.entry:
            src.append(e + line)
        # Scalar entry: resolve holders, guard consts/types, unbox.
        fs_needed = bool(self.scalar_var_declared)
        if fs_needed:
            src.append(e + "_fs = env.nearest_function_scope()")
        for name, local in self.scalars.items():
            holder = f"_h_{local}"
            self.scalar_holders[name] = holder
            src.append(e + f"{holder} = env.lookup_env({name!r})")
            src.append(e + f"if {holder} is None: return False")
            if name in self.scalar_assigned:
                src.append(e + f"if {name!r} in {holder}.consts: return False")
            if name in self.scalar_var_declared:
                src.append(e + f"if {holder} is not _fs: return False")
            src.append(e + f"{local} = {holder}.bindings[{name!r}]")
            if name in self.scalar_guarded:
                src.append(e + f"if type({local}) is not float: return False")
        # Inline-free aliasing: a free binding an inline reads must not be a
        # binding the nest assigns.
        if self.entry and self.scalar_assigned:
            src.append(e + "for _af, _an in _ALIAS:")
            checks = " or ".join(
                f"(_an == {name!r} and _af is {self.scalar_holders[name]})"
                for name in sorted(self.scalar_assigned)
            )
            src.append(e + f"    if {checks}: return False" if checks else e + "    pass")
        src.append(e + "_ops = 0; _stmts = 0; _li = 0; _pr = 0; _pw = 0; _calls = 0")
        src.append(e + "_s_ops = 0; _s_stmts = 0; _s_li = 0; _s_pr = 0; _s_pw = 0; _s_calls = 0")
        src.append(e + "_site = 0")
        src.append(e + f"_lim = rt.max_ops - stats.ops - {margin}")
        src.append(e + "try:")
        src.extend(self.lines)
        src.append(e + "except _DJ:")
        src.append(e + "    _ops = _s_ops; _stmts = _s_stmts; _li = _s_li; _pr = _s_pr; _pw = _s_pw; _calls = _s_calls")
        self.emit_flush(src, e + "    ")
        src.append(e + "    raise _Deopt(_site)")
        self.emit_flush(src, e)
        src.append(e + "return True")
        source = "\n".join(src)
        namespace = dict(_GEN_GLOBALS)
        code = compile(source, "<fastnest>", "exec")
        exec(code, namespace)
        fn_raw = namespace["_nest"]
        consts = tuple(self.consts)

        def fn(rt, env, _fn=fn_raw, _consts=consts):
            return _fn(rt, env, _consts)

        return _NestPlan(fn, self.sites, source)

    def emit_flush(self, src: List[str], e: str) -> None:
        src.append(e + "stats.ops += _ops")
        src.append(e + "stats.statements += _stmts")
        src.append(e + "stats.loop_iterations += _li")
        src.append(e + "stats.property_reads += _pr")
        src.append(e + "stats.property_writes += _pw")
        src.append(e + "stats.calls += _calls")
        src.append(e + "_ck = rt.clock")
        src.append(e + "_n = _ck._now_ms; _m = _ck.ms_per_op")
        src.append(e + "for _i in range(_ops): _n = _n + _m")
        src.append(e + "_ck._now_ms = _n")
        for name in sorted(self.scalar_assigned):
            holder = self.scalar_holders[name]
            local = self.scalars[name]
            src.append(e + f"{holder}.store_binding({name!r}, {local})")


def _ident(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


def _num(value: float) -> str:
    if value != value:
        return "_NAN"
    if value == _INF:
        return "_INF"
    if value == -_INF:
        return "_NINF"
    return repr(float(value))


_DIV_SEQ = [0]


def _arith(operator: str, left: str, right: str) -> str:
    if operator == "+":
        return f"({left} + {right})"
    if operator == "-":
        return f"({left} - {right})"
    if operator == "*":
        return f"({left} * {right})"
    if operator == "/":
        # Unique walrus name per site: nested divisions must not clobber each
        # other's denominator.  Truthiness of +/-0.0 is False, so both zeros
        # route to _op_div (matching the closure tier); NaN/inf divide inline.
        _DIV_SEQ[0] += 1
        d = f"_dv{_DIV_SEQ[0]}"
        return f"(({left}) / {d} if ({d} := ({right})) else _op_div({left}, {d}))"
    if operator == "%":
        return f"_op_mod({left}, {right})"
    raise _Reject


def _count_line(cnt: _Cnt) -> str:
    parts = []
    if cnt.ops:
        parts.append(f"_ops += {cnt.ops}")
    if cnt.stmts:
        parts.append(f"_stmts += {cnt.stmts}")
    if cnt.pr:
        parts.append(f"_pr += {cnt.pr}")
    if cnt.pw:
        parts.append(f"_pw += {cnt.pw}")
    if cnt.calls:
        parts.append(f"_calls += {cnt.calls}")
    return "; ".join(parts) if parts else "pass"


def _build_plan(node: ast.ForStatement, rt, env: Environment) -> Optional[_NestPlan]:
    try:
        return _PlanBuilder(node, rt, env).build()
    except _Reject:
        return None
