"""Error types raised by the mini-JavaScript engine.

The engine distinguishes three error families:

* :class:`JSSyntaxError` — raised by the lexer or parser for malformed source.
* :class:`JSRuntimeError` — raised by the interpreter for semantic errors
  (calling a non-function, reading a property of ``undefined``, ...).
* :class:`JSThrownValue` — carries a value thrown by JS ``throw`` so that
  ``try``/``catch`` in guest code (and host tests) can observe it.
"""

from __future__ import annotations

from dataclasses import dataclass


class JSError(Exception):
    """Base class for all engine errors."""


@dataclass
class SourceLocation:
    """A position in guest source code (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.line}:{self.column}"


class JSSyntaxError(JSError):
    """Lexical or grammatical error in guest source."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"SyntaxError: {message} (line {line}, col {column})")
        self.raw_message = message
        self.line = line
        self.column = column


class JSRuntimeError(JSError):
    """Semantic error raised while evaluating guest code."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"RuntimeError: {message} (line {line})")
        self.raw_message = message
        self.line = line


class JSReferenceError(JSRuntimeError):
    """Access to an undeclared identifier."""


class JSTypeError(JSRuntimeError):
    """Operation applied to a value of the wrong type."""


class JSRangeError(JSRuntimeError):
    """Value outside the allowed range (e.g. invalid array length)."""


class JSThrownValue(JSError):
    """A value thrown by guest ``throw`` that escaped to the host."""

    def __init__(self, value: object, line: int = 0) -> None:
        super().__init__(f"Uncaught JS value: {value!r} (line {line})")
        self.value = value
        self.line = line


class InterpreterLimitError(JSRuntimeError):
    """Execution exceeded a configured safety limit (steps or call depth)."""
