"""Welford's online algorithm for running mean and variance.

Section 3.2 of the paper: "the trip count and the loop's running time are
added to the running totals, and variance is updated using Welford's online
algorithm [36]".  The same accumulator is used here for both trip counts and
per-instance running times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class OnlineStats:
    """Numerically stable running mean/variance accumulator."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    total: float = 0.0

    def push(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self.mean
        self.mean += delta / self.count
        delta2 = value - self.mean
        self.m2 += delta * delta2
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Population variance (matches Welford's running M2/n)."""
        if self.count == 0:
            return 0.0
        return self.m2 / self.count

    @property
    def sample_variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two accumulators (parallel Welford merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return self
        combined = self.count + other.count
        delta = other.mean - self.mean
        self.m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / combined
        self.mean = (self.mean * self.count + other.mean * other.count) / combined
        self.count = combined
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }
