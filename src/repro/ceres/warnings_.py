"""Warning records produced by the dependence-analysis mode.

The paper's Section 3.3 defines three classes of problematic memory access,
each of which maps to a classic dependence kind:

* ``VAR_WRITE`` — a write to a variable declared outside the context of the
  current loop iteration (output / write-after-write dependence).
* ``PROP_WRITE`` — a write to a field of an object initialized outside the
  current loop iteration (output dependence, possibly anti-dependence).
* ``FLOW_READ`` — a read of a field that was written in a *different*
  iteration of the loop (flow / read-after-write, i.e. a true dependence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from .loopstack import CharTriple


class WarningKind(Enum):
    VAR_WRITE = "write to shared variable"
    PROP_WRITE = "write to field of shared object"
    FLOW_READ = "cross-iteration read (flow dependence)"


#: Map from warning kind to the classic dependence terminology used in the
#: paper's discussion (Allen & Kennedy).
DEPENDENCE_CLASS = {
    WarningKind.VAR_WRITE: "output (write-after-write)",
    WarningKind.PROP_WRITE: "output/anti (write-after-write, write-after-read)",
    WarningKind.FLOW_READ: "flow (read-after-write)",
}


@dataclass
class DependenceWarning:
    """One aggregated warning for a (kind, name, characterization) combination."""

    kind: WarningKind
    name: str
    triples: Tuple[CharTriple, ...]
    focus_loop_id: Optional[int]
    creation_site_label: str = ""
    first_line: int = 0
    occurrences: int = 1
    #: Distinct iterations of the focus loop in which the access occurred
    #: (bounded sample; used by the difficulty classifier).
    sample_iterations: List[int] = field(default_factory=list)

    @property
    def dependence_class(self) -> str:
        return DEPENDENCE_CLASS[self.kind]

    def key(self) -> Tuple:
        return (self.kind, self.name, self.triples)

    def render(self, labeler) -> str:
        from .loopstack import render_triples

        chain = render_triples(self.triples, labeler)
        location = f" (created at {self.creation_site_label})" if self.creation_site_label else ""
        return (
            f"[{self.kind.value}] {self.name}{location}: {chain} "
            f"| {self.dependence_class} | seen {self.occurrences} time(s)"
        )


@dataclass
class RecursionWarning:
    """Raised when recursion re-opens a loop that is already on the stack.

    The paper: "recursive function calls may make the stack grow indefinitely.
    JS-CERES detects this, raises a warning, and discards the analysis results
    for the affected loop nest."
    """

    loop_id: int
    loop_label: str

    def render(self) -> str:
        return (
            f"[recursion] loop {self.loop_label} was re-entered recursively; "
            "analysis results for this nest are discarded"
        )
