"""JS-CERES instrumentation mode 1: lightweight profiling.

Section 3.1: "the tool only measures two scalar values: the total time from
the start of the application, and the total runtime spent in all the loops in
the program.  JS-CERES adds before and after each loop code that increments
and, respectively, decrements a counter that represents the number of open
loops in the program.  When encountering a loop and the counter is 0, a
separate variable remembers a timestamp.  When exiting a loop brings the
counter to 0, the difference between the current timestamp and the last
remembered timestamp is added to a global variable that holds the total time
spent in loops."

The implementation below mirrors that description exactly, against the
virtual high-resolution clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..jsvm.hooks import EV_LOOP, Tracer


@dataclass
class LightweightResult:
    """Scalar results of a lightweight profiling run (times in milliseconds)."""

    total_ms: float
    loops_ms: float
    top_level_loop_entries: int

    @property
    def total_seconds(self) -> float:
        return self.total_ms / 1000.0

    @property
    def loops_seconds(self) -> float:
        return self.loops_ms / 1000.0

    @property
    def loop_fraction(self) -> float:
        if self.total_ms <= 0:
            return 0.0
        return min(self.loops_ms / self.total_ms, 1.0)


class LightweightProfiler(Tracer):
    """Open-loop counter + timestamps, exactly as described in Section 3.1."""

    #: Mode 1 only needs loop boundaries — the minimal instrumentation mask.
    EVENTS = EV_LOOP

    def __init__(self) -> None:
        self.open_loops = 0
        self.loops_ms = 0.0
        self.top_level_loop_entries = 0
        self._outermost_entry_ms: Optional[float] = None
        self._start_ms: Optional[float] = None
        self._end_ms: Optional[float] = None

    # -- lifecycle --------------------------------------------------------
    def start(self, clock) -> None:
        """Remember the application start time."""
        self._start_ms = clock.now()

    def stop(self, clock) -> None:
        """Remember the moment the results are gathered."""
        self._end_ms = clock.now()

    # -- hook events --------------------------------------------------------
    def on_loop_enter(self, interp, node) -> None:
        if self._start_ms is None:
            self._start_ms = interp.clock.now()
        if self.open_loops == 0:
            self._outermost_entry_ms = interp.clock.now()
            self.top_level_loop_entries += 1
        self.open_loops += 1

    def on_loop_exit(self, interp, node, trip_count) -> None:
        if self.open_loops == 0:
            return
        self.open_loops -= 1
        if self.open_loops == 0 and self._outermost_entry_ms is not None:
            self.loops_ms += interp.clock.now() - self._outermost_entry_ms
            self._outermost_entry_ms = None

    # -- results --------------------------------------------------------------
    def result(self, clock) -> LightweightResult:
        start = self._start_ms if self._start_ms is not None else 0.0
        end = self._end_ms if self._end_ms is not None else clock.now()
        return LightweightResult(
            total_ms=max(end - start, 0.0),
            loops_ms=self.loops_ms,
            top_level_loop_entries=self.top_level_loop_entries,
        )
