"""Identification of syntactic loops and object creation sites.

JS-CERES reports refer to loops by their syntax and source line, e.g.
``for(line 6)`` or ``while(line 24)`` in the paper's Figure 6 walkthrough.
This module assigns those labels by walking the parsed program once, and also
records every object creation site (object/array literals, ``new``
expressions, function definitions) so the dependence analysis can describe
where a shared object came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..jsvm import ast_nodes as ast

_LOOP_KEYWORD = {
    ast.ForStatement: "for",
    ast.ForInStatement: "for-in",
    ast.WhileStatement: "while",
    ast.DoWhileStatement: "do-while",
}


@dataclass
class LoopSite:
    """A syntactic loop in a program."""

    node_id: int
    kind: str
    line: int
    program: str
    label: str
    #: node ids of the syntactic loops that enclose this one (outermost first).
    enclosing: List[int] = field(default_factory=list)
    #: True when the loop is (syntactically) nested inside a function that is
    #: itself nested inside another loop body — used only for reporting.
    depth: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


@dataclass
class CreationSite:
    """A syntactic location that creates objects at runtime."""

    node_id: int
    kind: str
    line: int
    program: str
    label: str


class ProgramIndex:
    """Per-program index of loop and creation sites."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.loops: Dict[int, LoopSite] = {}
        self.creation_sites: Dict[int, CreationSite] = {}
        self._index(program)

    # ------------------------------------------------------------------ build
    def _index(self, program: ast.Program) -> None:
        self._walk(program, enclosing=[])

    def _walk(self, node: ast.Node, enclosing: List[int]) -> None:
        node_type = type(node)
        if node_type in _LOOP_KEYWORD:
            kind = _LOOP_KEYWORD[node_type]
            site = LoopSite(
                node_id=node.node_id,
                kind=kind,
                line=node.line,
                program=self.program.name,
                label=f"{kind}(line {node.line})",
                enclosing=list(enclosing),
                depth=len(enclosing),
            )
            self.loops[node.node_id] = site
            enclosing = enclosing + [node.node_id]
        elif node_type in ast.CREATION_SITE_TYPES:
            kind = node_type.__name__
            self.creation_sites[node.node_id] = CreationSite(
                node_id=node.node_id,
                kind=kind,
                line=node.line,
                program=self.program.name,
                label=f"{kind.lower()}(line {node.line})",
            )
        for child in ast.iter_child_nodes(node):
            self._walk(child, enclosing)

    # ------------------------------------------------------------------ query
    def loop_label(self, node_id: int) -> str:
        site = self.loops.get(node_id)
        return site.label if site is not None else f"loop#{node_id}"

    def loop_for_line(self, line: int) -> Optional[LoopSite]:
        """Return the loop declared on ``line`` (the paper identifies loops by line)."""
        for site in self.loops.values():
            if site.line == line:
                return site
        return None

    def top_level_loops(self) -> List[LoopSite]:
        return [site for site in self.loops.values() if not site.enclosing]

    def loops_of_nest(self, root_node_id: int) -> List[LoopSite]:
        """All loops whose enclosing chain starts at ``root_node_id`` (plus the root)."""
        nest = [self.loops[root_node_id]] if root_node_id in self.loops else []
        for site in self.loops.values():
            if root_node_id in site.enclosing:
                nest.append(site)
        return nest


class IndexRegistry:
    """Indexes for every program analysed in a session (keyed by program name)."""

    def __init__(self) -> None:
        self.indexes: Dict[str, ProgramIndex] = {}

    def add(self, program: ast.Program) -> ProgramIndex:
        index = ProgramIndex(program)
        self.indexes[program.name] = index
        return index

    def add_index(self, index: ProgramIndex) -> ProgramIndex:
        """Register a prebuilt (cached) index; indexes are immutable once built."""
        self.indexes[index.program.name] = index
        return index

    def get(self, program_name: str) -> Optional[ProgramIndex]:
        return self.indexes.get(program_name)

    def loop_label(self, node_id: int) -> str:
        for index in self.indexes.values():
            if node_id in index.loops:
                return index.loops[node_id].label
        return f"loop#{node_id}"

    def loop_for_line(self, line: int) -> Optional[LoopSite]:
        """The (first) loop declared on ``line`` across every indexed program."""
        for index in self.indexes.values():
            site = index.loop_for_line(line)
            if site is not None:
                return site
        return None

    def loop_lines(self) -> List[int]:
        """Sorted distinct source lines that declare a loop (for diagnostics)."""
        return sorted({site.line for site in self.all_loops()})

    def all_loops(self) -> List[LoopSite]:
        sites: List[LoopSite] = []
        for index in self.indexes.values():
            sites.extend(index.loops.values())
        return sites
