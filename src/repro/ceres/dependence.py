"""JS-CERES instrumentation mode 3: runtime dependence analysis.

This tracer reproduces Section 3.3 of the paper:

* It maintains the loop-characterization stack (:class:`LoopStack`).
* Every object creation site stamps the new object with the current stack
  (standing in for the ``Proxy`` wrapper used by the original tool), and
  every *environment* creation stamps the environment, which is how writes to
  ``var``-scoped variables are characterized.
* Every variable write, property write and property read is diffed against
  the relevant stamp; problematic accesses produce
  :class:`~repro.ceres.warnings_.DependenceWarning` records whose rendered
  form matches the paper's ``while(line 24) ok ok -> for(line 6) ok
  dependence`` notation.
* Reads of properties written in a *different* iteration are detected via a
  per-(object, property) snapshot of the stack at the last write, yielding
  flow-dependence warnings.

Because this instrumentation has a very high overhead, the paper lets the
user focus the analysis on one loop; ``focus_loop_id`` provides the same
capability (``None`` analyses every loop).

In addition to the warnings themselves, the tracer gathers per-iteration
*access-pattern summaries* for the focused loop (which properties of which
shared objects each iteration reads/writes).  These are not part of the
original tool's output — the paper's authors inspected access patterns
manually — but they feed the automated difficulty rubric in
:mod:`repro.analysis.difficulty` that regenerates Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..jsvm.hooks import EV_ENV, EV_LOOP, EV_OBJECT, EV_PROP, EV_VAR, Tracer
from ..jsvm.values import JSArray, JSObject
from .ids import IndexRegistry
from .loopstack import CharTriple, LoopStack, Stamp, diff_stamp, is_problematic
from .warnings_ import DependenceWarning, RecursionWarning, WarningKind

#: Maximum number of distinct iterations sampled per access-pattern record.
_MAX_SAMPLED_ITERATIONS = 4096


@dataclass
class AccessPattern:
    """Per-iteration read/write footprint of one shared target in the focus loop."""

    name: str
    target_kind: str  # "variable" | "object"
    creation_site_label: str = ""
    #: iteration -> set of property names written (variables use the name itself)
    writes_by_iteration: Dict[int, Set[str]] = field(default_factory=dict)
    reads_by_iteration: Dict[int, Set[str]] = field(default_factory=dict)
    compound_writes: int = 0  # writes that were read-modify-write on the same property
    total_writes: int = 0
    total_reads: int = 0
    #: cross-iteration reads of values written in the *same instance* of the
    #: focus loop (true loop-carried flow dependences)
    flow_dependences: int = 0
    truncated: bool = False

    def record_write(self, iteration: int, prop: str) -> None:
        self.total_writes += 1
        bucket = self.writes_by_iteration.setdefault(iteration, set())
        if len(self.writes_by_iteration) <= _MAX_SAMPLED_ITERATIONS:
            bucket.add(prop)
        else:
            self.truncated = True

    def record_read(self, iteration: int, prop: str) -> None:
        self.total_reads += 1
        bucket = self.reads_by_iteration.setdefault(iteration, set())
        if len(self.reads_by_iteration) <= _MAX_SAMPLED_ITERATIONS:
            bucket.add(prop)
        else:
            self.truncated = True

    # -- pattern queries used by the difficulty rubric -----------------------
    def writes_are_disjoint(self) -> bool:
        """True when no property is written by two different iterations."""
        seen: Set[str] = set()
        for props in self.writes_by_iteration.values():
            if props & seen:
                return False
            seen |= props
        return True

    def overlapping_write_targets(self) -> Set[str]:
        seen: Set[str] = set()
        overlap: Set[str] = set()
        for props in self.writes_by_iteration.values():
            overlap |= props & seen
            seen |= props
        return overlap

    def has_flow_dependence(self) -> bool:
        return self.flow_dependences > 0


@dataclass
class DependenceReport:
    """Full output of one dependence-analysis run."""

    focus_loop_id: Optional[int]
    focus_loop_label: str
    warnings: List[DependenceWarning] = field(default_factory=list)
    recursion_warnings: List[RecursionWarning] = field(default_factory=list)
    patterns: Dict[str, AccessPattern] = field(default_factory=dict)
    iterations_observed: int = 0

    def problematic_names(self) -> List[str]:
        return sorted({w.name for w in self.warnings})

    def warnings_of_kind(self, kind: WarningKind) -> List[DependenceWarning]:
        return [w for w in self.warnings if w.kind == kind]

    def has_flow_dependences(self) -> bool:
        return any(w.kind == WarningKind.FLOW_READ for w in self.warnings)


class DependenceAnalyzer(Tracer):
    """Dependence-analysis tracer (JS-CERES mode 3)."""

    #: Mode 3 watches loops, creation sites, environments and every variable
    #: and property access — the paper's "very high overhead" configuration.
    EVENTS = EV_LOOP | EV_OBJECT | EV_ENV | EV_VAR | EV_PROP

    def __init__(
        self,
        registry: Optional[IndexRegistry] = None,
        focus_loop_id: Optional[int] = None,
        incremental: bool = False,
    ) -> None:
        self.registry = registry
        self.focus_loop_id = focus_loop_id
        #: Incremental (streaming) mode: per-nest state is evicted once the
        #: nest closes, keeping resident memory bounded by the *open* nests
        #: instead of the whole run.  Results are identical to the default
        #: mode — see :meth:`on_loop_exit` for why eviction is sound — but
        #: the mode requires the event source to keep every stand-in object
        #: and environment alive for the analyzer's lifetime (the trace
        #: replayer's intern tables do), because it skips the id-pinning
        #: retention list.
        self.incremental = incremental
        self.stack = LoopStack()
        self.warnings: Dict[Tuple, DependenceWarning] = {}
        self.recursion_loop_ids: Set[int] = set()
        self.patterns: Dict[str, AccessPattern] = {}
        self.iterations_observed = 0
        #: (id(object), property) -> stack snapshot of the last write
        self._last_write_stamp: Dict[Tuple[int, str], Stamp] = {}
        #: environment -> creation stamp (environments are not JSObjects).
        #: Keyed by the environment *itself*: live scopes hash by identity,
        #: while trace replay hands dense integer indexes — value-hashed, so
        #: no stand-in object per recorded scope needs to stay resident.
        self._env_stamps: Dict[Any, Stamp] = {}
        #: names of variables that hold per-iteration aliases (informational)
        self._variable_names: Dict[int, str] = {}
        #: Strong references to every object observed at creation.  The
        #: analyzer keys patterns and write stamps by ``id()``; letting guest
        #: objects die mid-run would allow CPython to reuse their ids and
        #: silently merge unrelated targets — making reports depend on the
        #: process's allocation history.  Retention keeps ids unambiguous
        #: (and results deterministic) for the analyzer's lifetime.
        self._retained: List[Any] = []

    # ------------------------------------------------------------------ labels
    def _label(self, loop_id: int) -> str:
        if self.registry is not None:
            return self.registry.loop_label(loop_id)
        return f"loop#{loop_id}"

    def _creation_label(self, obj: Any) -> str:
        if isinstance(obj, JSObject) and obj.creation_site >= 0 and self.registry is not None:
            for index in self.registry.indexes.values():
                site = index.creation_sites.get(obj.creation_site)
                if site is not None:
                    return site.label
        if isinstance(obj, JSArray):
            return "array"
        if isinstance(obj, JSObject):
            return obj.class_name.lower()
        return ""

    # -------------------------------------------------------------- loop hooks
    def on_loop_enter(self, interp, node) -> None:
        self.stack.push_loop(node.node_id)
        if self.stack.recursion_warnings and node.node_id in self.stack.recursion_warnings:
            self.recursion_loop_ids.add(node.node_id)

    def on_loop_iteration(self, interp, node, iteration) -> None:
        self.stack.next_iteration(node.node_id)
        if self._in_focus(node.node_id):
            self.iterations_observed += 1

    def on_loop_exit(self, interp, node, trip_count) -> None:
        self.stack.pop_loop(node.node_id)
        if not self.incremental:
            return
        if not self.stack.entries:
            # Every held stamp now references dead loop instances: instance
            # counters are globally monotonic, so a stamp whose instances are
            # all closed diffs identically to the empty stamp, and the flow
            # check (same instance required) can never match it again.
            # Dropping the maps is therefore behavior-identical.
            self._last_write_stamp.clear()
            self._env_stamps.clear()
        elif (
            self.focus_loop_id is not None
            and node.node_id == self.focus_loop_id
            and not self.stack.contains(self.focus_loop_id)
        ):
            # Focused analysis: flow detection only ever matches the current
            # focus-loop *instance*, which just closed — stamps from it are
            # dead.  (Env stamps stay: warning triples for still-open outer
            # loops depend on them.)
            self._last_write_stamp.clear()

    # --------------------------------------------------------- creation stamps
    def on_object_created(self, interp, obj, node) -> None:
        if isinstance(obj, JSObject):
            obj.creation_stamp = self.stack.snapshot()
            if not self.incremental:
                self._retained.append(obj)

    def on_env_created(self, interp, env, kind) -> None:
        stamp = self.stack.snapshot()
        if self.incremental and not stamp:
            # An empty stamp is what lookups default to — don't store it.
            return
        # The dict key itself pins a live environment object for the
        # analyzer's lifetime (identity-keyed, so a recycled id can never
        # alias it); no extra retention needed.
        self._env_stamps[env] = stamp

    # ------------------------------------------------------------ access hooks
    def on_var_write(self, interp, name, env, value, node) -> None:
        if not self._analysis_active():
            return
        stamp = self._env_stamps.get(env, ())
        triples = diff_stamp(self.stack.entries, stamp)
        self._record_pattern("variable", name, "", write=True, prop=name)
        if is_problematic(triples, self._focus_for_check()):
            self._add_warning(WarningKind.VAR_WRITE, name, triples, "", node)

    def on_prop_write(self, interp, obj, name, value, node) -> None:
        if not self._analysis_active() or not isinstance(obj, JSObject):
            return
        stamp: Stamp = obj.creation_stamp if obj.creation_stamp is not None else ()
        triples = diff_stamp(self.stack.entries, stamp)
        target = self._target_name(obj)
        self._record_pattern("object", target, self._creation_label(obj), write=True, prop=name, obj=obj)
        if is_problematic(triples, self._focus_for_check()):
            self._add_warning(
                WarningKind.PROP_WRITE, f"{target}.{name}", triples, self._creation_label(obj), node
            )
        # Remember the stack at this write so future reads can detect flow deps.
        self._last_write_stamp[(id(obj), name)] = self.stack.snapshot()

    def on_prop_read(self, interp, obj, name, node) -> None:
        if not self._analysis_active() or not isinstance(obj, JSObject):
            return
        target = self._target_name(obj)
        self._record_pattern("object", target, self._creation_label(obj), write=False, prop=name, obj=obj)
        write_stamp = self._last_write_stamp.get((id(obj), name))
        if write_stamp is None:
            return
        if not self._is_cross_iteration_write(write_stamp):
            # Last write happened before the loop (read-only input) or in the
            # current iteration (iteration-private) — no loop-carried flow.
            return
        triples = diff_stamp(self.stack.entries, write_stamp)
        pattern = self.patterns.get(self._pattern_key("object", target, obj))
        if pattern is not None:
            pattern.flow_dependences += 1
        self._add_warning(
            WarningKind.FLOW_READ, f"{target}.{name}", triples, self._creation_label(obj), node
        )

    def _is_cross_iteration_write(self, write_stamp: Stamp) -> bool:
        """True when the last write happened in the *same instance* of the
        relevant loop but in a *different iteration* — the paper's definition
        of a flow dependence (Section 3.3, access type c).

        With a focus loop only that loop is considered; otherwise any
        currently open loop qualifies.
        """
        stamp_by_loop = {entry.loop_id: entry for entry in write_stamp}
        for entry in self.stack.entries:
            if self.focus_loop_id is not None and entry.loop_id != self.focus_loop_id:
                continue
            written = stamp_by_loop.get(entry.loop_id)
            if written is not None and written.instance == entry.instance and written.iteration != entry.iteration:
                return True
        return False

    # ----------------------------------------------------------------- helpers
    def _analysis_active(self) -> bool:
        """Accesses only matter while at least one (focused) loop is open."""
        if not self.stack.entries:
            return False
        if self.focus_loop_id is None:
            return True
        return self.stack.contains(self.focus_loop_id)

    def _in_focus(self, loop_id: int) -> bool:
        return self.focus_loop_id is None or loop_id == self.focus_loop_id

    def _focus_for_check(self) -> Optional[int]:
        return self.focus_loop_id

    def _focus_iteration(self) -> int:
        """Current iteration number of the focus loop (or of the innermost loop)."""
        if self.focus_loop_id is not None:
            for entry in self.stack.entries:
                if entry.loop_id == self.focus_loop_id:
                    return entry.iteration
            return -1
        innermost = self.stack.innermost()
        return innermost.iteration if innermost is not None else -1

    def _target_name(self, obj: JSObject) -> str:
        label = self._creation_label(obj)
        return label if label else obj.class_name.lower()

    def _pattern_key(self, kind: str, name: str, obj: Optional[JSObject] = None) -> str:
        # Object patterns are tracked per runtime object (distinct objects
        # allocated at the same site have independent footprints); variables
        # are tracked per name.
        if obj is not None:
            return f"{kind}:{id(obj)}"
        return f"{kind}:{name}"

    def _record_pattern(
        self,
        kind: str,
        name: str,
        creation_label: str,
        write: bool,
        prop: str,
        obj: Optional[JSObject] = None,
    ) -> None:
        iteration = self._focus_iteration()
        if iteration < 0:
            return
        key = self._pattern_key(kind, name, obj)
        pattern = self.patterns.get(key)
        if pattern is None:
            pattern = AccessPattern(name=name, target_kind=kind, creation_site_label=creation_label)
            self.patterns[key] = pattern
        if write:
            pattern.record_write(iteration, prop)
        else:
            pattern.record_read(iteration, prop)

    def _add_warning(
        self,
        kind: WarningKind,
        name: str,
        triples: List[CharTriple],
        creation_label: str,
        node,
    ) -> None:
        warning = DependenceWarning(
            kind=kind,
            name=name,
            triples=tuple(triples),
            focus_loop_id=self.focus_loop_id,
            creation_site_label=creation_label,
            first_line=getattr(node, "line", 0),
        )
        existing = self.warnings.get(warning.key())
        if existing is None:
            warning.sample_iterations.append(self._focus_iteration())
            self.warnings[warning.key()] = warning
        else:
            existing.occurrences += 1
            if len(existing.sample_iterations) < 64:
                iteration = self._focus_iteration()
                if iteration not in existing.sample_iterations:
                    existing.sample_iterations.append(iteration)

    # ------------------------------------------------------------------ report
    def report(self) -> DependenceReport:
        focus_label = self._label(self.focus_loop_id) if self.focus_loop_id is not None else "(all loops)"
        recursion = [
            RecursionWarning(loop_id=loop_id, loop_label=self._label(loop_id))
            for loop_id in sorted(self.recursion_loop_ids)
        ]
        warnings = list(self.warnings.values())
        # The paper discards results for nests affected by recursion.
        if self.recursion_loop_ids:
            warnings = [
                w
                for w in warnings
                if not any(t.loop_id in self.recursion_loop_ids for t in w.triples)
            ]
        return DependenceReport(
            focus_loop_id=self.focus_loop_id,
            focus_loop_label=focus_label,
            warnings=warnings,
            recursion_warnings=recursion,
            patterns=dict(self.patterns),
            iterations_observed=self.iterations_observed,
        )

    def render_warnings(self) -> List[str]:
        return [w.render(self._label) for w in self.warnings.values()]
