"""Deprecated JSCeres facade: thin shims over :mod:`repro.api`.

The historical top-level API exposed four near-duplicate ``run_*`` methods
that each hand-wired a hook bus, proxy and browser session.  That wiring now
lives in :class:`repro.api.session.AnalysisSession`; ``JSCeres`` remains as
a compatibility shim so existing callers keep working unchanged, but every
``run_*`` method emits a :class:`DeprecationWarning` pointing at the
replacement::

    from repro.api import AnalysisSession, RunSpec

    with AnalysisSession() as session:
        light = session.run(workload, RunSpec.lightweight())
        loops = session.run(workload, RunSpec.loop_profile())
        deps  = session.run(workload, RunSpec.dependence(focus_line=24))

The legacy result dataclasses (:class:`LightweightRun`,
:class:`LoopProfileRun`, :class:`DependenceRun`) are rebuilt from the
session's :class:`~repro.api.results.RunResult` artifacts, so their fields
and values are byte-identical to the seed behaviour.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional

from .dependence import DependenceReport
from .ids import IndexRegistry, LoopSite
from .lightweight import LightweightResult
from .loop_profiler import LoopProfile
from .repository import RemotePublisher, ResultsRepository


@dataclass
class LightweightRun:
    """Results of a mode-1 run (one Table 2 row)."""

    workload: str
    result: LightweightResult
    active_seconds: float
    report_text: str
    commit_id: str

    @property
    def total_seconds(self) -> float:
        return self.result.total_seconds

    @property
    def loops_seconds(self) -> float:
        return self.result.loops_seconds


@dataclass
class LoopProfileRun:
    """Results of a mode-2 run."""

    workload: str
    profiles: List[LoopProfile]
    registry: IndexRegistry
    total_loop_time_ms: float
    report_text: str
    commit_id: str

    @property
    def hottest(self) -> List[LoopProfile]:
        return sorted(self.profiles, key=lambda p: p.total_time_ms, reverse=True)

    def profile_for_line(self, line: int) -> Optional[LoopProfile]:
        for profile in self.profiles:
            if profile.line == line:
                return profile
        return None


@dataclass
class DependenceRun:
    """Results of a mode-3 run."""

    workload: str
    report: DependenceReport
    registry: IndexRegistry
    report_text: str
    commit_id: str


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"JSCeres.{old} is deprecated; use {new} on repro.api.AnalysisSession instead",
        DeprecationWarning,
        stacklevel=3,
    )


class JSCeres:
    """Deprecated facade over :class:`~repro.api.session.AnalysisSession`.

    The constructor keeps its historical signature; ``repository``,
    ``publisher`` and ``script_cache`` now simply expose the underlying
    session's resources.
    """

    def __init__(
        self,
        repository: Optional[ResultsRepository] = None,
        script_cache=None,
    ) -> None:
        from ..api.session import AnalysisSession

        self.session = AnalysisSession(repository=repository, script_cache=script_cache)

    @property
    def repository(self) -> ResultsRepository:
        return self.session.repository

    @property
    def publisher(self) -> RemotePublisher:
        return self.session.publisher

    @property
    def script_cache(self):
        return self.session.script_cache

    # ------------------------------------------------------------------ runs
    def run_lightweight(self, workload, with_gecko: bool = True) -> LightweightRun:
        """Mode 1: total time + time in loops (+ Gecko-style active time)."""
        from ..api.spec import RunSpec

        _deprecated("run_lightweight", "run(workload, RunSpec.lightweight())")
        run = self.session.run(workload, RunSpec.lightweight(with_gecko=with_gecko))
        return LightweightRun(
            workload=run.workload,
            result=run.artifacts.lightweight_result,
            active_seconds=run.active_seconds,
            report_text=run.report_text,
            commit_id=run.commit_id,
        )

    def run_loop_profile(self, workload) -> LoopProfileRun:
        """Mode 2: per-syntactic-loop instance/time/trip-count statistics."""
        from ..api.spec import RunSpec

        _deprecated("run_loop_profile", "run(workload, RunSpec.loop_profile())")
        run = self.session.run(workload, RunSpec.loop_profile())
        profiler = run.artifacts.loop_profiler
        return LoopProfileRun(
            workload=run.workload,
            profiles=list(profiler.profiles.values()),
            registry=run.artifacts.registry,
            total_loop_time_ms=profiler.total_loop_time_ms(),
            report_text=run.report_text,
            commit_id=run.commit_id,
        )

    def run_dependence(
        self,
        workload,
        focus_line: Optional[int] = None,
        focus_loop_id: Optional[int] = None,
    ) -> DependenceRun:
        """Mode 3: dependence analysis, optionally focused on one loop.

        ``focus_line`` identifies the loop by source line; a line that
        matches no registered loop raises
        :class:`~repro.api.spec.UnknownFocusLineError` (the seed silently
        fell back to analyzing *all* loops).
        """
        from ..api.spec import RunSpec

        _deprecated("run_dependence", "run(workload, RunSpec.dependence(...))")
        run = self.session.run(
            workload,
            RunSpec.dependence(focus_line=focus_line, focus_loop_id=focus_loop_id),
        )
        return DependenceRun(
            workload=run.workload,
            report=run.artifacts.dependence_report,
            registry=run.artifacts.registry,
            report_text=run.report_text,
            commit_id=run.commit_id,
        )

    def run_uninstrumented(self, workload) -> float:
        """Baseline run with no tracers; returns the total virtual seconds."""
        from ..api.spec import RunSpec

        _deprecated("run_uninstrumented", "run(workload, RunSpec.uninstrumented())")
        return self.session.run(workload, RunSpec.uninstrumented()).clock_seconds

    # ------------------------------------------------------------------ legacy
    @staticmethod
    def _find_loop_by_line(registry: IndexRegistry, line: int) -> Optional[LoopSite]:
        """Legacy helper; prefer :meth:`IndexRegistry.loop_for_line`."""
        return registry.loop_for_line(line)
