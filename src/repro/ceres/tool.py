"""JSCeres facade: run a workload under one of the three instrumentation modes.

This is the top-level API most users interact with::

    from repro.ceres import JSCeres
    from repro.workloads import get_workload

    tool = JSCeres()
    light = tool.run_lightweight(get_workload("fluidSim"))
    loops = tool.run_loop_profile(get_workload("fluidSim"))
    deps  = tool.run_dependence(get_workload("fluidSim"), focus_line=loops.hottest[0].line)

A *workload* is any object implementing the small protocol used by
:mod:`repro.workloads.base`:

* ``name`` — display name,
* ``scripts`` — list of ``(path, javascript_source)`` pairs,
* ``prepare(session)`` — host-side page setup (canvas elements, data...),
* ``exercise(session)`` — drives the app the way a user would (step 4 of the
  paper's process), advancing the virtual clock through both computation and
  idle time.

Every run uses a fresh :class:`BrowserSession` so the three modes never
interfere — mirroring the staged design that the paper uses to keep
instrumentation overhead from biasing results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..browser.gecko_profiler import GeckoProfiler
from ..browser.window import BrowserSession
from ..jsvm.hooks import HookBus
from .dependence import DependenceAnalyzer, DependenceReport
from .ids import IndexRegistry, LoopSite
from .lightweight import LightweightProfiler, LightweightResult
from .loop_profiler import LoopProfile, LoopProfiler
from .proxy import InstrumentationMode, InstrumentingProxy, OriginServer
from .report import render_dependence, render_lightweight, render_loop_profiles
from .repository import RemotePublisher, ResultsRepository


@dataclass
class LightweightRun:
    """Results of a mode-1 run (one Table 2 row)."""

    workload: str
    result: LightweightResult
    active_seconds: float
    report_text: str
    commit_id: str

    @property
    def total_seconds(self) -> float:
        return self.result.total_seconds

    @property
    def loops_seconds(self) -> float:
        return self.result.loops_seconds


@dataclass
class LoopProfileRun:
    """Results of a mode-2 run."""

    workload: str
    profiles: List[LoopProfile]
    registry: IndexRegistry
    total_loop_time_ms: float
    report_text: str
    commit_id: str

    @property
    def hottest(self) -> List[LoopProfile]:
        return sorted(self.profiles, key=lambda p: p.total_time_ms, reverse=True)

    def profile_for_line(self, line: int) -> Optional[LoopProfile]:
        for profile in self.profiles:
            if profile.line == line:
                return profile
        return None


@dataclass
class DependenceRun:
    """Results of a mode-3 run."""

    workload: str
    report: DependenceReport
    registry: IndexRegistry
    report_text: str
    commit_id: str


class JSCeres:
    """The profiling and runtime dependence-analysis tool."""

    def __init__(
        self,
        repository: Optional[ResultsRepository] = None,
        script_cache=None,
    ) -> None:
        self.repository = repository if repository is not None else ResultsRepository()
        self.publisher = RemotePublisher()
        #: Optional :class:`repro.engine.cache.ScriptCache`; lets repeated runs
        #: of the same workload (the three staged modes) share parsed ASTs.
        self.script_cache = script_cache

    # ------------------------------------------------------------------ runs
    def run_lightweight(self, workload, with_gecko: bool = True) -> LightweightRun:
        """Mode 1: total time + time in loops (+ Gecko-style active time)."""
        hooks = HookBus()
        profiler = hooks.attach(LightweightProfiler())
        gecko = hooks.attach(GeckoProfiler()) if with_gecko else None

        proxy, session = self._prepare(workload, hooks, InstrumentationMode.LIGHTWEIGHT)
        profiler.start(session.clock)
        self._load_scripts(proxy, session, workload)
        workload.exercise(session)
        profiler.stop(session.clock)

        result = profiler.result(session.clock)
        active_seconds = gecko.active_seconds() if gecko is not None else 0.0
        text = render_lightweight(workload.name, result, active_seconds if with_gecko else None)
        commit_id = proxy.collect_results(f"{workload.name}-lightweight", text, session.clock.now())
        return LightweightRun(
            workload=workload.name,
            result=result,
            active_seconds=active_seconds,
            report_text=text,
            commit_id=commit_id,
        )

    def run_loop_profile(self, workload) -> LoopProfileRun:
        """Mode 2: per-syntactic-loop instance/time/trip-count statistics."""
        hooks = HookBus()
        proxy, session = self._prepare(workload, hooks, InstrumentationMode.LOOP_PROFILE)
        profiler = hooks.attach(LoopProfiler(registry=proxy.registry))
        self._load_scripts(proxy, session, workload)
        workload.exercise(session)

        profiles = list(profiler.profiles.values())
        text = render_loop_profiles(workload.name, profiles)
        commit_id = proxy.collect_results(f"{workload.name}-loops", text, session.clock.now())
        return LoopProfileRun(
            workload=workload.name,
            profiles=profiles,
            registry=proxy.registry,
            total_loop_time_ms=profiler.total_loop_time_ms(),
            report_text=text,
            commit_id=commit_id,
        )

    def run_dependence(
        self,
        workload,
        focus_line: Optional[int] = None,
        focus_loop_id: Optional[int] = None,
    ) -> DependenceRun:
        """Mode 3: dependence analysis, optionally focused on one loop.

        ``focus_line`` identifies the loop by source line in the workload's
        (first matching) script, which is how the paper's reports name loops.
        """
        hooks = HookBus()
        proxy, session = self._prepare(workload, hooks, InstrumentationMode.DEPENDENCE)
        # The registry is only populated once scripts pass through the proxy,
        # so intercept them first, then resolve the focus loop, then attach
        # the analyzer and finally execute the scripts.
        intercepted = [proxy.request(path) for path, _source in workload.scripts]

        resolved_focus = focus_loop_id
        if resolved_focus is None and focus_line is not None:
            site = self._find_loop_by_line(proxy.registry, focus_line)
            resolved_focus = site.node_id if site is not None else None

        analyzer = hooks.attach(DependenceAnalyzer(registry=proxy.registry, focus_loop_id=resolved_focus))
        for document in intercepted:
            session.run_document(document)
        workload.exercise(session)

        report = analyzer.report()
        text = render_dependence(workload.name, report, proxy.registry.loop_label)
        commit_id = proxy.collect_results(f"{workload.name}-dependence", text, session.clock.now())
        return DependenceRun(
            workload=workload.name,
            report=report,
            registry=proxy.registry,
            report_text=text,
            commit_id=commit_id,
        )

    def run_uninstrumented(self, workload) -> float:
        """Baseline run with no tracers; returns the total virtual seconds.

        Used by the overhead benchmark that backs the paper's "no discernible
        impact" claims for modes 1 and 2.
        """
        hooks = HookBus()
        proxy, session = self._prepare(workload, hooks, InstrumentationMode.NONE)
        self._load_scripts(proxy, session, workload)
        workload.exercise(session)
        return session.clock.now() / 1000.0

    # ------------------------------------------------------------------ plumbing
    def _prepare(self, workload, hooks: HookBus, mode: InstrumentationMode):
        """Steps 1-2 of Figure 5: host the documents and set up page + proxy."""
        origin = OriginServer()
        origin.host_scripts(list(workload.scripts))
        proxy = InstrumentingProxy(
            origin,
            mode=mode,
            repository=self.repository,
            publisher=self.publisher,
            script_cache=self.script_cache,
        )
        session = BrowserSession(hooks=hooks, title=workload.name)
        if hasattr(workload, "prepare"):
            workload.prepare(session)
        return proxy, session

    @staticmethod
    def _load_scripts(proxy: InstrumentingProxy, session: BrowserSession, workload) -> None:
        """Steps 3-4 of Figure 5: serve the instrumented documents to the page."""
        for path, _source in workload.scripts:
            instrumented = proxy.request(path)
            session.run_document(instrumented)

    @staticmethod
    def _find_loop_by_line(registry: IndexRegistry, line: int) -> Optional[LoopSite]:
        for index in registry.indexes.values():
            site = index.loop_for_line(line)
            if site is not None:
                return site
        return None
