"""Human-readable report rendering for the three JS-CERES modes.

The proxy "analyzes the results and transforms them to a human readable
format" before committing them (Section 3, step 6).  These renderers produce
plain-text reports in that spirit; they are also what the benchmark harness
prints so the regenerated tables can be compared with the paper's.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .dependence import DependenceReport
from .lightweight import LightweightResult
from .loop_profiler import LoopProfile


def _rule(width: int = 78) -> str:
    return "-" * width


def render_lightweight(name: str, result: LightweightResult, active_seconds: Optional[float] = None) -> str:
    """Report for mode 1 (Table 2 style row)."""
    lines = [
        f"JS-CERES lightweight profile: {name}",
        _rule(),
        f"total running time      : {result.total_seconds:8.2f} s",
    ]
    if active_seconds is not None:
        lines.append(f"active time (sampling)  : {active_seconds:8.2f} s")
    lines += [
        f"time spent in loops     : {result.loops_seconds:8.2f} s",
        f"loop fraction of total  : {result.loop_fraction * 100.0:8.1f} %",
        f"top-level loop entries  : {result.top_level_loop_entries:8d}",
    ]
    return "\n".join(lines)


def render_loop_profiles(name: str, profiles: Iterable[LoopProfile], limit: int = 20) -> str:
    """Report for mode 2: one row per syntactic loop, hottest first."""
    rows = sorted(profiles, key=lambda p: p.total_time_ms, reverse=True)[:limit]
    header = (
        f"{'loop':<28} {'instances':>9} {'total ms':>10} {'mean ms':>9} "
        f"{'trips avg':>10} {'trips sd':>9}"
    )
    lines = [f"JS-CERES loop profile: {name}", _rule(), header, _rule()]
    for profile in rows:
        lines.append(
            f"{profile.label:<28} {profile.instances:>9d} {profile.total_time_ms:>10.1f} "
            f"{profile.time_stats_ms.mean:>9.2f} {profile.trip_stats.mean:>10.1f} "
            f"{profile.trip_stats.std:>9.1f}"
        )
    if not rows:
        lines.append("(no loops executed)")
    return "\n".join(lines)


def render_dependence(name: str, report: DependenceReport, labeler) -> str:
    """Report for mode 3: warnings in the paper's triple notation."""
    lines = [
        f"JS-CERES dependence analysis: {name}",
        f"focused loop: {report.focus_loop_label}",
        f"iterations observed: {report.iterations_observed}",
        _rule(),
    ]
    if not report.warnings:
        lines.append("no problematic accesses detected")
    for warning in sorted(report.warnings, key=lambda w: (w.kind.value, w.name)):
        lines.append(warning.render(labeler))
    for recursion in report.recursion_warnings:
        lines.append(recursion.render())
    return "\n".join(lines)


def render_summary_table(rows: List[dict], columns: List[str], title: str = "") -> str:
    """Generic fixed-width table renderer used by the experiment harness."""
    widths = {col: max(len(col), *(len(str(row.get(col, ""))) for row in rows)) if rows else len(col) for col in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(f"{col:<{widths[col]}}" for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(f"{str(row.get(col, '')):<{widths[col]}}" for col in columns))
    return "\n".join(lines)
