"""JS-CERES: staged profiling and runtime dependence analysis for mini-JS.

This package is the reproduction of the paper's primary contribution
(Section 3): a proxy-based tool with three instrumentation modes —
lightweight profiling, loop profiling, and dependence analysis — plus the
report/publication pipeline.

The deprecated ``JSCeres`` facade (and its ``LightweightRun`` /
``LoopProfileRun`` / ``DependenceRun`` result dataclasses) was removed after
its promised two-PR compatibility window: use
:class:`repro.api.AnalysisSession` with :class:`repro.api.RunSpec` instead
(see the migration table in the README).
"""

from .dependence import AccessPattern, DependenceAnalyzer, DependenceReport
from .ids import CreationSite, IndexRegistry, LoopSite, ProgramIndex
from .lightweight import LightweightProfiler, LightweightResult
from .loop_profiler import LoopProfile, LoopProfiler
from .loopstack import CharTriple, LoopStack, StackEntry, diff_stamp, is_problematic, render_triples
from .proxy import (
    InstrumentationMode,
    InstrumentedDocument,
    InstrumentingProxy,
    OriginServer,
    WebDocument,
)
from .report import render_dependence, render_lightweight, render_loop_profiles, render_summary_table
from .repository import Commit, RemotePublisher, ResultsRepository
from .warnings_ import DependenceWarning, RecursionWarning, WarningKind
from .welford import OnlineStats

__all__ = [
    "AccessPattern",
    "DependenceAnalyzer",
    "DependenceReport",
    "CreationSite",
    "IndexRegistry",
    "LoopSite",
    "ProgramIndex",
    "LightweightProfiler",
    "LightweightResult",
    "LoopProfile",
    "LoopProfiler",
    "CharTriple",
    "LoopStack",
    "StackEntry",
    "diff_stamp",
    "is_problematic",
    "render_triples",
    "InstrumentationMode",
    "InstrumentedDocument",
    "InstrumentingProxy",
    "OriginServer",
    "WebDocument",
    "render_dependence",
    "render_lightweight",
    "render_loop_profiles",
    "render_summary_table",
    "Commit",
    "RemotePublisher",
    "ResultsRepository",
    "DependenceWarning",
    "RecursionWarning",
    "WarningKind",
    "OnlineStats",
]
