"""The loop-characterization stack and the stamp-diff algebra.

Section 3.3 of the paper: JS-CERES "instruments the original program to
maintain, at each point during execution, a characterization with respect to
the open, i.e., currently iterating, loops.  The characterization is
maintained as a stack", each entry being a triple of

* a loop unique identifier (the syntactic loop),
* the current value of a global per-loop *instance* counter (how many times
  the loop has been entered so far), and
* the current *iteration* number of that loop instance.

Objects and environments are stamped with a copy of the stack at their
creation moment.  On every access the current stack is diffed against the
stamp, yielding one ``(loop, instance-flag, iteration-flag)`` triple per open
loop, rendered as ``ok`` / ``dependence`` — e.g.
``while(line 24) ok ok -> for(line 6) ok dependence`` for the paper's N-body
example.

Diff semantics implemented here (documented deviation from the paper is noted
in EXPERIMENTS.md):

* If the stamp entry at a position matches loop id, instance and iteration,
  the access target was created in the *current iteration* → ``ok ok``.
* If loop id and instance match but the iteration differs → the target is
  shared between iterations of this instance → ``ok dependence``.
* If all outer positions matched exactly and the stamp simply ends before
  this position (the target was created in the same enclosing iteration,
  just before this loop started) → ``ok dependence`` for inner loops.
* Anything else (created in a different instance, or outside the enclosing
  iteration) → ``dependence dependence``.  ``dependence ok`` is never
  produced — as the paper notes, it is not a valid characterization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class StackEntry:
    """One open loop: ``(loop id, instance number, iteration number)``."""

    loop_id: int
    instance: int
    iteration: int


@dataclass(frozen=True)
class CharTriple:
    """Characterization of one loop level of an access."""

    loop_id: int
    instance_private: bool
    iteration_private: bool

    def render(self, label: str) -> str:
        instance = "ok" if self.instance_private else "dependence"
        iteration = "ok" if self.iteration_private else "dependence"
        return f"{label} {instance} {iteration}"


Stamp = Tuple[StackEntry, ...]


class LoopStack:
    """Runtime stack of open loops plus the global per-loop instance counters."""

    def __init__(self) -> None:
        self.entries: List[StackEntry] = []
        self.instance_counters: Dict[int, int] = {}
        self.recursion_warnings: List[int] = []

    # ------------------------------------------------------------------ stack
    def push_loop(self, loop_id: int) -> StackEntry:
        """A loop instance begins: bump its global counter and push it."""
        count = self.instance_counters.get(loop_id, 0) + 1
        self.instance_counters[loop_id] = count
        if any(entry.loop_id == loop_id for entry in self.entries):
            # A recursive call re-entered a loop that is already open.  The
            # paper raises a warning and discards results for that nest.
            self.recursion_warnings.append(loop_id)
        entry = StackEntry(loop_id=loop_id, instance=count, iteration=0)
        self.entries.append(entry)
        return entry

    def next_iteration(self, loop_id: int) -> Optional[StackEntry]:
        """The innermost open instance of ``loop_id`` advances one iteration."""
        for index in range(len(self.entries) - 1, -1, -1):
            if self.entries[index].loop_id == loop_id:
                entry = self.entries[index]
                updated = StackEntry(entry.loop_id, entry.instance, entry.iteration + 1)
                self.entries[index] = updated
                return updated
        return None

    def pop_loop(self, loop_id: int) -> Optional[StackEntry]:
        """The innermost open instance of ``loop_id`` finishes."""
        for index in range(len(self.entries) - 1, -1, -1):
            if self.entries[index].loop_id == loop_id:
                return self.entries.pop(index)
        return None

    def depth(self) -> int:
        return len(self.entries)

    def innermost(self) -> Optional[StackEntry]:
        return self.entries[-1] if self.entries else None

    def open_loop_ids(self) -> List[int]:
        return [entry.loop_id for entry in self.entries]

    def snapshot(self) -> Stamp:
        """An immutable copy of the current stack (a characterization stamp)."""
        return tuple(self.entries)

    def contains(self, loop_id: int) -> bool:
        return any(entry.loop_id == loop_id for entry in self.entries)


def diff_stamp(current: Sequence[StackEntry], stamp: Sequence[StackEntry]) -> List[CharTriple]:
    """Diff the current stack against a creation stamp.

    Returns one :class:`CharTriple` per entry of ``current`` (outermost
    first).  See the module docstring for the exact semantics.
    """
    triples: List[CharTriple] = []
    prefix_matches = True
    for position, entry in enumerate(current):
        stamped: Optional[StackEntry] = stamp[position] if position < len(stamp) else None
        if stamped is not None and stamped.loop_id == entry.loop_id and stamped.instance == entry.instance:
            if not prefix_matches:
                triples.append(CharTriple(entry.loop_id, False, False))
                continue
            iteration_private = stamped.iteration == entry.iteration
            triples.append(CharTriple(entry.loop_id, True, iteration_private))
            prefix_matches = prefix_matches and iteration_private
        elif stamped is None and prefix_matches and len(stamp) == position and position > 0:
            # Created earlier in the same enclosing iteration, before this
            # loop instance began: shared by its iterations, private per
            # enclosing iteration.
            triples.append(CharTriple(entry.loop_id, True, False))
            prefix_matches = False
        else:
            triples.append(CharTriple(entry.loop_id, False, False))
            prefix_matches = False
    return triples


def is_problematic(triples: Sequence[CharTriple], focus_loop_id: Optional[int] = None) -> bool:
    """An access is problematic if some loop level shares the target between
    iterations.  With a focus loop, only that loop level is considered."""
    for triple in triples:
        if focus_loop_id is not None and triple.loop_id != focus_loop_id:
            continue
        if not triple.iteration_private:
            return True
    return False


def render_triples(triples: Sequence[CharTriple], labeler) -> str:
    """Render triples in the paper's arrow-separated format."""
    return " -> ".join(triple.render(labeler(triple.loop_id)) for triple in triples)
