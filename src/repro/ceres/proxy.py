"""The JS-CERES proxy pipeline (Figure 5 of the paper).

The original tool is "implemented as a proxy server sitting between the
browser and the web server.  The proxy instruments JavaScript code on its way
from the web server to the browser.  On finishing the analysis, the browser
sends the results back to the proxy, which then uploads them to github.com in
a human-readable format."

In this reproduction the network hops are in-process, but the pipeline keeps
the same stages and data flow:

1. the browser requests a document through the proxy,
2. the proxy fetches it from the :class:`OriginServer` and — for JavaScript
   documents — instruments it (parses it, indexes its loops/creation sites
   and marks which instrumentation mode it was prepared for),
3. the instrumented response is loaded into a :class:`BrowserSession`,
4. the user exercises the application,
5. results flow back to the proxy,
6. the proxy renders human-readable reports, commits them to the results
   repository and "pushes" them through the :class:`RemotePublisher`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..jsvm.parser import parse
from .ids import IndexRegistry
from .repository import RemotePublisher, ResultsRepository


class InstrumentationMode(Enum):
    """The three staged instrumentation modes of JS-CERES (Section 3)."""

    LIGHTWEIGHT = "lightweight profiling"
    LOOP_PROFILE = "loop profiling"
    DEPENDENCE = "dependence analysis"
    NONE = "uninstrumented"


@dataclass
class WebDocument:
    """A document served by the origin server."""

    path: str
    content: str
    content_type: str = "application/javascript"  # or "text/html"

    @property
    def is_javascript(self) -> bool:
        return self.content_type == "application/javascript"


class InstrumentedDocument:
    """A document after it passed through the proxy.

    ``program`` holds the parsed AST for JavaScript documents (the analogue of
    the rewritten source the real proxy would produce).
    """

    def __init__(self, document: WebDocument, mode: InstrumentationMode, program=None) -> None:
        self.document = document
        self.mode = mode
        self.program = program


class OriginServer:
    """Stands in for the web server hosting the application under analysis."""

    def __init__(self) -> None:
        self.documents: Dict[str, WebDocument] = {}
        self.request_log: List[str] = []

    def host(self, path: str, content: str, content_type: str = "application/javascript") -> WebDocument:
        document = WebDocument(path=path, content=content, content_type=content_type)
        self.documents[path] = document
        return document

    def host_scripts(self, scripts: List[Tuple[str, str]]) -> None:
        for path, source in scripts:
            self.host(path, source)

    def get(self, path: str) -> WebDocument:
        self.request_log.append(path)
        if path not in self.documents:
            raise KeyError(f"origin server has no document at {path!r}")
        return self.documents[path]


class InstrumentingProxy:
    """Intercepts documents, instruments JavaScript, and publishes results."""

    def __init__(
        self,
        origin: OriginServer,
        mode: InstrumentationMode = InstrumentationMode.LIGHTWEIGHT,
        repository: Optional[ResultsRepository] = None,
        publisher: Optional[RemotePublisher] = None,
        script_cache=None,
    ) -> None:
        self.origin = origin
        self.mode = mode
        self.registry = IndexRegistry()
        self.repository = repository if repository is not None else ResultsRepository()
        self.publisher = publisher if publisher is not None else RemotePublisher()
        #: Optional :class:`repro.engine.cache.ScriptCache`; when present, the
        #: proxy reuses parsed ASTs and loop indexes instead of re-parsing
        #: (parsing is deterministic, so node ids are identical either way).
        self.script_cache = script_cache
        self.instrumented: Dict[str, InstrumentedDocument] = {}
        self.intercepted_requests: List[str] = []

    # ------------------------------------------------------------------ step 1-3
    def request(self, path: str) -> InstrumentedDocument:
        """Browser-side request for ``path``; returns the instrumented response."""
        self.intercepted_requests.append(path)
        document = self.origin.get(path)
        if not document.is_javascript or self.mode is InstrumentationMode.NONE:
            instrumented = InstrumentedDocument(document, InstrumentationMode.NONE)
        elif self.script_cache is not None:
            program, index = self.script_cache.get(path, document.content)
            self.registry.add_index(index)
            instrumented = InstrumentedDocument(document, self.mode, program=program)
        else:
            program = parse(document.content, name=path)
            self.registry.add(program)
            instrumented = InstrumentedDocument(document, self.mode, program=program)
        self.instrumented[path] = instrumented
        return instrumented

    def request_all(self, paths: List[str]) -> List[InstrumentedDocument]:
        return [self.request(path) for path in paths]

    # ------------------------------------------------------------------ step 5-6
    def collect_results(self, report_name: str, report_text: str, time_ms: float = 0.0) -> str:
        """Receive results from the browser, store and publish them.

        Returns the commit id of the stored report.
        """
        path = f"reports/{report_name}.txt"
        self.repository.write_file(path, report_text)
        sources_path = f"sources/{report_name}.js"
        sources = "\n\n".join(
            f"// {doc.document.path}\n{doc.document.content}"
            for doc in self.instrumented.values()
            if doc.document.is_javascript
        )
        self.repository.write_file(sources_path, sources)
        commit = self.repository.commit(f"analysis results: {report_name}", time_ms=time_ms)
        self.publisher.push(self.repository)
        return commit.commit_id
