"""JS-CERES instrumentation mode 2: loop profiling.

Section 3.2: for each syntactic loop the tool computes "the number of times
it is encountered, the total, average, and variance of its running time, and
the total, average, and variance of its trip count", using Welford's online
algorithm for the variances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..jsvm.hooks import EV_LOOP, Tracer
from .ids import IndexRegistry
from .welford import OnlineStats


@dataclass
class LoopProfile:
    """Aggregated statistics for one syntactic loop."""

    loop_id: int
    label: str
    kind: str
    line: int
    program: str
    instances: int = 0
    trip_stats: OnlineStats = field(default_factory=OnlineStats)
    time_stats_ms: OnlineStats = field(default_factory=OnlineStats)
    #: ids of loops that were open when this loop was entered (outermost
    #: first), observed at runtime — lets the analysis rebuild dynamic nests.
    observed_parents: List[int] = field(default_factory=list)

    @property
    def total_time_ms(self) -> float:
        return self.time_stats_ms.total

    @property
    def mean_trip_count(self) -> float:
        return self.trip_stats.mean

    @property
    def trip_count_std(self) -> float:
        return self.trip_stats.std

    def as_row(self) -> dict:
        return {
            "loop": self.label,
            "program": self.program,
            "instances": self.instances,
            "total_ms": round(self.total_time_ms, 3),
            "mean_ms": round(self.time_stats_ms.mean, 3),
            "var_ms": round(self.time_stats_ms.variance, 3),
            "mean_trips": round(self.trip_stats.mean, 2),
            "trips_std": round(self.trip_stats.std, 2),
        }


@dataclass
class _OpenInstance:
    loop_id: int
    start_ms: float
    trip_count: int = 0


class LoopProfiler(Tracer):
    """Per-syntactic-loop instance/time/trip-count statistics."""

    #: Mode 2 also only subscribes to loop events (Section 3.2).
    EVENTS = EV_LOOP

    def __init__(
        self, registry: Optional[IndexRegistry] = None, incremental: bool = False
    ) -> None:
        self.registry = registry
        #: Incremental (streaming) mode: closed-instance scratch records are
        #: recycled instead of left to the allocator, so resident memory is
        #: bounded by the *deepest open nest* regardless of how many loop
        #: instances the trace holds.  Aggregates are identical either way —
        #: profiles are Welford accumulators keyed by syntactic loop.
        self.incremental = incremental
        self.profiles: Dict[int, LoopProfile] = {}
        self._open: List[_OpenInstance] = []
        self._free: List[_OpenInstance] = []
        #: High-water mark of simultaneously open loop instances — the
        #: profiler's actual per-nest memory bound, reported by the
        #: streaming-memory benchmark.
        self.peak_open_instances = 0

    # -- hook events --------------------------------------------------------
    def on_loop_enter(self, interp, node) -> None:
        profile = self._profile_for(node)
        profile.instances += 1
        parents = [inst.loop_id for inst in self._open]
        if parents and not profile.observed_parents:
            profile.observed_parents = parents
        if self.incremental and self._free:
            instance = self._free.pop()
            instance.loop_id = node.node_id
            instance.start_ms = interp.clock.now()
            instance.trip_count = 0
            self._open.append(instance)
        else:
            self._open.append(
                _OpenInstance(loop_id=node.node_id, start_ms=interp.clock.now())
            )
        if len(self._open) > self.peak_open_instances:
            self.peak_open_instances = len(self._open)

    def on_loop_iteration(self, interp, node, iteration) -> None:
        for instance in reversed(self._open):
            if instance.loop_id == node.node_id:
                instance.trip_count += 1
                break

    def on_loop_exit(self, interp, node, trip_count) -> None:
        for index in range(len(self._open) - 1, -1, -1):
            if self._open[index].loop_id == node.node_id:
                instance = self._open.pop(index)
                profile = self._profile_for(node)
                profile.trip_stats.push(instance.trip_count)
                profile.time_stats_ms.push(interp.clock.now() - instance.start_ms)
                if self.incremental:
                    self._free.append(instance)
                return

    # -- queries -----------------------------------------------------------
    def _profile_for(self, node) -> LoopProfile:
        profile = self.profiles.get(node.node_id)
        if profile is None:
            label = self.registry.loop_label(node.node_id) if self.registry else f"loop#{node.node_id}"
            program = ""
            kind = type(node).__name__.replace("Statement", "").lower()
            if self.registry is not None:
                for index in self.registry.indexes.values():
                    if node.node_id in index.loops:
                        site = index.loops[node.node_id]
                        program, kind = site.program, site.kind
                        break
            profile = LoopProfile(
                loop_id=node.node_id,
                label=label,
                kind=kind,
                line=getattr(node, "line", 0),
                program=program,
            )
            self.profiles[node.node_id] = profile
        return profile

    def total_loop_time_ms(self) -> float:
        """Total time attributed to *top-level* loop instances.

        Nested loops are excluded to avoid double counting (their time is
        already included in the enclosing loop's running time).
        """
        return sum(p.total_time_ms for p in self.profiles.values() if not p.observed_parents)

    def hottest(self, count: int = 10) -> List[LoopProfile]:
        return sorted(self.profiles.values(), key=lambda p: p.total_time_ms, reverse=True)[:count]

    def by_label(self, label: str) -> Optional[LoopProfile]:
        for profile in self.profiles.values():
            if profile.label == label:
                return profile
        return None
