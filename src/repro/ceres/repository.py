"""Versioned results repository.

The original JS-CERES proxy "pairs the results to the original documents, and
saves them by committing to a local git repository.  Finally, the proxy
pushes the results to github.com" (Section 3, step 6).  Publishing to an
external service is out of scope for an offline reproduction, so this module
provides a small in-memory/on-disk content store with git-like commits plus a
:class:`RemotePublisher` that records what *would* have been pushed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional


@dataclass
class Commit:
    """One commit: a message, a timestamp and the full file snapshot."""

    commit_id: str
    message: str
    time_ms: float
    files: Dict[str, str]

    def short_id(self) -> str:
        return self.commit_id[:10]


class ResultsRepository:
    """A content-addressed, append-only store of analysis reports."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else None
        self.working_tree: Dict[str, str] = {}
        self.commits: List[Commit] = []

    # ------------------------------------------------------------------ write
    def write_file(self, path: str, content: str) -> None:
        self.working_tree[path] = content

    def commit(self, message: str, time_ms: float = 0.0) -> Commit:
        snapshot = dict(self.working_tree)
        digest = hashlib.sha1()
        digest.update(message.encode("utf-8"))
        digest.update(str(time_ms).encode("utf-8"))
        for path in sorted(snapshot):
            digest.update(path.encode("utf-8"))
            digest.update(snapshot[path].encode("utf-8"))
        commit = Commit(commit_id=digest.hexdigest(), message=message, time_ms=time_ms, files=snapshot)
        self.commits.append(commit)
        if self.root is not None:
            self._flush_to_disk(commit)
        return commit

    def _flush_to_disk(self, commit: Commit) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        for path, content in commit.files.items():
            target = self.root / path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content, encoding="utf-8")
        log_path = self.root / "commits.jsonl"
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"id": commit.commit_id, "message": commit.message, "time_ms": commit.time_ms})
                + "\n"
            )

    # ------------------------------------------------------------------- read
    def head(self) -> Optional[Commit]:
        return self.commits[-1] if self.commits else None

    def file_at_head(self, path: str) -> Optional[str]:
        head = self.head()
        if head is None:
            return None
        return head.files.get(path)

    def history(self) -> List[str]:
        return [f"{c.short_id()} {c.message}" for c in self.commits]


@dataclass
class PushRecord:
    remote: str
    commit_id: str
    message: str


class RemotePublisher:
    """Stand-in for the github.com upload step: records pushes, sends nothing."""

    def __init__(self, remote_name: str = "github.com/js-ceres/results") -> None:
        self.remote_name = remote_name
        self.pushes: List[PushRecord] = []

    def push(self, repository: ResultsRepository) -> Optional[PushRecord]:
        head = repository.head()
        if head is None:
            return None
        record = PushRecord(remote=self.remote_name, commit_id=head.commit_id, message=head.message)
        self.pushes.append(record)
        return record
