"""Iteration-space partitioning strategies.

Used by the parallel executor to split a loop's iteration space across
workers.  The invariant — every iteration assigned to exactly one chunk — is
covered by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Chunk:
    """A contiguous (block) or strided (cyclic) set of iterations for one worker."""

    worker: int
    iterations: tuple

    def __len__(self) -> int:
        return len(self.iterations)


def block_partition(iteration_count: int, workers: int) -> List[Chunk]:
    """Split ``range(iteration_count)`` into ``workers`` contiguous blocks."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    if iteration_count < 0:
        raise ValueError("iteration_count must be non-negative")
    chunks: List[Chunk] = []
    base = iteration_count // workers
    remainder = iteration_count % workers
    start = 0
    for worker in range(workers):
        size = base + (1 if worker < remainder else 0)
        chunks.append(Chunk(worker=worker, iterations=tuple(range(start, start + size))))
        start += size
    return chunks


def cyclic_partition(iteration_count: int, workers: int) -> List[Chunk]:
    """Deal iterations round-robin (good for imbalanced iteration costs)."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    if iteration_count < 0:
        raise ValueError("iteration_count must be non-negative")
    return [
        Chunk(worker=worker, iterations=tuple(range(worker, iteration_count, workers)))
        for worker in range(workers)
    ]


def assigned_iterations(chunks: List[Chunk]) -> List[int]:
    """All iterations covered by ``chunks`` (sorted, for invariant checks)."""
    covered: List[int] = []
    for chunk in chunks:
        covered.extend(chunk.iterations)
    return sorted(covered)
