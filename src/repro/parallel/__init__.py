"""Parallel-execution model used to validate the latent-parallelism findings."""

from .executor import ParallelOutcome, simulate_parallel_execution
from .machine import PAPER_MACHINE, SIMD_MACHINE, MachineModel
from .partition import Chunk, assigned_iterations, block_partition, cyclic_partition
from .speculative import (
    SpeculationController,
    SpeculationOptions,
    SpeculationOutcome,
    SpeculativeExecutor,
    WorkloadSpeculation,
    render_speculation,
)
from .speedup import ApplicationSpeedup, model_application_speedup, validate_against_amdahl

__all__ = [
    "ParallelOutcome",
    "simulate_parallel_execution",
    "SpeculationController",
    "SpeculationOptions",
    "SpeculationOutcome",
    "SpeculativeExecutor",
    "WorkloadSpeculation",
    "render_speculation",
    "PAPER_MACHINE",
    "SIMD_MACHINE",
    "MachineModel",
    "Chunk",
    "assigned_iterations",
    "block_partition",
    "cyclic_partition",
    "ApplicationSpeedup",
    "model_application_speedup",
    "validate_against_amdahl",
]
