"""Application-level speedup validation.

Combines the per-nest parallel execution model with the application's Table 2
timings to produce a whole-application speedup, and compares it against the
Amdahl upper bound from :mod:`repro.analysis.amdahl`.  The modelled speedup
must never exceed the Amdahl bound (an invariant covered by tests), and for
the loop-dominated applications it should land in the same ">3x for 5 of 12"
bucket the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.casestudy import ApplicationAnalysis
from ..analysis.difficulty import Difficulty
from .executor import ParallelOutcome, simulate_parallel_execution
from .machine import PAPER_MACHINE, MachineModel


@dataclass
class ApplicationSpeedup:
    """Modelled whole-application speedup for one case-study application."""

    application: str
    serial_seconds: float
    parallel_seconds: float
    outcomes: List[ParallelOutcome] = field(default_factory=list)
    amdahl_bound: Optional[float] = None

    @property
    def speedup(self) -> float:
        if self.parallel_seconds <= 0:
            return 1.0
        return self.serial_seconds / self.parallel_seconds

    def as_row(self) -> dict:
        return {
            "application": self.application,
            "busy (s)": round(self.serial_seconds, 2),
            "modelled (s)": round(self.parallel_seconds, 2),
            "speedup": f"{self.speedup:.2f}x",
            "Amdahl bound": f"{self.amdahl_bound:.2f}x" if self.amdahl_bound else "-",
        }


def model_application_speedup(
    analysis: ApplicationAnalysis,
    machine: MachineModel = PAPER_MACHINE,
    strategy: str = "block",
    use_simd: bool = False,
) -> ApplicationSpeedup:
    """Model an application's speedup from parallelizing its inspected nests.

    The application's *busy* time (the larger of sampled active time and loop
    time) is split into the inspected nests — which may or may not scale — and
    a serial remainder that never does.
    """
    table2 = analysis.table2
    busy_ms = max(table2.active_seconds, table2.loops_seconds) * 1000.0
    loops_ms = table2.loops_seconds * 1000.0

    # Use the same "easy to parallelize" cutoff as the Amdahl bound so the
    # modelled speedup can never exceed it.
    outcomes = [
        simulate_parallel_execution(
            nest, machine, strategy=strategy, use_simd=use_simd, easy_cutoff=Difficulty.EASY
        )
        for nest in analysis.nests
    ]
    inspected_serial_ms = sum(min(o.serial_ms, loops_ms) for o in outcomes)
    inspected_serial_ms = min(inspected_serial_ms, loops_ms)
    scale = 1.0
    raw_total = sum(o.serial_ms for o in outcomes)
    if raw_total > 0 and raw_total > loops_ms:
        scale = loops_ms / raw_total

    parallel_inspected_ms = sum(o.parallel_ms * scale for o in outcomes)
    serial_rest_ms = max(busy_ms - sum(o.serial_ms * scale for o in outcomes), 0.0)
    parallel_total_ms = parallel_inspected_ms + serial_rest_ms

    result = ApplicationSpeedup(
        application=analysis.name,
        serial_seconds=busy_ms / 1000.0,
        parallel_seconds=parallel_total_ms / 1000.0,
        outcomes=outcomes,
    )
    if analysis.speedup is not None:
        result.amdahl_bound = analysis.speedup.bound
    return result


def validate_against_amdahl(speedups: List[ApplicationSpeedup]) -> bool:
    """Check the invariant: no modelled speedup exceeds its Amdahl bound."""
    tolerance = 1e-6
    for item in speedups:
        if item.amdahl_bound is not None and item.speedup > item.amdahl_bound + tolerance:
            return False
    return True
