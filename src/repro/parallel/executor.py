"""Deterministic parallel-execution model for analysed loop nests.

CPython threads cannot speed up interpreted guest code, and the paper's point
is about *latent* parallelism anyway, so validation uses an analytical model:
given a nest's measured serial time, trip count, divergence level and
per-iteration cost imbalance, the executor computes the wall-clock time the
loop would take on a :class:`MachineModel` with a given partitioning
strategy, charging scheduling overhead and respecting the dependence verdict
(nests whose dependences cannot be broken simply do not scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.casestudy import NestAnalysis
from ..analysis.difficulty import Difficulty
from ..analysis.divergence import DivergenceLevel
from .machine import MachineModel
from .partition import Chunk, block_partition, cyclic_partition


@dataclass
class ParallelOutcome:
    """Result of (model-)executing one loop nest in parallel."""

    nest_label: str
    serial_ms: float
    parallel_ms: float
    workers: int
    strategy: str
    parallelizable: bool
    divergence: DivergenceLevel

    @property
    def speedup(self) -> float:
        """Serial time divided by modelled parallel time.

        Convention: a nest with no measured work (``serial_ms <= 0`` —
        empty or never-entered loops) has speedup 1.0 by definition, and is
        the only case where ``parallel_ms <= 0`` is legal (the model clamps
        every real execution to a strictly positive time).  A non-positive
        ``parallel_ms`` paired with real serial work means the outcome was
        constructed inconsistently, which is an error rather than a silent
        1.0.
        """
        if self.parallel_ms <= 0:
            if self.serial_ms <= 0:
                return 1.0
            raise ValueError(
                f"inconsistent ParallelOutcome for {self.nest_label!r}: "
                f"parallel_ms={self.parallel_ms!r} with serial_ms={self.serial_ms!r}"
            )
        return self.serial_ms / self.parallel_ms


def _iteration_costs(serial_ms: float, trip_count: int, imbalance: float) -> List[float]:
    """Spread the nest's serial time over its iterations.

    ``imbalance`` is the coefficient of variation of per-iteration cost; a
    simple deterministic saw-tooth profile reproduces it well enough for the
    scheduling model.
    """
    if trip_count <= 0:
        return []
    mean = serial_ms / trip_count
    if imbalance <= 0:
        return [mean] * trip_count
    costs = []
    for index in range(trip_count):
        # Saw-tooth in [-1, 1] scaled to the requested imbalance.
        wave = (2.0 * ((index % 8) / 7.0) - 1.0) if trip_count > 1 else 0.0
        costs.append(max(mean * (1.0 + imbalance * wave), mean * 0.05))
    scale = serial_ms / sum(costs)
    return [cost * scale for cost in costs]


def simulate_parallel_execution(
    nest: NestAnalysis,
    machine: MachineModel,
    strategy: str = "block",
    use_simd: bool = False,
    easy_cutoff: Difficulty = Difficulty.MEDIUM,
) -> ParallelOutcome:
    """Model the parallel execution of one analysed nest.

    Nests graded harder than ``easy_cutoff`` (or DOM-bound) keep their serial
    time: their latent parallelism is not exploitable without the code changes
    and browser support the paper discusses.
    """
    serial_ms = nest.profile.total_time_ms
    trip_count = int(round(nest.profile.mean_trip_count * max(nest.profile.instances, 1)))
    parallelizable = (
        nest.parallelization <= easy_cutoff and not nest.dom.accesses_shared_browser_state
    )
    workers = machine.hardware_threads

    if not parallelizable or trip_count <= 1 or serial_ms <= 0:
        return ParallelOutcome(
            nest_label=nest.profile.label,
            serial_ms=serial_ms,
            parallel_ms=serial_ms,
            workers=workers,
            strategy=strategy,
            parallelizable=False,
            divergence=nest.divergence,
        )

    imbalance = 0.0
    if nest.divergence is DivergenceLevel.LITTLE:
        imbalance = 0.25
    elif nest.divergence is DivergenceLevel.YES:
        imbalance = 0.9
    costs = _iteration_costs(serial_ms, trip_count, imbalance)

    if strategy == "cyclic":
        chunks: Sequence[Chunk] = cyclic_partition(trip_count, workers)
    else:
        chunks = block_partition(trip_count, workers)

    # Each worker's time is the sum of its iterations (divided by its SIMD
    # throughput) plus scheduling overhead per chunk; the loop finishes when
    # the slowest worker does.
    simd_factor = 1.0
    if use_simd:
        simd_factor = machine.simd_width * machine.simd_efficiency(nest.divergence)
    worker_times = []
    for chunk in chunks:
        work = sum(costs[i] for i in chunk.iterations) / max(simd_factor, 1.0)
        overhead = serial_ms * machine.scheduling_overhead / max(workers, 1)
        worker_times.append(work + overhead if len(chunk) else 0.0)
    parallel_ms = max(worker_times) if worker_times else serial_ms

    return ParallelOutcome(
        nest_label=nest.profile.label,
        serial_ms=serial_ms,
        parallel_ms=max(parallel_ms, 1e-9),
        workers=workers,
        strategy=strategy,
        parallelizable=True,
        divergence=nest.divergence,
    )
