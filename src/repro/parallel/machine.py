"""Machine model used to validate the latent-parallelism findings.

The paper measures on "a quad-core Intel Core i7 at 2.6 GHz (3720QM)" — four
cores, eight hardware threads, AVX SIMD lanes — and discusses mapping loops
onto both multi-core and SIMD/GPU hardware.  The model below captures the
parameters the analysis needs: worker count, SIMD width, per-task scheduling
overhead and the penalty divergent control flow pays on SIMD hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.divergence import DivergenceLevel


@dataclass(frozen=True)
class MachineModel:
    """Parameters of the parallel execution model."""

    name: str = "quad-core i7 (3720QM)"
    cores: int = 4
    threads_per_core: int = 2
    simd_width: int = 4
    #: Fraction of a worker's time lost to scheduling/synchronization per chunk.
    scheduling_overhead: float = 0.02
    #: SIMD efficiency multipliers per divergence level.
    simd_efficiency_none: float = 0.95
    simd_efficiency_little: float = 0.70
    simd_efficiency_divergent: float = 0.25

    @property
    def hardware_threads(self) -> int:
        return self.cores * self.threads_per_core

    def simd_efficiency(self, divergence: DivergenceLevel) -> float:
        if divergence is DivergenceLevel.NONE:
            return self.simd_efficiency_none
        if divergence is DivergenceLevel.LITTLE:
            return self.simd_efficiency_little
        return self.simd_efficiency_divergent

    def effective_parallelism(self, divergence: DivergenceLevel, use_simd: bool = False) -> float:
        """Usable parallel lanes for a loop with the given divergence level."""
        base = float(self.hardware_threads)
        if use_simd:
            base *= self.simd_width * self.simd_efficiency(divergence)
        return max(base, 1.0)


#: The paper's evaluation machine.
PAPER_MACHINE = MachineModel()

#: A SIMD-capable view of the same machine (AVX: 8 single-precision lanes).
SIMD_MACHINE = MachineModel(name="quad-core i7 + AVX", simd_width=8)
